"""Explainable recommendation case study (Sections V-B / VI-C of the paper).

Workflow on the synthetic MovieLens stand-in:

1. generate a rating matrix with a planted item→item causal graph
   (franchises, directors, genres, blockbusters);
2. learn the item graph with LEAST on the per-user mean-centred ratings;
3. report the strongest learned edges next to the planted relation
   (the Table IV analogue);
4. analyse the blockbuster in/out-degree asymmetry (the Fig. 8 discussion);
5. produce explainable recommendations for one user.

Run with ``python examples/movielens_recommendation.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core import LEAST, LEASTConfig
from repro.core.thresholding import threshold_weights
from repro.datasets import make_movielens
from repro.recommend import ExplainableRecommender, hub_analysis, top_edges


def main() -> None:
    dataset = make_movielens(n_movies=60, n_users=2500, n_series=10, seed=0)
    print(
        f"synthetic MovieLens: {dataset.n_movies} movies, {dataset.n_users} users, "
        f"{int((dataset.truth != 0).sum())} planted item-item edges"
    )

    config = LEASTConfig(
        max_outer_iterations=8, max_inner_iterations=400, l1_penalty=0.02, tolerance=1e-3
    )
    result = LEAST(config).fit(dataset.centered, seed=1)

    print("\nTop learned edges (Table IV analogue):")
    for source, target, weight in top_edges(result.weights, n=10):
        relation = dataset.relation_of(int(source), int(target))
        if relation == "unrelated":
            reverse = dataset.relation_of(int(target), int(source))
            relation = f"{reverse} (reversed)" if reverse != "unrelated" else "unrelated"
        print(
            f"  {dataset.movie_titles[int(source)]:<28} -> "
            f"{dataset.movie_titles[int(target)]:<28} {weight:+.3f}  [{relation}]"
        )

    pruned = threshold_weights(result.weights, 0.05)
    asymmetry = hub_analysis(pruned, dataset.blockbusters)
    print("\nBlockbuster degree asymmetry (learned graph):")
    for key, value in asymmetry.items():
        print(f"  {key}: {value:.2f}")

    recommender = ExplainableRecommender(pruned, labels=list(dataset.movie_titles), max_hops=2)
    # Pick the movie with the most outgoing learned influence as the one the
    # user just rated highly (1.5 above their personal mean).
    source = int(np.argmax(np.abs(pruned).sum(axis=1)))
    print(f"\nUser rated '{dataset.movie_titles[source]}' well above their mean; recommendations:")
    for recommendation in recommender.recommend({source: 1.5}, n=5):
        print(f"  {dataset.movie_titles[recommendation.item]:<28} " f"{recommender.explain(recommendation)}")


if __name__ == "__main__":
    main()
