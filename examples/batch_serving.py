"""Batch serving: run many structure-learning jobs through repro.serve.

This example mirrors the paper's production deployment (Section VI) in
miniature, showing the three pillars of the serving layer:

1. **Batch fan-out** — a manifest of declarative ``LearningJob`` specs is
   executed by a ``BatchRunner``, serially or across worker processes;
2. **Content-addressed caching** — re-submitting the same jobs is near-free
   because results are keyed by (data fingerprint, config hash, seed);
3. **Warm-started re-learning** — a ``RelearnScheduler`` re-learns a drifting
   scenario window by window, starting each solve from the previous solution
   and spending measurably fewer solver iterations than cold starts;
4. **Streaming** — the same manifest consumed through a ``StreamingRunner``,
   which yields each result the moment its job finishes (with hard per-job
   deadlines available via ``timeout=``).

Run with ``python examples/batch_serving.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.least import LEASTConfig
from repro.serve import (
    BatchRunner,
    InMemoryCache,
    LearningJob,
    RelearnScheduler,
    StreamingRunner,
)


def main(
    n_jobs: int = 8,
    n_nodes: int = 20,
    n_workers: int = 2,
    n_windows: int = 4,
) -> dict:
    config = {"max_outer_iterations": 4, "max_inner_iterations": 150}

    # 1. Batch fan-out over a manifest of jobs (different seeds = different
    #    scenarios; in production each job would be one business scenario).
    jobs = [
        LearningJob(
            dataset="er2",
            seed=seed,
            dataset_options={"n_nodes": n_nodes},
            config=config,
        )
        for seed in range(n_jobs)
    ]
    cache = InMemoryCache()
    runner = BatchRunner(n_workers=n_workers, cache=cache)
    report = runner.run(jobs)
    print(
        f"batch of {report.n_jobs} jobs: {report.n_ok} ok in "
        f"{report.total_seconds:.2f}s ({report.jobs_per_second:.2f} jobs/s, "
        f"{report.n_workers} workers)"
    )

    # 2. Re-submitting the same manifest hits the cache for every job.
    rerun = BatchRunner(n_workers=1, cache=cache).run(
        [
            LearningJob(
                dataset="er2",
                seed=seed,
                dataset_options={"n_nodes": n_nodes},
                config=config,
            )
            for seed in range(n_jobs)
        ]
    )
    print(
        f"re-run: {rerun.n_cache_hits}/{rerun.n_jobs} cache hits in "
        f"{rerun.total_seconds:.3f}s (saved {rerun.solver_seconds_saved:.2f}s "
        f"of solver time)"
    )

    # 3. Warm-started windowed re-learning: the same scenario drifts slightly
    #    window to window; the scheduler re-uses each window's solution.
    rng = np.random.default_rng(0)
    node_names = [f"metric_{i}" for i in range(n_nodes)]
    least_config = LEASTConfig(max_outer_iterations=4, max_inner_iterations=150)
    scheduler = RelearnScheduler(least_config, warm_start=True)
    base = rng.normal(size=(300, n_nodes))
    for window in range(n_windows):
        drift = 0.05 * window * rng.normal(size=base.shape)
        scheduler.step(base + drift, node_names, seed=window)
    summary = scheduler.stats_summary()
    print(
        f"windowed re-learn over {n_windows} windows: "
        f"{summary['mean_inner_iterations_cold']:.0f} inner iterations cold vs "
        f"{summary['mean_inner_iterations_warm']:.0f} warm"
    )

    # 4. Streaming: consume results as they complete instead of waiting for
    #    the whole batch (a hard deadline would preempt runaway jobs here).
    streaming = StreamingRunner(n_workers=n_workers)
    stream_jobs = [
        LearningJob(
            dataset="er2",
            seed=seed,
            dataset_options={"n_nodes": n_nodes},
            config=config,
        )
        for seed in range(n_jobs)
    ]
    n_streamed = 0
    for result in streaming.stream(stream_jobs):
        n_streamed += 1
        print(f"  streamed {result.job_id}: {result.status} ({result.n_edges} edges)")
    print(
        f"streaming: first result after "
        f"{streaming.telemetry.time_to_first_result:.2f}s, "
        f"all {n_streamed} after {streaming.telemetry.total_seconds:.2f}s"
    )

    return {
        "batch": report.summary(),
        "rerun": rerun.summary(),
        "relearn": summary,
        "streaming": {
            "n_streamed": n_streamed,
            "time_to_first_result": streaming.telemetry.time_to_first_result,
            "total_seconds": streaming.telemetry.total_seconds,
        },
    }


if __name__ == "__main__":
    main()
