"""Quickstart: learn the structure of a Bayesian network from simulated data.

This is the minimal end-to-end workflow of the library:

1. generate a random ground-truth DAG (the paper's ER-2 benchmark generator);
2. simulate observations from a linear SEM on that DAG;
3. learn the structure back with LEAST;
4. evaluate the learned graph against the truth and fit a Bayesian network on it.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import LEAST, LEASTConfig, evaluate_structure, random_dag, simulate_linear_sem
from repro.bn import fit_linear_gaussian
from repro.core import grid_search_epsilon_tau
from repro.core.thresholding import threshold_to_dag


def main(
    n_nodes: int = 30,
    n_samples: int = 300,
    config: LEASTConfig | None = None,
) -> dict:
    # 1. Ground truth: an Erdős–Rényi DAG with average degree 2.
    truth = random_dag("ER-2", n_nodes, seed=0)
    print(f"ground truth: {np.count_nonzero(truth)} edges over {truth.shape[0]} nodes")

    # 2. Simulate observations with Gaussian noise.
    data = simulate_linear_sem(truth, n_samples=n_samples, noise_type="gaussian", seed=1)

    # 3. Learn the structure with LEAST (keep the optimization history so the
    #    paper's epsilon/tau grid-search protocol can pick the best stopping point).
    config = config or LEASTConfig(keep_history=True, track_h=True)
    result = LEAST(config).fit(data, seed=2)
    print(
        f"LEAST finished after {result.n_outer_iterations} outer iterations "
        f"(constraint value {result.constraint_value:.2e})"
    )

    # 4a. Evaluate against the known ground truth.
    search = grid_search_epsilon_tau(result, truth)
    metrics = search.best_metrics
    print(
        f"structure recovery: F1 = {metrics.f1:.3f}, SHD = {metrics.shd}, "
        f"FDR = {metrics.fdr:.3f}, threshold tau = {search.best_threshold}"
    )

    # 4b. Turn the learned weights into a usable Bayesian network.
    pruned, threshold = threshold_to_dag(result.weights, initial_threshold=0.1)
    network = fit_linear_gaussian(pruned, data)
    print(
        f"fitted linear-Gaussian BN with {network.n_edges()} edges "
        f"(log-likelihood {network.log_likelihood(data):.1f}, pruning threshold {threshold:.3f})"
    )

    # Without a ground truth you would stop here and inspect the strongest edges:
    strongest = sorted(
        ((i, j, pruned[i, j]) for i, j in zip(*np.nonzero(pruned))),
        key=lambda edge: -abs(edge[2]),
    )[:5]
    print("strongest learned edges (parent -> child: weight):")
    for parent, child, weight in strongest:
        print(f"  X{parent} -> X{child}: {weight:+.3f}")

    return {
        "f1": metrics.f1,
        "shd": metrics.shd,
        "n_edges": network.n_edges(),
        "log_likelihood": network.log_likelihood(data),
    }


if __name__ == "__main__":
    main()
