"""Gene-expression analysis (Section VI-B of the paper, Table I workflow).

Learns gene-regulatory structure on two benchmarks:

* the real Sachs protein-signalling network (11 nodes, 17 edges) with
  simulated expression data, and
* a synthetic scale-free gene-regulatory network standing in for the
  GeneNetWeaver E. coli dataset (scaled down so the NOTEARS baseline also
  finishes quickly).

Both LEAST and the NOTEARS baseline are evaluated with the same metrics the
paper reports (FDR, TPR, FPR, SHD, F1, AUC-ROC).

Run with ``python examples/gene_expression_analysis.py``.
"""

from __future__ import annotations

from repro.core import (
    LEAST,
    LEASTConfig,
    NOTEARS,
    NOTEARSConfig,
    grid_search_epsilon_tau,
    grid_search_threshold,
)
from repro.datasets import load_sachs, make_gene_regulatory_network
from repro.metrics import auc_roc


def evaluate(name: str, truth, data) -> None:
    print(f"\n--- {name}: {truth.shape[0]} genes, {int((truth != 0).sum())} true edges ---")

    least_config = LEASTConfig(keep_history=True, track_h=True, max_outer_iterations=10)
    least_result = LEAST(least_config).fit(data, seed=0)
    least_search = grid_search_epsilon_tau(least_result, truth)

    notears_config = NOTEARSConfig(max_outer_iterations=10, max_inner_iterations=60)
    notears_result = NOTEARS(notears_config).fit(data, seed=0)
    notears_search = grid_search_threshold(notears_result.weights, truth)

    header = f"{'algorithm':<10} {'#pred':>6} {'#TP':>5} {'FDR':>6} {'TPR':>6} {'SHD':>5} {'F1':>6} {'AUC':>6}"
    print(header)
    for label, search, weights in (
        ("NOTEARS", notears_search, notears_result.weights),
        ("LEAST", least_search, least_result.weights),
    ):
        metrics = search.best_metrics
        print(
            f"{label:<10} {metrics.n_predicted_edges:>6} {metrics.true_positives:>5} "
            f"{metrics.fdr:>6.3f} {metrics.tpr:>6.3f} {metrics.shd:>5} "
            f"{metrics.f1:>6.3f} {auc_roc(weights, truth):>6.3f}"
        )


def main() -> None:
    sachs = load_sachs(n_samples=1000, seed=1)
    evaluate("Sachs", sachs.truth, sachs.data)

    grn = make_gene_regulatory_network(
        n_genes=150, n_edges=350, n_samples=600, seed=2, name="ecoli-scaled-down"
    )
    evaluate("E. coli (synthetic, scaled down)", grn.truth, grn.data)


if __name__ == "__main__":
    main()
