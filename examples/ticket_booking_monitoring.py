"""Ticket-booking monitoring and root-cause analysis (Section VI-A of the paper).

The script reproduces the Fliggy production workflow on simulated logs:

1. a booking simulator generates attempt-level logs with a scheduled incident
   (an airline's reservation interface degrades for one hour);
2. every window, a BN is learned over the entity / error-type indicators with
   LEAST;
3. paths ending at error nodes are extracted and tested against the previous
   window; significant ones are reported with their root cause.

Run with ``python examples/ticket_booking_monitoring.py``.
"""

from __future__ import annotations

from repro.monitoring import BookingSimulator, Incident, MonitoringPipeline

HOUR = 3600.0


def main() -> None:
    simulator = BookingSimulator(seed=7)
    # Injected incidents, modelled on the explainable events of Table II.
    simulator.add_incident(
        Incident(
            entity_field="airline",
            entity_value="AC",
            step="step3_reserve",
            error_probability=0.6,
            start=1 * HOUR,
            end=2 * HOUR,
            category="airline",
            description="Air Canada booking system unscheduled maintenance",
        )
    )
    simulator.add_incident(
        Incident(
            entity_field="arrival_city",
            entity_value="WUH",
            step="step1_availability",
            error_probability=0.7,
            start=3 * HOUR,
            end=4 * HOUR,
            category="unpredictable event",
            description="Lock-down of Wuhan City; many flights cancelled",
        )
    )

    pipeline = MonitoringPipeline(simulator, window_seconds=HOUR)
    reports = pipeline.run(n_windows=5, seed=8)

    for report in reports:
        incidents = ", ".join(
            f"{incident.entity_field}={incident.entity_value}" for incident in report.active_incidents
        )
        print(
            f"window {report.window_index}: {report.n_records} bookings, "
            f"{report.n_anomalies} anomaly path(s)"
            + (f", active incident(s): {incidents}" if incidents else "")
        )
        for finding in report.findings:
            anomaly = finding.report
            status = "matches injected incident" if finding.is_true_positive else "unexplained"
            print(
                f"    path: {anomaly.path}  "
                f"error rate {anomaly.previous_rate:.1%} -> {anomaly.current_rate:.1%}  "
                f"p={anomaly.p_value:.2e}  category={finding.category}  [{status}]"
            )

    summary = pipeline.detection_summary()
    print("\nsummary:")
    for key, value in summary.items():
        print(f"  {key}: {value:.2f}")
    print("category breakdown:", pipeline.category_breakdown())


if __name__ == "__main__":
    main()
