#!/usr/bin/env python
"""Benchmark regression gate: compare ``BENCH_*.json`` against baselines.

CI runs this after the benchmark jobs, pointing it at the committed
``benchmarks/baselines.json``::

    python tools/bench_gate.py --baselines benchmarks/baselines.json

The baselines file maps each benchmark artifact to per-metric rules keyed by
dotted paths into its JSON::

    {
      "BENCH_serve.json": {
        "metrics": {
          "wall_clock_breakdown.n_orphans": {"max": 0},
          "cache.hits":                     {"min": 16},
          "throughput.speedup":             {"baseline": 0.95,
                                             "tolerance_pct": 40,
                                             "direction": "higher"}
        }
      }
    }

Three rule shapes:

``{"max": v}`` / ``{"min": v}``
    Hard bound — the metric may never exceed / fall below ``v``.
``{"baseline": v, "tolerance_pct": p, "direction": "lower"|"higher"}``
    Tolerance band around a committed reference value.  ``direction`` names
    which way is *better*: ``"lower"`` (e.g. seconds) fails when the metric
    grows past ``v * (1 + p/100)``; ``"higher"`` (e.g. speedup, F1) fails
    when it drops below ``v * (1 - p/100)``.

Any rule may additionally carry ``"when": "<dotted-path>"``: the rule is
enforced only when that path resolves to a truthy value *in the same
artifact*, and silently skipped otherwise.  A metric may also map to a *list*
of rules, each checked (and each honouring its own ``when``) — e.g. a strict
speedup floor gated on ``numba_available`` next to an unconditional sanity
floor::

    "speedup_at_512": [{"min": 3.0, "when": "numba_available"},
                       {"min": 0.8}]

A missing benchmark file, a missing metric path, or a non-numeric value is a
failure too — schema drift must not silently disable the gate.  Exit status:
0 all metrics pass, 1 any regression or missing data, 2 bad usage.

``--history BENCH_history.ndjson`` additionally validates the appended
history rows (see ``benchmarks/helpers.py:append_bench_history`` for the row
schema).  Deliberately stdlib-only so CI can run it without installing the
package.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: History row schema version this gate understands.
HISTORY_SCHEMA_VERSION = 1


def resolve_path(payload: dict, dotted: str):
    """Walk a dotted path into nested dicts; returns None when absent."""
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_metric(dotted: str, value, rule: dict) -> str | None:
    """Check one metric against its rule; returns a failure message or None."""
    if isinstance(value, bool):
        value = 1.0 if value else 0.0
    if not isinstance(value, (int, float)):
        return f"{dotted}: value {value!r} is not numeric"
    value = float(value)
    if "max" in rule and value > float(rule["max"]):
        return f"{dotted}: {value:g} exceeds max {float(rule['max']):g}"
    if "min" in rule and value < float(rule["min"]):
        return f"{dotted}: {value:g} below min {float(rule['min']):g}"
    if "baseline" in rule:
        baseline = float(rule["baseline"])
        tolerance = float(rule.get("tolerance_pct", 0.0)) / 100.0
        direction = rule.get("direction", "lower")
        if direction == "lower":
            limit = baseline * (1.0 + tolerance)
            if value > limit:
                return (
                    f"{dotted}: {value:g} regressed past {limit:g} "
                    f"(baseline {baseline:g} +{rule.get('tolerance_pct', 0)}%)"
                )
        elif direction == "higher":
            limit = baseline * (1.0 - tolerance)
            if value < limit:
                return (
                    f"{dotted}: {value:g} regressed below {limit:g} "
                    f"(baseline {baseline:g} -{rule.get('tolerance_pct', 0)}%)"
                )
        else:
            return f"{dotted}: unknown direction {direction!r}"
    return None


def check_bench_file(path: Path, spec: dict) -> tuple[list[str], int]:
    """Gate one benchmark artifact; returns (failures, n metrics checked)."""
    if not path.exists():
        return [f"{path}: benchmark artifact missing"], 0
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON ({exc})"], 0
    failures: list[str] = []
    metrics = spec.get("metrics", {})
    for dotted, rule in sorted(metrics.items()):
        value = resolve_path(payload, dotted)
        if value is None:
            failures.append(f"{path.name}:{dotted}: metric missing from artifact")
            continue
        rules = rule if isinstance(rule, list) else [rule]
        for one_rule in rules:
            if not isinstance(one_rule, dict):
                failures.append(
                    f"{path.name}:{dotted}: rule {one_rule!r} is not an object"
                )
                continue
            if "when" in one_rule and not resolve_path(payload, one_rule["when"]):
                continue  # conditional rule: its guard is falsy in this run
            message = check_metric(dotted, value, one_rule)
            if message is not None:
                failures.append(f"{path.name}:{message}")
    return failures, len(metrics)


def check_history(path: Path) -> list[str]:
    """Validate the schema of every row in a ``BENCH_history.ndjson`` file."""
    if not path.exists():
        return [f"{path}: history file missing"]
    failures: list[str] = []
    n_rows = 0
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            failures.append(f"{path.name}:{lineno}: not valid JSON")
            continue
        n_rows += 1
        if row.get("schema") != HISTORY_SCHEMA_VERSION:
            failures.append(
                f"{path.name}:{lineno}: schema {row.get('schema')!r} "
                f"(expected {HISTORY_SCHEMA_VERSION})"
            )
        for key in ("bench", "written_at", "run_id", "metrics"):
            if key not in row:
                failures.append(f"{path.name}:{lineno}: missing {key!r}")
        metrics = row.get("metrics")
        if isinstance(metrics, dict):
            bad = [k for k, v in metrics.items() if not isinstance(v, (int, float))]
            if bad:
                failures.append(
                    f"{path.name}:{lineno}: non-numeric metrics {bad[:3]}"
                )
        elif metrics is not None:
            failures.append(f"{path.name}:{lineno}: metrics is not an object")
    if n_rows == 0:
        failures.append(f"{path.name}: no history rows")
    return failures


def main(argv: list[str] | None = None) -> int:
    """Run the gate; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="bench_gate",
        description="Fail when any BENCH_*.json metric regressed past its baseline.",
    )
    parser.add_argument(
        "--baselines",
        default="benchmarks/baselines.json",
        help="baselines file (default benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--bench-dir",
        default=".",
        help="directory holding the BENCH_*.json artifacts (default .)",
    )
    parser.add_argument(
        "--history",
        default=None,
        metavar="NDJSON",
        help="also validate the schema of this BENCH_history.ndjson file",
    )
    args = parser.parse_args(argv)

    baselines_path = Path(args.baselines)
    if not baselines_path.exists():
        print(f"bench_gate: baselines file not found: {baselines_path}", file=sys.stderr)
        return 2
    try:
        baselines = json.loads(baselines_path.read_text())
    except json.JSONDecodeError as exc:
        print(f"bench_gate: baselines not valid JSON: {exc}", file=sys.stderr)
        return 2
    if not isinstance(baselines, dict) or not baselines:
        print("bench_gate: baselines must be a non-empty JSON object", file=sys.stderr)
        return 2

    failures: list[str] = []
    n_checked = 0
    for bench_name, spec in sorted(baselines.items()):
        bench_failures, n_metrics = check_bench_file(
            Path(args.bench_dir) / bench_name, spec
        )
        failures.extend(bench_failures)
        n_checked += n_metrics
        status = "FAIL" if bench_failures else "ok"
        print(f"{bench_name}: {n_metrics} metrics checked — {status}")
    if args.history:
        history_failures = check_history(Path(args.history))
        failures.extend(history_failures)
        print(
            f"{args.history}: history schema — "
            f"{'FAIL' if history_failures else 'ok'}"
        )

    if failures:
        print(f"\nbench_gate: {len(failures)} failure(s):", file=sys.stderr)
        for message in failures:
            print(f"  {message}", file=sys.stderr)
        return 1
    print(f"bench_gate: all {n_checked} metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
