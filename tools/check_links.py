#!/usr/bin/env python
"""Markdown link checker for the documentation site (stdlib only).

Scans the given markdown files (or every ``*.md`` under the given
directories) for inline links and images — ``[text](target)`` /
``![alt](target)`` — and reference definitions — ``[label]: target`` — and
verifies that every *relative* target resolves to an existing file or
directory. External schemes (``http://``, ``https://``, ``mailto:``) and
pure in-page anchors (``#section``) are skipped; a fragment on a relative
link (``page.md#section``) is stripped before the existence check.

Usage::

    python tools/check_links.py README.md docs

Exit status: 0 when every relative link resolves, 1 otherwise (each broken
link is reported as ``file:line: broken link -> target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links/images. The target group stops at the first closing paren or
#: whitespace (titles like ``(foo.md "Title")`` keep only the path part).
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
#: Reference-style definitions: ``[label]: target``.
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?\s*$")
#: Schemes that are never checked against the filesystem.
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    """Resolve CLI arguments into a sorted list of markdown files."""
    files: set[Path] = set()
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.update(path.rglob("*.md"))
        elif path.exists():
            files.add(path)
        else:
            print(f"error: no such file or directory: {argument}", file=sys.stderr)
            sys.exit(2)
    return sorted(files)


def iter_links(text: str):
    """Yield ``(line_number, target)`` for every link-like construct."""
    in_code_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in INLINE_LINK.finditer(line):
            yield line_number, match.group(1)
        match = REFERENCE_DEF.match(line)
        if match:
            yield line_number, match.group(1)


def check_file(path: Path) -> list[str]:
    """Return a list of broken-link messages for one markdown file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for line_number, target in iter_links(text):
        if EXTERNAL.match(target) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            problems.append(f"{path}:{line_number}: broken link -> {target}")
    return problems


def main(argv: list[str]) -> int:
    """Check every file and report; see module docstring for semantics."""
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    files = iter_markdown_files(argv)
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    checked = len(files)
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} file(s)")
        return 1
    print(f"ok: {checked} markdown file(s), all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
