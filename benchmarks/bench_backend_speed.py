"""Backend speed — the fused ``least_fast`` inner loop vs the reference.

Regenerates ``BENCH_backend.json``: the same seeded ER-2 problems at
d ∈ {128, 512, 2048} solved twice, once with the reference ``"least"``
backend and once with the fused ``"least_fast"`` backend (numba-JIT when the
package is importable, buffered numpy otherwise — the artifact records which
via ``jit_backend``).  Both arms run under ``inner_convergence_tol = 0.0`` so
they execute the *same number of inner iterations* and the wall-clock ratio
is a pure per-iteration cost comparison; JIT compilation happens once in
``warmup_jit()`` before any timing.

Parity is asserted in-run at every size: the two weight matrices must agree
within tight tolerance (bitwise on the numpy fallback), objectives must
match relatively, and the in-loop-thresholded edge sets must be identical.
``benchmarks/baselines.json`` gates ``parity_ok`` and ``speedup_at_512`` —
the latter with a ≥ 3× floor conditional on ``numba_available`` (the CI
runners install numba; this container does not) next to an unconditional
sanity floor for the fallback.

Run as a script (``python benchmarks/bench_backend_speed.py``) or through
pytest (``pytest benchmarks/bench_backend_speed.py -s``).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __package__ in (None, ""):  # direct `python benchmarks/bench_backend_speed.py`
    for entry in (str(_REPO_ROOT / "src"), str(_REPO_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import numpy as np

from benchmarks.helpers import append_bench_history, make_problem, print_table
from repro.core.backend import make_solver
from repro.core.least_fast import numba_available, warmup_jit
from repro.utils.timer import Timer

#: Per-size scenario: sample count and iteration budget shrink as d grows so
#: the whole module stays in CI-friendly wall-clock territory while each arm
#: still runs enough fused iterations for the ratio to be stable.
SIZES = {
    128: {"samples_per_node": 10, "batch_size": None, "outer": 2, "inner": 60},
    512: {"samples_per_node": 5, "batch_size": 512, "outer": 2, "inner": 40},
    2048: {"samples_per_node": 2, "batch_size": 256, "outer": 1, "inner": 10},
}
#: Shared solver hyper-parameters.  ``inner_convergence_tol = 0.0`` disables
#: the early stop so both arms run their full budget — equal iteration
#: counts, asserted below, make the timing ratio per-iteration cost.
BASE_CONFIG = {
    "threshold": 0.1,
    "tolerance": 1e-8,
    "inner_convergence_tol": 0.0,
}
#: Timed runs per arm (best-of); the 2048 row runs once.
N_REPEATS = 2
OUTPUT_PATH = _REPO_ROOT / "BENCH_backend.json"


def _solve(solver_name: str, data: np.ndarray, config: dict, seed: int):
    """One timed solve; returns (result, best-of-N seconds)."""
    repeats = N_REPEATS if data.shape[1] < 2048 else 1
    best = float("inf")
    result = None
    for _ in range(repeats):
        backend = make_solver(solver_name, **config)
        with Timer() as timer:
            result = backend.fit(data, rng=seed)
        best = min(best, timer.elapsed)
    return result, best


def run_size(n_nodes: int, scenario: dict) -> dict:
    """Reference vs fast on one seeded problem; parity asserted."""
    _, data = make_problem(
        "ER-2", n_nodes, "gaussian", seed=n_nodes,
        samples_per_node=scenario["samples_per_node"],
    )
    config = dict(
        BASE_CONFIG,
        batch_size=scenario["batch_size"],
        max_outer_iterations=scenario["outer"],
        max_inner_iterations=scenario["inner"],
    )
    ref, ref_seconds = _solve("least", data, config, seed=7)
    fast, fast_seconds = _solve("least_fast", data, config, seed=7)

    max_abs_diff = float(np.abs(ref.weights - fast.weights).max())
    ref_objective = float(ref.log.last("loss", 0.0))
    fast_objective = float(fast.log.last("loss", 0.0))
    objective_rel_diff = abs(ref_objective - fast_objective) / max(
        abs(ref_objective), 1e-12
    )
    edge_sets_equal = bool(
        np.array_equal(ref.weights != 0.0, fast.weights != 0.0)
    )
    iterations_match = (
        ref.n_inner_iterations == fast.n_inner_iterations
        and ref.n_outer_iterations == fast.n_outer_iterations
    )

    # Parity, asserted every run: tight on weights (bitwise on the numpy
    # fallback, ulp-drift headroom for the reordered numba kernels), exact on
    # the in-loop-thresholded edge set.
    assert iterations_match, (
        f"d={n_nodes}: iteration counts diverged "
        f"({ref.n_inner_iterations} vs {fast.n_inner_iterations})"
    )
    assert max_abs_diff < 1e-6, f"d={n_nodes}: max |dW| {max_abs_diff:g}"
    assert objective_rel_diff < 1e-8, (
        f"d={n_nodes}: objective drift {objective_rel_diff:g}"
    )
    assert edge_sets_equal, f"d={n_nodes}: thresholded edge sets differ"

    return {
        "n_nodes": n_nodes,
        "n_samples": int(data.shape[0]),
        "batch_size": scenario["batch_size"],
        "n_inner_iterations": int(ref.n_inner_iterations),
        "ref_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / max(fast_seconds, 1e-9),
        "max_abs_diff": max_abs_diff,
        "objective_rel_diff": objective_rel_diff,
        "edge_sets_equal": edge_sets_equal,
        "jit_backend": fast.telemetry.get("jit_backend", "unknown"),
    }


def main() -> dict:
    """Run every size, assert parity, write ``BENCH_backend.json``."""
    jit_compiled = warmup_jit()  # one-time numba compile, outside the timings
    per_size = {f"d{n}": run_size(n, scenario) for n, scenario in SIZES.items()}

    parity_ok = all(
        row["max_abs_diff"] < 1e-6 and row["edge_sets_equal"]
        for row in per_size.values()
    )
    results = {
        "cpu_count": os.cpu_count(),
        "numba_available": numba_available(),
        "jit_compiled": jit_compiled,
        "jit_backend": per_size["d512"]["jit_backend"],
        "solver_config": dict(BASE_CONFIG),
        "results": per_size,
        "speedup_at_128": per_size["d128"]["speedup"],
        "speedup_at_512": per_size["d512"]["speedup"],
        "speedup_at_2048": per_size["d2048"]["speedup"],
        "parity_ok": parity_ok,
    }

    print_table(
        f"repro.core.least_fast vs least ({results['jit_backend']} kernels)",
        ["d", "inner iters", "ref", "fast", "speedup", "max |dW|"],
        [
            [
                row["n_nodes"],
                row["n_inner_iterations"],
                f"{row['ref_seconds']:.3f}s",
                f"{row['fast_seconds']:.3f}s",
                f"{row['speedup']:.2f}x",
                f"{row['max_abs_diff']:.2e}",
            ]
            for row in per_size.values()
        ],
    )

    OUTPUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    history = append_bench_history("backend", results)
    print(f"appended history row to {history}")
    return results


def test_backend_speed_benchmark(benchmark):
    """Pytest entry point (used by CI to regenerate the artifact)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    main()


if __name__ == "__main__":
    main()
