"""E2 — Fig. 4 row 3: Pearson correlation between δ(W) and h(W) traces.

The paper reports correlation coefficients above 0.8 (mostly above 0.9)
between the spectral-bound constraint δ(W) and the exact NOTEARS constraint
h(W) recorded during optimization, as evidence that the bound is a faithful
proxy.  This harness runs LEAST with h-tracking enabled and reports the
correlation per configuration.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_table
from benchmarks.helpers import LEAST_BENCH_CONFIG, make_problem, run_least

CASES = [
    ("ER-2", 20, "gaussian"),
    ("ER-2", 50, "gaussian"),
    ("SF-4", 30, "gumbel"),
]


@pytest.fixture(scope="module")
def correlation_rows():
    rows = []
    for spec, n_nodes, noise in CASES:
        truth, data = make_problem(spec, n_nodes, noise, seed=11)
        run = run_least(truth, data, seed=12)
        rows.append((spec, n_nodes, noise, run.correlation))
    return rows


def test_fig4_correlation_table(benchmark, correlation_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print the δ(W) / h(W) correlation per configuration and check it is high."""
    table = [
        [spec, n_nodes, noise, f"{correlation:.3f}"]
        for spec, n_nodes, noise, correlation in correlation_rows
    ]
    print_table(
        "Fig. 4 (row 3): correlation between delta(W) and h(W) traces",
        ["graph", "d", "noise", "pearson corr"],
        table,
    )
    for *_, correlation in correlation_rows:
        assert correlation > 0.5  # paper reports > 0.8; the direction must agree strongly


def test_benchmark_delta_and_h_tracking(benchmark):
    """Timing anchor: a LEAST fit with per-iteration h(W) evaluation enabled."""
    truth, data = make_problem("ER-2", 30, "gaussian", seed=13)
    benchmark.pedantic(
        lambda: run_least(truth, data, seed=14, config=LEAST_BENCH_CONFIG),
        rounds=1,
        iterations=1,
    )
