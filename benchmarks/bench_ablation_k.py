"""A1 — ablation: number of bound-tightening iterations k.

The paper fixes k = 5 and reports that a small k suffices.  This ablation
sweeps k and reports (a) how tight the bound is relative to the exact spectral
radius on random cyclic matrices, and (b) the downstream structure-recovery
accuracy of LEAST, confirming both are insensitive beyond small k.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import make_problem, print_table, run_least
from repro.core.acyclicity import spectral_bound, spectral_radius
from repro.core.least import LEASTConfig

K_VALUES = [1, 3, 5, 10]


def test_bound_tightness_vs_k(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Mean looseness (bound / spectral radius) per k on random cyclic matrices."""
    rng = np.random.default_rng(111)
    matrices = []
    for _ in range(20):
        weights = rng.normal(size=(30, 30)) * (rng.random((30, 30)) < 0.2)
        np.fill_diagonal(weights, 0.0)
        matrices.append(weights)

    rows = []
    for k in K_VALUES:
        ratios = []
        for weights in matrices:
            radius = spectral_radius(weights**2)
            if radius < 1e-9:
                continue
            ratios.append(spectral_bound(weights, k=k) / radius)
        rows.append([k, f"{np.mean(ratios):.2f}", f"{np.max(ratios):.2f}"])
    print_table(
        "Ablation A1: bound looseness (delta / spectral radius) vs k",
        ["k", "mean ratio", "max ratio"],
        rows,
    )
    # Every ratio is >= 1 (it is an upper bound); looseness must not explode with k.
    assert all(float(row[1]) >= 1.0 for row in rows)


@pytest.fixture(scope="module")
def accuracy_by_k():
    truth, data = make_problem("ER-2", 30, "gaussian", seed=112)
    rows = []
    for k in K_VALUES:
        config = LEASTConfig(
            k=k, max_outer_iterations=8, max_inner_iterations=300, keep_history=True, track_h=True
        )
        run = run_least(truth, data, seed=113, config=config)
        rows.append((k, run))
    return rows


def test_accuracy_vs_k(benchmark, accuracy_by_k):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    table = [[k, f"{run.f1:.3f}", run.shd, f"{run.seconds:.1f}s"] for k, run in accuracy_by_k]
    print_table("Ablation A1: LEAST accuracy vs k", ["k", "F1", "SHD", "time"], table)
    # k = 5 (the paper's default) must be at least as good as k = 1.
    f1_by_k = {k: run.f1 for k, run in accuracy_by_k}
    assert f1_by_k[5] >= f1_by_k[1] - 0.15


def test_benchmark_bound_k10(benchmark):
    truth, _ = make_problem("ER-2", 200, "gaussian", seed=114)
    benchmark(lambda: spectral_bound(truth, k=10))
