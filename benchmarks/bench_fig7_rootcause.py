"""E9 — Fig. 7: breakdown of reported root causes by category.

Fig. 7 of the paper is a pie chart of several weeks of production reports:
42% external systems, 3% airlines, 10% travel agents, 3% intermediary
interfaces, 39% unpredictable events, 3% false alarms.  This harness runs the
monitoring pipeline over a longer simulated schedule whose incident mix
roughly follows those proportions and prints the resulting breakdown together
with the overall true-positive / false-alarm rates.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_table
from repro.monitoring import BookingSimulator, Incident, MonitoringPipeline

HOUR = 3600.0

PAPER_BREAKDOWN = {
    "external system": 0.42,
    "airline": 0.03,
    "travel agent": 0.10,
    "intermediary interface": 0.03,
    "unpredictable event": 0.39,
    "false alarms": 0.03,
}


def _mixed_schedule() -> list[Incident]:
    """An incident mix that mirrors the categories of Fig. 7."""
    schedule = []
    specs = [
        ("fare_source", "fare_source_2", "step2_price", "external system"),
        ("fare_source", "fare_source_1", "step4_payment", "external system"),
        ("airline", "MU", "step3_reserve", "airline"),
        ("agent", "agent_05", "step3_reserve", "travel agent"),
        ("fare_source", "fare_source_7", "step2_price", "intermediary interface"),
        ("arrival_city", "BKK", "step1_availability", "unpredictable event"),
        ("departure_city", "SEL", "step1_availability", "unpredictable event"),
        ("arrival_city", "SYD", "step1_availability", "unpredictable event"),
    ]
    for index, (field, value, step, category) in enumerate(specs):
        start = (index + 1) * HOUR
        schedule.append(
            Incident(field, value, step, 0.55, start=start, end=start + HOUR, category=category)
        )
    return schedule


@pytest.fixture(scope="module")
def fig7_run():
    simulator = BookingSimulator(incidents=_mixed_schedule(), seed=81)
    pipeline = MonitoringPipeline(simulator, window_seconds=HOUR)
    pipeline.run(10, seed=82)
    return pipeline


def test_fig7_category_breakdown(benchmark, fig7_run):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print the reproduced category breakdown next to the paper's numbers."""
    breakdown = fig7_run.category_breakdown()
    table = []
    for category, paper_fraction in PAPER_BREAKDOWN.items():
        table.append(
            [category, f"{paper_fraction:.0%}", f"{breakdown.get(category, 0.0):.0%}"]
        )
    print_table(
        "Fig. 7: root-cause category breakdown (paper vs reproduced)",
        ["category", "paper", "reproduced"],
        table,
    )
    summary = fig7_run.detection_summary()
    # Shape check: reports are dominated by true positives, like the paper's 97%.
    assert summary["n_reports"] >= 3
    assert summary["false_alarm_rate"] <= 0.5


def test_benchmark_ten_window_pipeline(benchmark):
    def run_pipeline():
        simulator = BookingSimulator(incidents=_mixed_schedule()[:3], seed=83)
        pipeline = MonitoringPipeline(simulator, window_seconds=HOUR)
        pipeline.run(4, seed=84)
        return pipeline

    benchmark.pedantic(run_pipeline, rounds=1, iterations=1)
