"""E1 — Fig. 4 rows 1–2: F1 and SHD of LEAST vs NOTEARS on ER-2 / SF-4 graphs.

The paper sweeps d ∈ {10, 20, 50, 100} with three noise families; this
harness uses d ∈ {20, 50} and one noise family per graph model (plus a
Gaussian/Gumbel contrast) to keep the wall-clock reasonable while preserving
the comparison's shape: both algorithms reach high F1 with a small gap.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_table
from benchmarks.helpers import make_problem, run_least, run_notears

CASES = [
    ("ER-2", 20, "gaussian"),
    ("ER-2", 50, "gaussian"),
    ("ER-2", 50, "gumbel"),
    ("SF-4", 20, "gaussian"),
    ("SF-4", 50, "exponential"),
]


@pytest.fixture(scope="module")
def accuracy_rows():
    rows = []
    for spec, n_nodes, noise in CASES:
        truth, data = make_problem(spec, n_nodes, noise, seed=1)
        least = run_least(truth, data, seed=2)
        notears = run_notears(truth, data, seed=2)
        rows.append((spec, n_nodes, noise, least, notears))
    return rows


def test_fig4_accuracy_table(benchmark, accuracy_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print the Fig. 4 accuracy comparison and check its qualitative shape."""
    table = []
    for spec, n_nodes, noise, least, notears in accuracy_rows:
        table.append(
            [
                spec,
                n_nodes,
                noise,
                f"{least.f1:.3f}",
                f"{notears.f1:.3f}",
                least.shd,
                notears.shd,
            ]
        )
    print_table(
        "Fig. 4 (rows 1-2): accuracy, LEAST vs NOTEARS",
        ["graph", "d", "noise", "LEAST F1", "NOTEARS F1", "LEAST SHD", "NOTEARS SHD"],
        table,
    )
    # Shape checks: both algorithms are far above chance, and LEAST is within
    # a modest gap of NOTEARS (the paper reports near-identical accuracy).
    for _, _, _, least, notears in accuracy_rows:
        assert least.f1 >= 0.45
        assert notears.f1 >= 0.5
        assert least.f1 >= notears.f1 - 0.4


def test_benchmark_least_fit_er2_d50(benchmark):
    """Timing anchor: one LEAST fit on ER-2, d=50, Gaussian noise."""
    truth, data = make_problem("ER-2", 50, "gaussian", seed=3)
    benchmark.pedantic(lambda: run_least(truth, data, seed=4), rounds=1, iterations=1)
