"""Shared configuration for the benchmark harness.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md for the experiment index).  The reproduced rows/series are
printed to stdout; run with ``pytest benchmarks/ --benchmark-only -s`` to see
them, and with ``--benchmark-only`` alone to just collect the timings.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _fixed_numpy_seed():
    """Make benchmark data generation deterministic run to run."""
    state = np.random.get_state()
    np.random.seed(0)
    yield
    np.random.set_state(state)
