"""E6 — Table II: root-cause paths identified for injected booking incidents.

Table II of the paper lists example anomalies (dates, identified path, the
real-world explanation).  The simulator lets us inject a schedule of incidents
modelled on those examples (airline outage, bad agent data, city lock-down,
airline-wide problem) and the harness reports, for each incident window, the
anomaly path the monitoring pipeline identified — the reproduced "identified
anomaly path of root cause" column — and checks the pipeline pinpoints the
responsible entity.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_table
from repro.monitoring import BookingSimulator, Incident, MonitoringPipeline

HOUR = 3600.0

INCIDENT_SCHEDULE = [
    Incident(
        "airline", "AC", "step3_reserve", 0.6, start=1 * HOUR, end=2 * HOUR,
        category="airline", description="Air Canada booking system unscheduled maintenance",
    ),
    Incident(
        "agent", "agent_03", "step3_reserve", 0.5, start=2 * HOUR, end=3 * HOUR,
        category="travel agent", description="Inaccurate data from agent office",
    ),
    Incident(
        "arrival_city", "WUH", "step1_availability", 0.7, start=3 * HOUR, end=4 * HOUR,
        category="unpredictable event", description="Lock-down of Wuhan City, flights cancelled",
    ),
    Incident(
        "fare_source", "fare_source_5", "step2_price", 0.5, start=4 * HOUR, end=5 * HOUR,
        category="intermediary interface", description="Intermediary price feed outage",
    ),
]


@pytest.fixture(scope="module")
def booking_run():
    simulator = BookingSimulator(incidents=list(INCIDENT_SCHEDULE), seed=71)
    pipeline = MonitoringPipeline(simulator, window_seconds=HOUR)
    reports = pipeline.run(6, seed=72)
    return pipeline, reports


def test_table2_identified_anomalies(benchmark, booking_run):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print the Table II analogue: injected incident vs identified path."""
    pipeline, reports = booking_run
    table = []
    detected_incidents = 0
    for report in reports:
        if not report.active_incidents:
            continue
        incident = report.active_incidents[0]
        matching = [f for f in report.findings if f.is_true_positive]
        identified = str(matching[0].report.path) if matching else "(none)"
        if matching:
            detected_incidents += 1
        table.append(
            [
                f"window {report.window_index}",
                f"{incident.entity_field}={incident.entity_value} -> {incident.step}",
                identified,
                incident.description,
            ]
        )
    print_table(
        "Table II: identified anomaly paths vs injected incidents",
        ["window", "injected incident", "identified path", "explainable event"],
        table,
    )
    # The paper reports 97% true positives; require most injected incidents found.
    assert detected_incidents >= max(1, int(0.5 * len(table)))


def test_detection_summary_shape(benchmark, booking_run):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    pipeline, _ = booking_run
    summary = pipeline.detection_summary()
    print_table(
        "Monitoring detection summary",
        ["metric", "value"],
        [[key, f"{value:.2f}"] for key, value in summary.items()],
    )
    assert summary["true_positive_rate"] >= 0.5
    assert summary["false_alarm_rate"] <= 0.5


def test_benchmark_single_window_analysis(benchmark):
    simulator = BookingSimulator(incidents=list(INCIDENT_SCHEDULE), seed=73)
    pipeline = MonitoringPipeline(simulator, window_seconds=HOUR)
    records = simulator.simulate_window(HOUR, HOUR)
    benchmark.pedantic(
        lambda: pipeline.learn_window_graph(records, seed=74), rounds=1, iterations=1
    )
