"""Shared helpers for the benchmark harness (not a test module)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.least import LEAST, LEASTConfig
from repro.core.model_selection import grid_search_epsilon_tau, grid_search_threshold
from repro.core.notears import NOTEARS, NOTEARSConfig
from repro.graph.generation import random_dag
from repro.metrics.roc import auc_roc
from repro.metrics.structural import evaluate_structure
from repro.sem.linear_sem import simulate_linear_sem
from repro.utils.timer import Timer

__all__ = [
    "BenchmarkRun",
    "make_problem",
    "run_least",
    "run_notears",
    "print_table",
    "LEAST_BENCH_CONFIG",
    "NOTEARS_BENCH_CONFIG",
]


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a small aligned text table (used by every benchmark module)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    print("  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))

#: Solver configurations used throughout the benchmark harness.  Iteration
#: caps are reduced relative to the paper's (1000 outer / 200 inner) so the
#: whole harness completes on a laptop in minutes; the relative shape of the
#: results is what matters.
LEAST_BENCH_CONFIG = LEASTConfig(
    max_outer_iterations=10,
    max_inner_iterations=400,
    keep_history=True,
    track_h=True,
    tolerance=1e-4,
)

NOTEARS_BENCH_CONFIG = NOTEARSConfig(
    max_outer_iterations=10,
    max_inner_iterations=60,
    l1_penalty=0.1,
)


@dataclass
class BenchmarkRun:
    """One solver run evaluated against the ground truth."""

    algorithm: str
    n_nodes: int
    f1: float
    shd: int
    fdr: float
    tpr: float
    fpr: float
    auc: float
    n_predicted_edges: int
    true_positives: int
    seconds: float
    correlation: float = float("nan")


def make_problem(spec: str, n_nodes: int, noise: str, seed: int, samples_per_node: int = 10):
    """Generate a (truth, data) benchmark problem following the paper's setup."""
    truth = random_dag(spec, n_nodes, seed=seed)
    data = simulate_linear_sem(truth, samples_per_node * n_nodes, noise_type=noise, seed=seed + 1)
    return truth, data


def run_least(truth, data, seed: int = 0, config: LEASTConfig | None = None) -> BenchmarkRun:
    """Run LEAST and evaluate it with the paper's ε/τ grid-search protocol."""
    from repro.metrics.correlation import trace_correlation

    config = config or LEAST_BENCH_CONFIG
    timer = Timer()
    with timer:
        result = LEAST(config).fit(data, seed=seed)
    search = grid_search_epsilon_tau(result, truth)
    metrics = search.best_metrics
    correlation = trace_correlation(result.log) if config.track_h else float("nan")
    return BenchmarkRun(
        algorithm="LEAST",
        n_nodes=truth.shape[0],
        f1=metrics.f1,
        shd=metrics.shd,
        fdr=metrics.fdr,
        tpr=metrics.tpr,
        fpr=metrics.fpr,
        auc=auc_roc(result.weights, truth),
        n_predicted_edges=metrics.n_predicted_edges,
        true_positives=metrics.true_positives,
        seconds=timer.elapsed,
        correlation=correlation,
    )


def run_notears(truth, data, seed: int = 0, config: NOTEARSConfig | None = None) -> BenchmarkRun:
    """Run the NOTEARS baseline and evaluate it with the τ grid search."""
    config = config or NOTEARS_BENCH_CONFIG
    timer = Timer()
    with timer:
        result = NOTEARS(config).fit(data, seed=seed)
    search = grid_search_threshold(result.weights, truth)
    metrics = search.best_metrics
    return BenchmarkRun(
        algorithm="NOTEARS",
        n_nodes=truth.shape[0],
        f1=metrics.f1,
        shd=metrics.shd,
        fdr=metrics.fdr,
        tpr=metrics.tpr,
        fpr=metrics.fpr,
        auc=auc_roc(result.weights, truth),
        n_predicted_edges=metrics.n_predicted_edges,
        true_positives=metrics.true_positives,
        seconds=timer.elapsed,
    )
