"""Shared helpers for the benchmark harness (not a test module)."""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core.least import LEAST, LEASTConfig
from repro.core.model_selection import grid_search_epsilon_tau, grid_search_threshold
from repro.core.notears import NOTEARS, NOTEARSConfig
from repro.graph.generation import random_dag
from repro.metrics.roc import auc_roc
from repro.metrics.structural import evaluate_structure
from repro.sem.linear_sem import simulate_linear_sem
from repro.utils.timer import Timer

__all__ = [
    "BenchmarkRun",
    "make_problem",
    "run_least",
    "run_notears",
    "print_table",
    "flatten_metrics",
    "append_bench_history",
    "HISTORY_SCHEMA_VERSION",
    "LEAST_BENCH_CONFIG",
    "NOTEARS_BENCH_CONFIG",
]

#: Version stamped into every ``BENCH_history.ndjson`` row (bump on schema
#: changes so ``tools/bench_gate.py --check-history`` can tell rows apart).
HISTORY_SCHEMA_VERSION = 1


def flatten_metrics(payload, prefix: str = "") -> dict[str, float]:
    """Flatten a nested benchmark-results dict to dotted-path numeric leaves.

    Only int/float/bool leaves survive (bools as 0.0/1.0); strings and lists
    are skipped, as are dicts keyed by process ids (e.g. the per-worker
    peak-RSS map — pids change every run and would bloat the history with
    never-repeating keys).  The dotted paths are the same ones
    ``benchmarks/baselines.json`` uses to address metrics, so one flattening
    convention serves both the history rows and the gate.
    """
    flat: dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            flat[path] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, dict):
            if value and all(str(k).isdigit() for k in value):
                continue  # pid-keyed map: per-run keys, useless as a series
            flat.update(flatten_metrics(value, prefix=path))
    return flat


def append_bench_history(
    bench: str, results: dict, path: str | Path | None = None
) -> Path:
    """Append one schema'd summary row for a benchmark run to the history file.

    Every benchmark module calls this right after writing its
    ``BENCH_<name>.json``; the accumulated ``BENCH_history.ndjson`` (one JSON
    row per run, append-only) is what turns isolated benchmark artifacts into
    a perf *trajectory*.  Row schema::

        {"schema": 1, "bench": "serve", "written_at": "<UTC ISO-8601>",
         "run_id": "<CI run id or 'local'>", "metrics": {"<dotted.path>": 1.0}}

    Parameters
    ----------
    bench:
        Short benchmark name (``serve``, ``shard``, ``sparse_shard``).
    results:
        The full results dict of the run; flattened via :func:`flatten_metrics`.
    path:
        History file (default: ``BENCH_history.ndjson`` at the repo root).
    """
    if path is None:
        path = Path(__file__).resolve().parents[1] / "BENCH_history.ndjson"
    path = Path(path)
    row = {
        "schema": HISTORY_SCHEMA_VERSION,
        "bench": bench,
        "written_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "run_id": os.environ.get("GITHUB_RUN_ID", "local"),
        "metrics": flatten_metrics(results),
    }
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a small aligned text table (used by every benchmark module)."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    print("  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))

#: Solver configurations used throughout the benchmark harness.  Iteration
#: caps are reduced relative to the paper's (1000 outer / 200 inner) so the
#: whole harness completes on a laptop in minutes; the relative shape of the
#: results is what matters.
LEAST_BENCH_CONFIG = LEASTConfig(
    max_outer_iterations=10,
    max_inner_iterations=400,
    keep_history=True,
    track_h=True,
    tolerance=1e-4,
)

NOTEARS_BENCH_CONFIG = NOTEARSConfig(
    max_outer_iterations=10,
    max_inner_iterations=60,
    l1_penalty=0.1,
)


@dataclass
class BenchmarkRun:
    """One solver run evaluated against the ground truth."""

    algorithm: str
    n_nodes: int
    f1: float
    shd: int
    fdr: float
    tpr: float
    fpr: float
    auc: float
    n_predicted_edges: int
    true_positives: int
    seconds: float
    correlation: float = float("nan")


def make_problem(spec: str, n_nodes: int, noise: str, seed: int, samples_per_node: int = 10):
    """Generate a (truth, data) benchmark problem following the paper's setup."""
    truth = random_dag(spec, n_nodes, seed=seed)
    data = simulate_linear_sem(truth, samples_per_node * n_nodes, noise_type=noise, seed=seed + 1)
    return truth, data


def run_least(truth, data, seed: int = 0, config: LEASTConfig | None = None) -> BenchmarkRun:
    """Run LEAST and evaluate it with the paper's ε/τ grid-search protocol."""
    from repro.metrics.correlation import trace_correlation

    config = config or LEAST_BENCH_CONFIG
    timer = Timer()
    with timer:
        result = LEAST(config).fit(data, seed=seed)
    search = grid_search_epsilon_tau(result, truth)
    metrics = search.best_metrics
    correlation = trace_correlation(result.log) if config.track_h else float("nan")
    return BenchmarkRun(
        algorithm="LEAST",
        n_nodes=truth.shape[0],
        f1=metrics.f1,
        shd=metrics.shd,
        fdr=metrics.fdr,
        tpr=metrics.tpr,
        fpr=metrics.fpr,
        auc=auc_roc(result.weights, truth),
        n_predicted_edges=metrics.n_predicted_edges,
        true_positives=metrics.true_positives,
        seconds=timer.elapsed,
        correlation=correlation,
    )


def run_notears(truth, data, seed: int = 0, config: NOTEARSConfig | None = None) -> BenchmarkRun:
    """Run the NOTEARS baseline and evaluate it with the τ grid search."""
    config = config or NOTEARS_BENCH_CONFIG
    timer = Timer()
    with timer:
        result = NOTEARS(config).fit(data, seed=seed)
    search = grid_search_threshold(result.weights, truth)
    metrics = search.best_metrics
    return BenchmarkRun(
        algorithm="NOTEARS",
        n_nodes=truth.shape[0],
        f1=metrics.f1,
        shd=metrics.shd,
        fdr=metrics.fdr,
        tpr=metrics.tpr,
        fpr=metrics.fpr,
        auc=auc_roc(result.weights, truth),
        n_predicted_edges=metrics.n_predicted_edges,
        true_positives=metrics.true_positives,
        seconds=timer.elapsed,
    )
