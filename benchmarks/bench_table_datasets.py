"""E7 — Table III: properties of the large-scale datasets.

The paper's Table III lists the node and sample counts of the three
large-scale datasets (Movielens, App-Security, App-Recom).  The proprietary
Alibaba datasets are replaced by synthetic generators; this harness prints the
properties of the generated stand-ins next to the paper's numbers so the
substitution is explicit, and verifies the generators honour the requested
sizes.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_table
from repro.datasets.grn import GRN_PRESETS, make_gene_regulatory_network
from repro.datasets.movielens import make_movielens

PAPER_PROPERTIES = [
    ("Movielens", 27278, 138493),
    ("App-Security", 91850, 1000000),
    ("App-Recom", 159008, 584871),
]


def test_table3_dataset_properties(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print paper vs reproduced dataset sizes (scaled-down synthetic stand-ins)."""
    movielens = make_movielens(n_movies=300, n_users=3000, n_series=40, seed=51)
    grn = make_gene_regulatory_network(n_genes=1565, n_edges=3648, n_samples=200, seed=52)

    table = [
        ["Movielens (paper)", 27278, 138493, "proprietary-scale original"],
        ["movielens-synthetic", movielens.n_movies, movielens.n_users, "planted item graph"],
        ["App-Security (paper)", 91850, 1000000, "proprietary, not reproducible"],
        ["App-Recom (paper)", 159008, 584871, "proprietary, not reproducible"],
        ["ecoli-scale GRN", grn.n_genes, grn.data.shape[0], "synthetic large-scale stand-in"],
    ]
    print_table(
        "Table III: dataset properties (paper vs synthetic stand-ins)",
        ["dataset", "# nodes", "# samples", "notes"],
        table,
    )
    assert movielens.n_movies == 300 and movielens.n_users == 3000
    assert grn.n_genes == GRN_PRESETS["ecoli-scale"]["n_genes"]
    assert grn.n_edges == GRN_PRESETS["ecoli-scale"]["n_edges"]


def test_benchmark_movielens_generation(benchmark):
    benchmark.pedantic(
        lambda: make_movielens(n_movies=200, n_users=2000, n_series=30, seed=53),
        rounds=1,
        iterations=1,
    )
