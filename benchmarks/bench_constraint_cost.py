"""A4 — ablation: cost of the acyclicity constraints as d grows.

This micro-benchmark isolates the paper's central efficiency claim: evaluating
the spectral bound δ and its gradient costs O(k·s) time and O(s) space,
whereas the matrix-exponential constraint h and the polynomial constraint g
cost O(d³) time and O(d²) space.  It times one value+gradient evaluation of
each constraint on sparse DAG-structured matrices of growing size.
"""

from __future__ import annotations

import pytest
import scipy.sparse as sp

from benchmarks.helpers import print_table
from repro.utils.timer import Timer
from repro.core.acyclicity import spectral_bound_with_gradient
from repro.core.notears_constraint import (
    notears_constraint_with_gradient,
    polynomial_constraint_with_gradient,
)
from repro.graph.generation import random_dag

SIZES = [50, 100, 200, 400]


def _time_call(function, *args, repeats: int = 3) -> float:
    timer = Timer()
    for _ in range(repeats):
        with timer:
            function(*args)
    return min(timer.laps)


@pytest.fixture(scope="module")
def cost_rows():
    rows = []
    for n_nodes in SIZES:
        weights = random_dag("ER-2", n_nodes, seed=101)
        sparse_weights = sp.csr_matrix(weights)
        # The dense path measures the pure-numpy constant factor; the sparse
        # (CSR) path is the representation LEAST-SP actually uses and is where
        # the O(k*s) vs O(d^3) asymptotic gap shows.
        delta_dense_time = _time_call(spectral_bound_with_gradient, weights)
        delta_sparse_time = _time_call(spectral_bound_with_gradient, sparse_weights)
        h_time = _time_call(notears_constraint_with_gradient, weights)
        g_time = _time_call(polynomial_constraint_with_gradient, weights)
        rows.append((n_nodes, delta_dense_time, delta_sparse_time, h_time, g_time))
    return rows


def test_constraint_cost_table(benchmark, cost_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print per-evaluation cost of delta vs h vs g and check delta wins at scale."""
    table = [
        [
            n_nodes,
            f"{delta_dense * 1e3:.2f}ms",
            f"{delta_sparse * 1e3:.2f}ms",
            f"{h_time * 1e3:.2f}ms",
            f"{g_time * 1e3:.2f}ms",
            f"{h_time / max(delta_sparse, 1e-12):.0f}x",
        ]
        for n_nodes, delta_dense, delta_sparse, h_time, g_time in cost_rows
    ]
    print_table(
        "Constraint evaluation cost (value + gradient)",
        ["d", "delta dense", "delta sparse (CSR)", "h (NOTEARS)", "g (polynomial)", "h/delta-sparse"],
        table,
    )
    # At the largest size the sparse-path spectral bound must be clearly
    # cheaper than the matrix-exponential constraint (the paper's O(ks) vs
    # O(d^3) argument); the dense path only measures numpy constant factors.
    largest = cost_rows[-1]
    assert largest[2] < largest[3]


def test_benchmark_delta_evaluation_d400(benchmark):
    weights = sp.csr_matrix(random_dag("ER-2", 400, seed=102))
    benchmark(lambda: spectral_bound_with_gradient(weights))


def test_benchmark_h_evaluation_d400(benchmark):
    weights = random_dag("ER-2", 400, seed=103)
    benchmark(lambda: notears_constraint_with_gradient(weights))
