"""A3 — ablation: in-loop hard thresholding θ and mini-batch size B.

The paper argues that filtering small entries of W during the inner loop keeps
the matrix sparse and removes false cycle-inducing edges, and that
mini-batching makes the per-iteration data cost independent of n.  This
ablation sweeps both knobs and reports accuracy, sparsity, and run time.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import make_problem, print_table, run_least
from repro.core.least import LEAST, LEASTConfig

THRESHOLDS = [0.0, 1e-3, 5e-3]
BATCH_SIZES = [None, 128]


@pytest.fixture(scope="module")
def threshold_sweep():
    truth, data = make_problem("ER-2", 30, "gaussian", seed=131)
    rows = []
    for threshold in THRESHOLDS:
        config = LEASTConfig(
            threshold=threshold,
            max_outer_iterations=8,
            max_inner_iterations=300,
            keep_history=True,
            track_h=True,
        )
        run = run_least(truth, data, seed=132, config=config)
        result = LEAST(config).fit(data, seed=132)
        density = np.count_nonzero(result.weights) / result.weights.size
        rows.append((threshold, run, density))
    return rows


def test_threshold_ablation(benchmark, threshold_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    table = [
        [theta, f"{run.f1:.3f}", run.shd, f"{density:.2%}", f"{run.seconds:.1f}s"]
        for theta, run, density in threshold_sweep
    ]
    print_table(
        "Ablation A3: in-loop thresholding theta",
        ["theta", "F1", "SHD", "final density", "time"],
        table,
    )
    # Thresholding must reduce the density of the final weight matrix without
    # destroying accuracy (theta stays well below the Adam step size).
    densities = [density for _, _, density in threshold_sweep]
    f1s = [run.f1 for _, run, _ in threshold_sweep]
    assert densities[-1] <= densities[0] + 1e-9
    assert min(f1s) >= max(f1s) - 0.35


@pytest.fixture(scope="module")
def batch_sweep():
    truth, data = make_problem("ER-2", 30, "gaussian", seed=133, samples_per_node=40)
    rows = []
    for batch_size in BATCH_SIZES:
        config = LEASTConfig(
            batch_size=batch_size,
            max_outer_iterations=8,
            max_inner_iterations=300,
            keep_history=True,
            track_h=True,
        )
        run = run_least(truth, data, seed=134, config=config)
        rows.append((batch_size, run))
    return rows


def test_batching_ablation(benchmark, batch_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    table = [
        ["full" if batch_size is None else batch_size, f"{run.f1:.3f}", run.shd, f"{run.seconds:.1f}s"]
        for batch_size, run in batch_sweep
    ]
    print_table("Ablation A3: mini-batch size B", ["B", "F1", "SHD", "time"], table)
    # Mini-batching may trade a little accuracy for speed but must stay usable.
    assert all(run.f1 >= 0.4 for _, run in batch_sweep)


def test_benchmark_minibatch_fit(benchmark):
    truth, data = make_problem("ER-2", 30, "gaussian", seed=135, samples_per_node=40)
    config = LEASTConfig(batch_size=128, max_outer_iterations=5, max_inner_iterations=200)
    benchmark.pedantic(lambda: LEAST(config).fit(data, seed=136), rounds=1, iterations=1)
