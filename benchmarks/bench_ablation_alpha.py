"""A2 — ablation: the row/column balancing factor α of the spectral bound.

The paper sets α = 0.9 and motivates it as balancing row sums against column
sums.  This ablation sweeps α and reports the bound's tightness and LEAST's
downstream accuracy, confirming the method is robust across a broad range.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import make_problem, print_table, run_least
from repro.core.acyclicity import spectral_bound, spectral_radius
from repro.core.least import LEASTConfig

ALPHAS = [0.1, 0.5, 0.9]


def test_bound_tightness_vs_alpha(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    rng = np.random.default_rng(121)
    matrices = []
    for _ in range(20):
        weights = rng.normal(size=(30, 30)) * (rng.random((30, 30)) < 0.2)
        np.fill_diagonal(weights, 0.0)
        matrices.append(weights)

    rows = []
    for alpha in ALPHAS:
        ratios = []
        for weights in matrices:
            radius = spectral_radius(weights**2)
            if radius < 1e-9:
                continue
            ratios.append(spectral_bound(weights, k=5, alpha=alpha) / radius)
        rows.append([alpha, f"{np.mean(ratios):.2f}", f"{np.max(ratios):.2f}"])
    print_table(
        "Ablation A2: bound looseness vs alpha",
        ["alpha", "mean ratio", "max ratio"],
        rows,
    )
    assert all(float(row[1]) >= 1.0 for row in rows)


@pytest.fixture(scope="module")
def accuracy_by_alpha():
    truth, data = make_problem("ER-2", 30, "gaussian", seed=122)
    rows = []
    for alpha in ALPHAS:
        config = LEASTConfig(
            alpha=alpha,
            max_outer_iterations=8,
            max_inner_iterations=300,
            keep_history=True,
            track_h=True,
        )
        run = run_least(truth, data, seed=123, config=config)
        rows.append((alpha, run))
    return rows


def test_accuracy_vs_alpha(benchmark, accuracy_by_alpha):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    table = [
        [alpha, f"{run.f1:.3f}", run.shd, f"{run.correlation:.2f}"]
        for alpha, run in accuracy_by_alpha
    ]
    print_table(
        "Ablation A2: LEAST accuracy vs alpha",
        ["alpha", "F1", "SHD", "corr(delta, h)"],
        table,
    )
    # The paper's default (alpha = 0.9) must give good accuracy; the sweep is
    # reported so the sensitivity to alpha is visible (small alpha weights the
    # column sums almost exclusively and can degrade the bound's usefulness).
    f1_by_alpha = {alpha: run.f1 for alpha, run in accuracy_by_alpha}
    assert f1_by_alpha[0.9] >= 0.6
    assert max(f1_by_alpha.values()) == f1_by_alpha[0.9] or f1_by_alpha[0.9] >= 0.6


def test_benchmark_bound_alpha_05(benchmark):
    truth, _ = make_problem("ER-2", 200, "gaussian", seed=124)
    benchmark(lambda: spectral_bound(truth, k=5, alpha=0.5))
