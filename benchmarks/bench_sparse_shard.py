"""E-sparse-shard — a ≥5k-node sharded LEAST-SP solve at serving scale.

First step on the paper's Fig. 5 scalability curve *through the serving
stack*: a 5120-node problem (40 independent ER-2 components) is planned with
the chunked sparse correlation skeleton
(:func:`repro.shard.planner.sparse_correlation_skeleton` — never a dense
``d × d``), solved block-by-block with the CSR-end-to-end ``least_sparse``
backend on the streaming engine, and stitched into a CSR DAG.

The benchmark records wall-clock per phase (plan / solve+stitch), the
process's **peak RSS** (``resource.getrusage``), and sparse-vs-dense memory
context into ``BENCH_sparse_shard.json`` (uploaded as a CI artifact), and
asserts every run that

* the stitched result is CSR and a DAG with every block completing,
* the end-to-end solve finishes under :data:`DEADLINE_SECONDS`,
* peak RSS stays under :data:`MEMORY_BUDGET_MB` — a coarse guard against
  dense-materialization regressions (the precise per-allocation gate is the
  tier-1 ``tests/test_sparse_memory.py`` tracemalloc budget).

Run as a script (``python benchmarks/bench_sparse_shard.py``) or through
pytest (``pytest benchmarks/bench_sparse_shard.py -s``).
"""

from __future__ import annotations

import json
import os
import resource
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __package__ in (None, ""):  # direct `python benchmarks/bench_sparse_shard.py` run
    for entry in (str(_REPO_ROOT / "src"), str(_REPO_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import numpy as np
import scipy.sparse as sp

from benchmarks.helpers import append_bench_history, print_table
from repro.graph.dag import is_dag
from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem
from repro.shard import ShardExecutor, ShardPlanner
from repro.utils.timer import Timer

N_NODES = 5120
N_COMPONENTS = 40  # 128 nodes each
N_SAMPLES = 300
N_WORKERS = 4
EDGE_THRESHOLD = 0.3
DEADLINE_SECONDS = 420.0
MEMORY_BUDGET_MB = 1536.0
WAVE_BLOCKS = 8
BOUNDARY_ROUNDS = 1
SOLVER_CONFIG = {
    "batch_size": 256,
    "max_inner_iterations": 80,
    "max_outer_iterations": 4,
    "support": "correlation",
    "support_max_parents": 6,
}
PLANNER_OPTIONS = {
    "skeleton_threshold": 0.2,
    "max_block_size": 64,
    "min_block_size": 16,
    "max_halo_size": 8,
    "dense_skeleton_limit": 1024,
    "skeleton_chunk_columns": 512,
}

# The scale rung: hierarchically planned, wave-batched, streamed.  A slimmer
# iteration budget keeps the 5× larger problem inside a CI-friendly deadline —
# this section gates *scale* (completion + memory), not accuracy.
SCALE_N_NODES = 25600
SCALE_N_COMPONENTS = 200  # 128 nodes each
SCALE_N_SAMPLES = 200
SCALE_PARTITION_COLUMNS = 5120
SCALE_WAVE_BLOCKS = 16
SCALE_DEADLINE_SECONDS = 900.0
SCALE_MEMORY_BUDGET_MB = 2560.0
SCALE_SOLVER_CONFIG = {
    "batch_size": 256,
    "max_inner_iterations": 40,
    "max_outer_iterations": 2,
    "support": "correlation",
    "support_max_parents": 6,
}
OUTPUT_PATH = _REPO_ROOT / "BENCH_sparse_shard.json"


def peak_rss_mb() -> float:
    """Current peak RSS of this process in MB (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def build_problem(
    n_nodes: int = N_NODES,
    n_components: int = N_COMPONENTS,
    n_samples: int = N_SAMPLES,
) -> tuple[sp.csr_matrix, np.ndarray]:
    """A block-diagonal scenario: sparse truth + per-component data.

    Each component's truth and sample matrix are generated independently
    (components are disconnected, so this is exact) — the full dense truth is
    never materialized; it is assembled as a block-diagonal CSR matrix.
    """
    per_block = n_nodes // n_components
    truths = []
    columns = []
    for index in range(n_components):
        truth = random_dag("ER-2", per_block, seed=300 + index)
        truths.append(sp.csr_matrix(truth))
        columns.append(
            simulate_linear_sem(
                truth, n_samples, noise_type="gaussian", seed=500 + index
            )
        )
    return sp.block_diag(truths, format="csr"), np.hstack(columns)


def sparse_f1(predicted: sp.spmatrix, truth: sp.spmatrix) -> dict:
    """Directed precision/recall/F1 between two sparse adjacency patterns."""
    pred = (predicted != 0).astype(np.int8).tocsr()
    true = (truth != 0).astype(np.int8).tocsr()
    tp = int(pred.multiply(true).nnz)
    n_pred = int(pred.nnz)
    n_true = int(true.nnz)
    precision = tp / n_pred if n_pred else 0.0
    recall = tp / n_true if n_true else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {
        "f1": f1,
        "n_predicted_edges": n_pred,
        "n_true_edges": n_true,
        "precision": precision,
        "recall": recall,
        "true_positives": tp,
    }


def scale_section() -> dict:
    """The 25,600-node rung: hierarchical plan + waves + overlapped streaming."""
    truth, data = build_problem(
        n_nodes=SCALE_N_NODES,
        n_components=SCALE_N_COMPONENTS,
        n_samples=SCALE_N_SAMPLES,
    )
    planner = ShardPlanner(
        **PLANNER_OPTIONS, partition_columns=SCALE_PARTITION_COLUMNS
    )
    executor = ShardExecutor(
        solver="least_sparse",
        config=SCALE_SOLVER_CONFIG,
        n_workers=N_WORKERS,
        edge_threshold=EDGE_THRESHOLD,
        wave_blocks=SCALE_WAVE_BLOCKS,
    )
    with Timer() as timer:
        result = executor.run_stream(data, planner, seed=0)
    total_seconds = timer.elapsed
    rss_peak = peak_rss_mb()

    stitched_sparse = sp.issparse(result.weights)
    dense_matrix_mb = SCALE_N_NODES * SCALE_N_NODES * 8 / 1e6
    section = {
        "complete": result.complete,
        "deadline_seconds": SCALE_DEADLINE_SECONDS,
        "dense_equivalent_mb": dense_matrix_mb,
        "is_dag": bool(is_dag(result.weights)),
        "memory_budget_mb": SCALE_MEMORY_BUDGET_MB,
        "metrics": sparse_f1(result.weights, truth) if stitched_sparse else {},
        "n_blocks": result.plan.n_blocks,
        "n_components": SCALE_N_COMPONENTS,
        "n_nodes": SCALE_N_NODES,
        "n_samples": SCALE_N_SAMPLES,
        "n_waves": result.n_waves,
        "partition_columns": SCALE_PARTITION_COLUMNS,
        "peak_rss_mb": rss_peak,
        "rss_below_dense_equivalent": rss_peak < dense_matrix_mb,
        "solver_config": dict(SCALE_SOLVER_CONFIG),
        "stitch": result.stitched.report.as_dict(),
        "stitched_is_sparse": stitched_sparse,
        "total_seconds": total_seconds,
        "under_deadline": total_seconds < SCALE_DEADLINE_SECONDS,
        "wave_blocks": SCALE_WAVE_BLOCKS,
    }

    # Scale-rung claims, asserted every run.
    assert stitched_sparse, "the scale rung must stay CSR end to end"
    assert section["is_dag"], "the 25.6k stitched graph must be a DAG"
    assert result.complete, (
        f"every block must complete at 25.6k nodes: "
        f"{result.n_blocks_failed} failed, {result.n_blocks_preempted} preempted"
    )
    assert section["under_deadline"], (
        f"25.6k-node streamed solve took {total_seconds:.1f}s, over the "
        f"{SCALE_DEADLINE_SECONDS:.0f}s deadline"
    )
    assert rss_peak < SCALE_MEMORY_BUDGET_MB, (
        f"peak RSS {rss_peak:.0f} MB exceeded the scale budget "
        f"{SCALE_MEMORY_BUDGET_MB:.0f} MB"
    )
    assert rss_peak < dense_matrix_mb, (
        f"peak RSS {rss_peak:.0f} MB is not below one dense d×d copy "
        f"({dense_matrix_mb:.0f} MB) — the scale claim fails"
    )
    return section


def main() -> dict:
    """Run the sharded sparse solve, assert the budget claims, write JSON."""
    rss_start = peak_rss_mb()
    truth, data = build_problem()

    planner = ShardPlanner(**PLANNER_OPTIONS)
    with Timer() as plan_timer:
        plan = planner.plan(data)
    plan_seconds = plan_timer.elapsed

    executor = ShardExecutor(
        solver="least_sparse",
        config=SOLVER_CONFIG,
        n_workers=N_WORKERS,
        edge_threshold=EDGE_THRESHOLD,
        wave_blocks=WAVE_BLOCKS,
        boundary_rounds=BOUNDARY_ROUNDS,
    )
    result = executor.run(data, plan, seed=0, planner=planner)
    total_seconds = plan_seconds + result.total_seconds
    rss_peak = peak_rss_mb()

    stitched_sparse = sp.issparse(result.weights)
    metrics = sparse_f1(result.weights, truth) if stitched_sparse else {}
    dense_matrix_mb = N_NODES * N_NODES * 8 / 1e6
    results = {
        "cpu_count": os.cpu_count(),
        "deadline_seconds": DEADLINE_SECONDS,
        "dense_equivalent_mb": dense_matrix_mb,
        "edge_threshold": EDGE_THRESHOLD,
        "memory_budget_mb": MEMORY_BUDGET_MB,
        "metrics": metrics,
        "n_components": N_COMPONENTS,
        "n_nodes": N_NODES,
        "n_samples": N_SAMPLES,
        "n_workers": N_WORKERS,
        "peak_rss_mb": rss_peak,
        "peak_rss_mb_at_start": rss_start,
        "plan": plan.summary(),
        "plan_seconds": plan_seconds,
        "profile": "default",
        "resolve": {
            "boundary_rounds": BOUNDARY_ROUNDS,
            "n_rounds": len(result.rounds),
            "rounds": [
                {key: value for key, value in entry.items() if key != "blocks"}
                for entry in result.rounds
            ],
        },
        "solve_seconds": result.total_seconds,
        "solver": "least_sparse",
        "solver_config": dict(SOLVER_CONFIG),
        "stitch": result.stitched.report.as_dict(),
        "stitched_is_sparse": stitched_sparse,
        "total_seconds": total_seconds,
        "under_deadline": total_seconds < DEADLINE_SECONDS,
        "waves": {"n_waves": result.n_waves, "wave_blocks": WAVE_BLOCKS},
    }

    print_table(
        f"repro.shard × least_sparse: d={N_NODES}, {plan.n_blocks} blocks, "
        f"{N_WORKERS} workers",
        ["phase", "value"],
        [
            ["plan (chunked sparse skeleton)", f"{plan_seconds:.2f}s"],
            ["solve + stitch", f"{result.total_seconds:.2f}s"],
            ["total", f"{total_seconds:.2f}s (deadline {DEADLINE_SECONDS:.0f}s)"],
            ["peak RSS", f"{rss_peak:.0f} MB (budget {MEMORY_BUDGET_MB:.0f} MB)"],
            ["dense d×d would need", f"{dense_matrix_mb:.0f} MB per copy"],
            ["stitched edges", result.stitched.report.n_edges],
            ["waves", f"{result.n_waves} ({WAVE_BLOCKS} blocks each)"],
            ["boundary rounds", len(result.rounds)],
            ["F1 vs truth", f"{metrics.get('f1', float('nan')):.3f}"],
            ["recall vs truth", f"{metrics.get('recall', float('nan')):.4f}"],
        ],
    )

    # The headline claims of the benchmark, asserted every run.
    assert stitched_sparse, "the sparse sharded path must produce CSR weights"
    assert is_dag(result.weights), "the stitched graph must be a DAG"
    assert result.complete, (
        f"every block must complete: {result.n_blocks_failed} failed, "
        f"{result.n_blocks_preempted} preempted"
    )
    assert results["under_deadline"], (
        f"sharded sparse solve took {total_seconds:.1f}s, "
        f"over the {DEADLINE_SECONDS:.0f}s deadline"
    )
    assert rss_peak < MEMORY_BUDGET_MB, (
        f"peak RSS {rss_peak:.0f} MB exceeded the {MEMORY_BUDGET_MB:.0f} MB "
        "budget — a dense materialization likely crept into the sparse path"
    )

    results["scale"] = scale_section()
    print_table(
        f"scale rung: d={SCALE_N_NODES}, partitions of "
        f"{SCALE_PARTITION_COLUMNS} columns, waves of {SCALE_WAVE_BLOCKS}",
        ["phase", "value"],
        [
            ["blocks / waves", f"{results['scale']['n_blocks']} / "
                               f"{results['scale']['n_waves']}"],
            ["plan+solve+stitch (streamed)",
             f"{results['scale']['total_seconds']:.2f}s "
             f"(deadline {SCALE_DEADLINE_SECONDS:.0f}s)"],
            ["peak RSS", f"{results['scale']['peak_rss_mb']:.0f} MB "
                         f"(budget {SCALE_MEMORY_BUDGET_MB:.0f} MB)"],
            ["dense d×d would need",
             f"{results['scale']['dense_equivalent_mb']:.0f} MB per copy"],
            ["complete", results["scale"]["complete"]],
            ["stitched edges", results["scale"]["stitch"]["n_edges"]],
        ],
    )

    OUTPUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    history = append_bench_history("sparse_shard", results)
    print(f"appended history row to {history}")
    return results


def test_sparse_shard_benchmark(benchmark):
    """Pytest entry point (used by CI to regenerate the artifact)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    main()


if __name__ == "__main__":
    main()
