"""E-shard — block-partitioned vs monolithic solving of one large problem.

Regenerates ``BENCH_shard.json`` (the artifact that used to be a stray
leftover of an unmerged experiment) from the :mod:`repro.shard` subsystem:
a 520-node problem made of 8 independent ER-2 components is solved

* **monolithically** — one dense LEAST run over all 520 nodes under a small
  fixed iteration budget (5 outer × 120 inner, batch 256), and
* **sharded** — :class:`~repro.shard.planner.ShardPlanner` partitions the
  correlation skeleton into blocks with halos,
  :class:`~repro.shard.executor.ShardExecutor` streams one job per block
  through the serving engine (2 workers), and
  :class:`~repro.shard.stitcher.Stitcher` merges the block graphs into a DAG.

Both learned graphs are scored against the ground truth (directed F1 / SHD at
``|weight| >= 0.3``).  The written JSON follows the schema documented in
``docs/sharding.md``: top-level scenario keys plus ``monolithic``, ``sharded``
(with nested ``plan`` and ``stitch`` digests), ``speedup``, and the
``f1_gap`` / ``sharded_faster`` comparison flags.

Run as a script (``python benchmarks/bench_shard.py``) or through pytest
(``pytest benchmarks/bench_shard.py -s``); both write ``BENCH_shard.json``
next to the repo root and assert the headline claims: the stitched graph is a
DAG, sharded F1 is at least monolithic F1, and the sharded solve is faster.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[1]
if __package__ in (None, ""):  # direct `python benchmarks/bench_shard.py` run
    for entry in (str(_REPO_ROOT / "src"), str(_REPO_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)

import numpy as np

from benchmarks.helpers import append_bench_history, print_table
from repro.core.least import LEAST, LEASTConfig
from repro.core.thresholding import threshold_weights
from repro.graph.dag import is_dag
from repro.graph.generation import random_dag
from repro.metrics.structural import evaluate_structure
from repro.sem.linear_sem import simulate_linear_sem
from repro.shard import ShardExecutor, ShardPlanner
from repro.utils.timer import Timer

N_NODES = 520
N_TRUE_BLOCKS = 8
N_SAMPLES = 500
N_WORKERS = 2
EDGE_THRESHOLD = 0.3
SOLVER_CONFIG = {
    "batch_size": 256,
    "max_inner_iterations": 120,
    "max_outer_iterations": 5,
}
PLANNER_OPTIONS = {
    "skeleton_threshold": 0.18,
    "max_block_size": 65,
    "min_block_size": 16,
    "max_halo_size": 6,
}
OUTPUT_PATH = _REPO_ROOT / "BENCH_shard.json"


def build_problem() -> tuple[np.ndarray, np.ndarray]:
    """The 520-node / 8-component scenario: block-diagonal truth + LSEM data."""
    per_block = N_NODES // N_TRUE_BLOCKS
    truth = np.zeros((N_NODES, N_NODES))
    for index in range(N_TRUE_BLOCKS):
        offset = index * per_block
        truth[offset : offset + per_block, offset : offset + per_block] = random_dag(
            "ER-2", per_block, seed=100 + index
        )
    data = simulate_linear_sem(truth, N_SAMPLES, noise_type="gaussian", seed=7)
    return truth, data


def run_monolithic(truth: np.ndarray, data: np.ndarray) -> dict:
    """One dense LEAST solve over the full problem, scored against the truth."""
    with Timer() as timer:
        result = LEAST(LEASTConfig(**SOLVER_CONFIG)).fit(data, seed=0)
    seconds = timer.elapsed
    pruned = threshold_weights(result.weights, EDGE_THRESHOLD)
    metrics = evaluate_structure(pruned, truth)
    return {
        "f1": metrics.f1,
        "n_edges": metrics.n_predicted_edges,
        "seconds": seconds,
        "shd": metrics.shd,
    }


def run_sharded(truth: np.ndarray, data: np.ndarray) -> dict:
    """Plan + streamed block solves + stitch, scored against the truth."""
    planner = ShardPlanner(**PLANNER_OPTIONS)
    executor = ShardExecutor(
        solver="least",
        config=SOLVER_CONFIG,
        n_workers=N_WORKERS,
        edge_threshold=EDGE_THRESHOLD,
    )
    with Timer() as timer:
        plan = planner.plan(data)
        result = executor.run(data, plan, seed=0)
    seconds = timer.elapsed
    metrics = evaluate_structure(result.weights, truth)
    assert result.complete, "every block job must complete in this scenario"
    return {
        "f1": metrics.f1,
        "is_dag": bool(is_dag(result.weights)),
        "n_edges": metrics.n_predicted_edges,
        "plan": plan.summary(),
        "seconds": seconds,
        "shd": metrics.shd,
        "stitch": result.stitched.report.as_dict(),
    }


def main() -> dict:
    """Run both arms, assert the headline claims, write ``BENCH_shard.json``."""
    truth, data = build_problem()
    monolithic = run_monolithic(truth, data)
    sharded = run_sharded(truth, data)

    results = {
        "cpu_count": os.cpu_count(),
        "edge_threshold": EDGE_THRESHOLD,
        "f1_gap": monolithic["f1"] - sharded["f1"],
        "f1_within_0_05": sharded["f1"] >= monolithic["f1"] - 0.05,
        "monolithic": monolithic,
        "n_nodes": N_NODES,
        "n_samples": N_SAMPLES,
        "n_true_blocks": N_TRUE_BLOCKS,
        "n_workers": N_WORKERS,
        "profile": "default",
        "sharded": sharded,
        "sharded_faster": sharded["seconds"] < monolithic["seconds"],
        "solver_config": dict(SOLVER_CONFIG),
        "speedup": monolithic["seconds"] / max(sharded["seconds"], 1e-9),
    }

    plan = sharded["plan"]
    stitch = sharded["stitch"]
    print_table(
        f"repro.shard: monolithic vs sharded LEAST, d={N_NODES} "
        f"({N_TRUE_BLOCKS} true components, {N_WORKERS} workers)",
        ["arm", "wall clock", "F1", "SHD", "edges"],
        [
            [
                "monolithic",
                f"{monolithic['seconds']:.2f}s",
                f"{monolithic['f1']:.3f}",
                monolithic["shd"],
                monolithic["n_edges"],
            ],
            [
                f"sharded ({plan['n_blocks']} blocks)",
                f"{sharded['seconds']:.2f}s",
                f"{sharded['f1']:.3f}",
                sharded["shd"],
                sharded["n_edges"],
            ],
            ["speedup", f"{results['speedup']:.2f}x", "", "", ""],
        ],
    )
    print_table(
        "repro.shard: stitch accounting",
        ["counter", "value"],
        [
            ["blocks stitched", stitch["n_blocks"]],
            ["duplicate (halo) edges", stitch["n_duplicate_edges"]],
            ["direction conflicts", stitch["n_direction_conflicts"]],
            ["cycle edges removed", stitch["n_cycle_edges_removed"]],
            ["removed weight", f"{stitch['removed_weight']:.3f}"],
        ],
    )

    # The headline claims of the benchmark, asserted every run.
    assert sharded["is_dag"], "the stitched graph must be a DAG"
    assert sharded["f1"] >= monolithic["f1"], (
        "sharding must not lose accuracy on the block-structured scenario: "
        f"sharded F1 {sharded['f1']:.3f} < monolithic {monolithic['f1']:.3f}"
    )
    assert results["sharded_faster"], (
        f"sharded solve ({sharded['seconds']:.1f}s) must beat the monolithic "
        f"one ({monolithic['seconds']:.1f}s)"
    )

    OUTPUT_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    history = append_bench_history("shard", results)
    print(f"appended history row to {history}")
    return results


def test_shard_benchmark(benchmark):
    """Pytest entry point (used by CI to regenerate the artifact)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    main()


if __name__ == "__main__":
    main()
