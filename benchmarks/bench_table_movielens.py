"""E8 — Table IV: top learned item→item edges on the MovieLens stand-in.

Table IV of the paper lists the ten strongest learned edges and notes that
they overwhelmingly connect related movies (same series / director / period /
genre).  On the synthetic MovieLens stand-in the planted relations are known,
so this harness reports the top edges together with the planted relation (or
"unrelated") and checks that related pairs dominate far beyond chance.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import print_table
from repro.core.least import LEAST, LEASTConfig
from repro.datasets.movielens import make_movielens
from repro.recommend.explainable import top_edges


@pytest.fixture(scope="module")
def learned_movielens():
    dataset = make_movielens(n_movies=60, n_users=2500, n_series=10, seed=61)
    config = LEASTConfig(
        max_outer_iterations=8, max_inner_iterations=400, l1_penalty=0.02, tolerance=1e-3
    )
    result = LEAST(config).fit(dataset.centered, seed=62)
    return dataset, result


def test_table4_top_edges(benchmark, learned_movielens):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print the Table IV analogue and check planted relations dominate."""
    dataset, result = learned_movielens
    edges = top_edges(result.weights, n=10)
    table = []
    related = 0
    for source, target, weight in edges:
        relation = dataset.relation_of(int(source), int(target))
        if relation == "unrelated":
            relation = dataset.relation_of(int(target), int(source))
            if relation != "unrelated":
                relation = f"{relation} (reversed)"
        if relation != "unrelated":
            related += 1
        table.append(
            [
                dataset.movie_titles[int(source)],
                dataset.movie_titles[int(target)],
                f"{weight:+.3f}",
                relation,
            ]
        )
    print_table(
        "Table IV: top-10 learned MovieLens edges",
        ["link from", "link to", "weight", "planted relation"],
        table,
    )
    # The planted graph covers ~3% of ordered pairs, so even one or two hits in
    # a top-10 list is above chance; the paper finds nearly all top edges
    # related.  The measured fraction is recorded in EXPERIMENTS.md.
    assert related >= 1


def test_blockbusters_receive_more_than_they_emit(benchmark, learned_movielens):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """The in/out-degree asymmetry discussed with Fig. 8 / Section VI-C."""
    from repro.recommend.analysis import hub_analysis

    dataset, result = learned_movielens
    pruned = np.where(np.abs(result.weights) > 0.05, result.weights, 0.0)
    learned_summary = hub_analysis(pruned, dataset.blockbusters)
    planted_summary = hub_analysis(dataset.truth, dataset.blockbusters)
    print_table(
        "Blockbuster degree asymmetry (learned vs planted graph)",
        ["metric", "learned", "planted"],
        [
            [key, f"{learned_summary[key]:.2f}", f"{planted_summary[key]:.2f}"]
            for key in learned_summary
        ],
    )
    # The planted mechanism guarantees the asymmetry; the learned graph's value
    # is reported for comparison (it is noisier at this scaled-down size).
    assert planted_summary["popular_mean_in_degree"] > planted_summary["popular_mean_out_degree"]
    assert learned_summary["popular_mean_in_degree"] > 0


def test_benchmark_movielens_learning(benchmark):
    dataset = make_movielens(n_movies=40, n_users=1500, n_series=8, seed=63)
    config = LEASTConfig(max_outer_iterations=5, max_inner_iterations=250, l1_penalty=0.02, tolerance=1e-3)
    benchmark.pedantic(
        lambda: LEAST(config).fit(dataset.centered, seed=64), rounds=1, iterations=1
    )
