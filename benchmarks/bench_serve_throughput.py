"""E-serve — throughput of the batch serving layer (repro.serve).

The paper's Section VI deployment executes ~100k structure-learning tasks per
day; this module measures the three mechanisms the serving layer uses to get
there on one machine and writes a ``BENCH_serve.json`` summary next to the
repo root:

* serial vs. parallel execution of a 16-job manifest (jobs/sec);
* content-addressed caching (second submission of the same manifest);
* cold vs. warm-started windowed re-learning (solver iterations per window and
  equivalence of the produced anomaly reports).

Run with ``pytest benchmarks/bench_serve_throughput.py -s``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.helpers import print_table
from repro.core.least import LEASTConfig
from repro.monitoring import BookingSimulator, Incident, MonitoringPipeline
from repro.serve import BatchRunner, InMemoryCache, LearningJob

N_JOBS = 16
N_WORKERS = 4
JOB_CONFIG = {"max_outer_iterations": 4, "max_inner_iterations": 150}
RESULTS: dict[str, dict] = {}


def _manifest() -> list[LearningJob]:
    return [
        LearningJob(
            dataset="er2",
            seed=seed,
            dataset_options={"n_nodes": 30},
            config=dict(JOB_CONFIG),
        )
        for seed in range(N_JOBS)
    ]


@pytest.fixture(scope="module", autouse=True)
def _write_summary():
    """Persist everything the module measured once all tests ran."""
    yield
    if RESULTS:
        path = Path(__file__).resolve().parents[1] / "BENCH_serve.json"
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")


def test_serial_vs_parallel_throughput(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    serial = BatchRunner(n_workers=1).run(_manifest())
    parallel = BatchRunner(n_workers=N_WORKERS).run(_manifest())
    assert serial.n_ok == N_JOBS and parallel.n_ok == N_JOBS

    speedup = serial.total_seconds / max(parallel.total_seconds, 1e-9)
    RESULTS["throughput"] = {
        "n_jobs": N_JOBS,
        "serial_seconds": serial.total_seconds,
        "serial_jobs_per_second": serial.jobs_per_second,
        "parallel_workers": N_WORKERS,
        "parallel_seconds": parallel.total_seconds,
        "parallel_jobs_per_second": parallel.jobs_per_second,
        "speedup": speedup,
        "cpu_count": os.cpu_count(),
    }
    print_table(
        "repro.serve: serial vs parallel execution of a 16-job manifest",
        ["mode", "wall clock", "jobs/s"],
        [
            ["serial", f"{serial.total_seconds:.2f}s", f"{serial.jobs_per_second:.2f}"],
            [
                f"parallel x{N_WORKERS}",
                f"{parallel.total_seconds:.2f}s",
                f"{parallel.jobs_per_second:.2f}",
            ],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )
    # Parallel results must be identical to serial ones (same seeds).
    for a, b in zip(serial.results, parallel.results):
        assert a.n_edges == b.n_edges
    if (os.cpu_count() or 1) > 1:
        # With real cores available the parallel manifest must finish faster.
        assert parallel.total_seconds < serial.total_seconds
    else:  # pragma: no cover - single-core CI boxes
        print("single-core machine: skipping the parallel<serial assertion")


def test_cache_hits_skip_solver_execution(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    cache = InMemoryCache()
    first = BatchRunner(cache=cache).run(_manifest())
    second = BatchRunner(cache=cache).run(_manifest())
    assert first.n_cache_hits == 0
    assert second.n_cache_hits == N_JOBS
    # A fully cached manifest does no solver work at all.
    assert second.solver_seconds == 0.0
    assert second.total_seconds < first.total_seconds / 10
    RESULTS["cache"] = {
        "first_seconds": first.total_seconds,
        "second_seconds": second.total_seconds,
        "hits": second.n_cache_hits,
        "solver_seconds_saved": second.solver_seconds_saved,
    }
    print_table(
        "repro.serve: cold manifest vs fully cached re-submission",
        ["run", "wall clock", "cache hits"],
        [
            ["first", f"{first.total_seconds:.2f}s", first.n_cache_hits],
            ["second", f"{second.total_seconds:.3f}s", second.n_cache_hits],
        ],
    )


def test_warm_start_cuts_relearn_iterations(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    incident = Incident("airline", "AC", "step3_reserve", 0.7, 3600, 10800)
    outcomes = {}
    for warm in (True, False):
        simulator = BookingSimulator(incidents=[incident], seed=5)
        pipeline = MonitoringPipeline(
            simulator, window_seconds=1800.0, warm_start=warm
        )
        pipeline.run(5, seed=11)
        outcomes[warm] = {
            "solver": pipeline.solver_summary(),
            "detection": pipeline.detection_summary(),
        }

    warm_solver = outcomes[True]["solver"]
    cold_solver = outcomes[False]["solver"]
    warm_detect = outcomes[True]["detection"]
    cold_detect = outcomes[False]["detection"]
    RESULTS["warm_start"] = {
        "warm_total_inner_iterations": warm_solver["total_inner_iterations"],
        "cold_total_inner_iterations": cold_solver["total_inner_iterations"],
        "warm_seconds": warm_solver["total_seconds"],
        "cold_seconds": cold_solver["total_seconds"],
        "warm_incidents_detected": warm_detect["incident_windows_detected"],
        "cold_incidents_detected": cold_detect["incident_windows_detected"],
        "warm_false_alarm_rate": warm_detect["false_alarm_rate"],
        "cold_false_alarm_rate": cold_detect["false_alarm_rate"],
    }
    print_table(
        "repro.serve: warm vs cold windowed re-learning (5 monitoring windows)",
        ["mode", "inner iters", "seconds", "incidents found", "false alarms"],
        [
            [
                "warm",
                int(warm_solver["total_inner_iterations"]),
                f"{warm_solver['total_seconds']:.2f}",
                int(warm_detect["incident_windows_detected"]),
                f"{warm_detect['false_alarm_rate']:.2f}",
            ],
            [
                "cold",
                int(cold_solver["total_inner_iterations"]),
                f"{cold_solver['total_seconds']:.2f}",
                int(cold_detect["incident_windows_detected"]),
                f"{cold_detect['false_alarm_rate']:.2f}",
            ],
        ],
    )
    # Warm starts must spend fewer solver iterations...
    assert (
        warm_solver["total_inner_iterations"] < cold_solver["total_inner_iterations"]
    )
    # ...while finding the same incidents with no extra false alarms.
    assert (
        warm_detect["incident_windows_detected"]
        >= cold_detect["incident_windows_detected"]
    )
    assert warm_detect["false_alarm_rate"] <= cold_detect["false_alarm_rate"]
