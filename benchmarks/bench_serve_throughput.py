"""E-serve — throughput of the streaming serving layer (repro.serve).

The paper's Section VI deployment executes ~100k structure-learning tasks per
day; this module measures the mechanisms the serving layer uses to get there
on one machine and writes a ``BENCH_serve.json`` summary next to the repo
root:

* disposable-process vs persistent-pool execution of a 16-job manifest under
  forced ``spawn`` (the pool's per-worker amortization of interpreter boot +
  registry restore — the ``throughput.speedup`` the regression gate pins),
  with the serial inline run as context;
* content-addressed caching (second submission of the same manifest);
* cold vs. warm-started windowed re-learning (solver iterations per window and
  equivalence of the produced anomaly reports);
* time-to-first-result of the streaming engine vs. total batch wall clock
  (``time_to_first_result`` section);
* hard preemption: a manifest with one hanging job under a deadline — the
  hanging worker is SIGKILLed, every normal result still streams out
  (``preemption`` section);
* a fully traced run (``repro.obs``): the parent+worker span trees are merged
  and reduced to a span-derived wall-clock breakdown — worker_spawn vs. solve
  vs. queue_wait seconds — pinning the ROADMAP's "startup dominates
  throughput" hypothesis to a measured number (``wall_clock_breakdown``
  section; the raw trace and metrics land in ``trace.ndjson`` /
  ``metrics.json`` next to the repo root for CI artifact upload).

See ``docs/benchmarks.md`` for the exact ``BENCH_serve.json`` schema.
Run with ``pytest benchmarks/bench_serve_throughput.py -s``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from benchmarks.helpers import append_bench_history, print_table
from repro.core.least import LEASTConfig
from repro.monitoring import BookingSimulator, Incident, MonitoringPipeline
from repro.obs import NDJSONFileSink, TraceModel, Tracer, validate_trace, wall_clock_section
from repro.obs.sampler import is_supported as sampling_supported
from repro.serve import BatchRunner, InMemoryCache, LearningJob, StreamingRunner
from repro.serve.job import register_solver, unregister_solver
from repro.shard.executor import ShardExecutor
from repro.shard.planner import ShardPlanner
from repro.utils.timer import Timer

N_JOBS = 16
N_WORKERS = 4
JOB_CONFIG = {"max_outer_iterations": 4, "max_inner_iterations": 150}
RESULTS: dict[str, dict] = {}


@dataclass(frozen=True)
class _HangConfig:
    duration: float = 300.0


class _HangSolver:
    """A solver that sleeps far past any deadline (module-level: picklable)."""

    def __init__(self, config: _HangConfig):
        self.config = config

    def fit(self, data, seed=None):
        time.sleep(self.config.duration)
        from repro.core.least import LEASTResult

        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


def _manifest() -> list[LearningJob]:
    return [
        LearningJob(
            dataset="er2",
            seed=seed,
            dataset_options={"n_nodes": 30},
            config=dict(JOB_CONFIG),
        )
        for seed in range(N_JOBS)
    ]


@pytest.fixture(scope="module", autouse=True)
def _write_summary():
    """Persist everything the module measured once all tests ran."""
    yield
    if RESULTS:
        path = Path(__file__).resolve().parents[1] / "BENCH_serve.json"
        path.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n")
        print(f"\nwrote {path}")
        history = append_bench_history("serve", RESULTS)
        print(f"appended history row to {history}")


def test_pool_amortizes_worker_startup(benchmark, monkeypatch):
    """The pool's headline number: disposable-process vs persistent-pool
    execution of the same 16-job manifest under forced ``spawn``.

    ``max_jobs_per_worker=1`` makes the pool behave exactly like the old
    one-process-per-job engine (one interpreter boot + registry restore per
    job); the default pool pays that cost once per *worker*.  The ratio is
    the amortization win the ``throughput.speedup`` baseline gates — a
    process-management effect, so it shows up even on a single-core box
    (where parallel-vs-serial speedups cannot)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    serial = BatchRunner(n_workers=1).run(_manifest())
    assert serial.n_ok == N_JOBS

    # spawn makes the per-worker boot cost explicit and identical for both
    # engines (fork would hide it behind page-table copying).
    monkeypatch.setenv("REPRO_SERVE_START_METHOD", "spawn")
    disposable_runner = StreamingRunner(
        n_workers=N_WORKERS, timeout=120.0, max_jobs_per_worker=1
    )
    disposable = disposable_runner.run(_manifest())
    pooled_runner = StreamingRunner(n_workers=N_WORKERS, timeout=120.0)
    pooled = pooled_runner.run(_manifest())
    assert disposable.n_ok == N_JOBS and pooled.n_ok == N_JOBS

    speedup = disposable.total_seconds / max(pooled.total_seconds, 1e-9)
    RESULTS["throughput"] = {
        "n_jobs": N_JOBS,
        "start_method": "spawn",
        "serial_seconds": serial.total_seconds,
        "serial_jobs_per_second": serial.jobs_per_second,
        "pooled_workers": N_WORKERS,
        "disposable_seconds": disposable.total_seconds,
        "disposable_jobs_per_second": disposable.jobs_per_second,
        "pooled_seconds": pooled.total_seconds,
        "pooled_jobs_per_second": pooled.jobs_per_second,
        "workers_spawned_disposable": disposable_runner.telemetry.n_workers_spawned,
        "workers_spawned_pooled": pooled_runner.telemetry.n_workers_spawned,
        "speedup": speedup,
        "speedup_vs_serial": serial.total_seconds / max(pooled.total_seconds, 1e-9),
        "cpu_count": os.cpu_count(),
    }
    print_table(
        "repro.serve: disposable processes vs persistent pool (16 jobs, spawn)",
        ["mode", "wall clock", "jobs/s", "workers spawned"],
        [
            ["serial (inline)", f"{serial.total_seconds:.2f}s", f"{serial.jobs_per_second:.2f}", 0],
            [
                f"disposable x{N_WORKERS}",
                f"{disposable.total_seconds:.2f}s",
                f"{disposable.jobs_per_second:.2f}",
                disposable_runner.telemetry.n_workers_spawned,
            ],
            [
                f"pooled x{N_WORKERS}",
                f"{pooled.total_seconds:.2f}s",
                f"{pooled.jobs_per_second:.2f}",
                pooled_runner.telemetry.n_workers_spawned,
            ],
            ["pool speedup", f"{speedup:.2f}x", "", ""],
        ],
    )
    # The disposable engine boots one interpreter per job; the pool boots at
    # most one per worker slot (plus nothing, since no job crashes here).
    assert disposable_runner.telemetry.n_workers_spawned == N_JOBS
    assert pooled_runner.telemetry.n_workers_spawned <= N_WORKERS
    assert disposable_runner.telemetry.n_recycled == N_JOBS
    # Identical results either way (same seeds, same solver).
    for a, b in zip(disposable.results, pooled.results):
        assert a.n_edges == b.n_edges


def test_cache_hits_skip_solver_execution(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    cache = InMemoryCache()
    first = BatchRunner(cache=cache).run(_manifest())
    second = BatchRunner(cache=cache).run(_manifest())
    assert first.n_cache_hits == 0
    assert second.n_cache_hits == N_JOBS
    # A fully cached manifest does no solver work at all.
    assert second.solver_seconds == 0.0
    assert second.total_seconds < first.total_seconds / 10
    RESULTS["cache"] = {
        "first_seconds": first.total_seconds,
        "second_seconds": second.total_seconds,
        "hits": second.n_cache_hits,
        "solver_seconds_saved": second.solver_seconds_saved,
    }
    print_table(
        "repro.serve: cold manifest vs fully cached re-submission",
        ["run", "wall clock", "cache hits"],
        [
            ["first", f"{first.total_seconds:.2f}s", first.n_cache_hits],
            ["second", f"{second.total_seconds:.3f}s", second.n_cache_hits],
        ],
    )


def test_streaming_time_to_first_result(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    runner = StreamingRunner(n_workers=N_WORKERS)
    timer = Timer().start()
    arrivals = []
    for result in runner.stream(_manifest()):
        assert result.status == "ok"
        arrivals.append(timer.peek())
    total = timer.stop()

    first = arrivals[0]
    RESULTS["time_to_first_result"] = {
        "n_jobs": N_JOBS,
        "n_workers": N_WORKERS,
        "first_result_seconds": first,
        "median_result_seconds": sorted(arrivals)[len(arrivals) // 2],
        "total_seconds": total,
        "first_result_fraction_of_total": first / max(total, 1e-9),
    }
    print_table(
        "repro.serve: streaming — when does each result become available?",
        ["milestone", "seconds", "% of batch wall clock"],
        [
            ["first result", f"{first:.2f}s", f"{100 * first / total:.0f}%"],
            [
                "median result",
                f"{sorted(arrivals)[len(arrivals) // 2]:.2f}s",
                f"{100 * sorted(arrivals)[len(arrivals) // 2] / total:.0f}%",
            ],
            ["last result (= batch)", f"{total:.2f}s", "100%"],
        ],
    )
    # Streaming must surface the first result well before the batch finishes.
    assert len(arrivals) == N_JOBS
    assert first < 0.75 * total


def test_preemption_kills_hanging_job_and_streams_survivors(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    deadline = 6.0
    register_solver("bench-hang", _HangSolver, _HangConfig, overwrite=True)
    try:
        hanging = LearningJob(
            solver="bench-hang", data=np.zeros((4, 3)), config={"duration": 300.0}
        )
        normal = [
            LearningJob(
                dataset="er2",
                seed=seed,
                dataset_options={"n_nodes": 30},
                config=dict(JOB_CONFIG),
            )
            for seed in range(6)
        ]
        runner = StreamingRunner(n_workers=2, timeout=deadline)
        timer = Timer().start()
        arrivals: dict[str, float] = {}
        statuses: dict[str, str] = {}
        for result in runner.stream([hanging] + normal):
            arrivals[result.job_id] = timer.peek()
            statuses[result.job_id] = result.status
        total = timer.stop()
    finally:
        unregister_solver("bench-hang")

    survivor_ids = [job_id for job_id in statuses if job_id != "job-000"]
    last_survivor = max(arrivals[job_id] for job_id in survivor_ids)
    RESULTS["preemption"] = {
        "deadline_seconds": deadline,
        "n_jobs": len(statuses),
        "n_ok": sum(1 for status in statuses.values() if status == "ok"),
        "n_preempted": sum(1 for s in statuses.values() if s == "preempted"),
        "hanging_job_sleep_seconds": 300.0,
        "last_survivor_seconds": last_survivor,
        "preempted_result_seconds": arrivals["job-000"],
        "total_seconds": total,
        "n_killed": runner.telemetry.n_killed,
        "n_requeued": runner.telemetry.n_requeued,
    }
    print_table(
        "repro.serve: hard preemption — 1 hanging + 6 normal jobs, 6s deadline",
        ["event", "seconds"],
        [
            ["last normal result streamed", f"{last_survivor:.2f}s"],
            ["hanging worker killed / reported", f"{arrivals['job-000']:.2f}s"],
            ["whole batch done", f"{total:.2f}s"],
            ["(cooperative wait would have been)", ">= 300s"],
        ],
    )
    # All normal jobs stream out before the hanging job's deadline expires...
    assert all(statuses[job_id] == "ok" for job_id in survivor_ids)
    assert last_survivor < deadline
    # ...the hanging worker is killed instead of sleeping out its 300s...
    assert statuses["job-000"] == "preempted"
    assert runner.telemetry.n_killed == 1
    assert total < 3 * deadline
    # ...and the killed worker leaves no orphan process behind.
    for pid in runner.telemetry.killed_pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)


def test_traced_wall_clock_breakdown(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    repo_root = Path(__file__).resolve().parents[1]
    trace_path = repo_root / "trace.ndjson"
    metrics_path = repo_root / "metrics.json"
    tracer = Tracer(sink=NDJSONFileSink(trace_path))

    # A full streaming run on real workers (so worker_spawn spans exist) ...
    runner = StreamingRunner(n_workers=N_WORKERS, timeout=60.0, tracer=tracer)
    statuses = [result.status for result in runner.stream(_manifest())]
    assert statuses == ["ok"] * N_JOBS

    # ... plus a small sharded solve through the same tracer, so a single
    # trace covers every layer: serve, shard, and the solver loop.
    rng = np.random.default_rng(0)
    data = rng.standard_normal((120, 24))
    planner = ShardPlanner(max_block_size=8)
    executor = ShardExecutor(config=dict(JOB_CONFIG), tracer=tracer)
    plan = planner.plan(data, tracer=tracer)
    shard_result = executor.run(data, plan, seed=0)
    assert shard_result.n_blocks_ok == plan.n_blocks

    tracer.close()
    metrics_path.write_text(
        json.dumps(tracer.metrics.as_dict(), indent=2, sort_keys=True) + "\n"
    )
    # The breakdown section is produced by the analytics library — the bench
    # only adds run-specific keys on top (no duplicated span-summing logic).
    model = TraceModel.from_file(trace_path)
    summary = validate_trace(model.spans)
    section = wall_clock_section(model)

    # Every job decomposes cleanly: no span may point at a missing parent.
    assert section["n_orphans"] == 0, summary["orphans"]
    # At least one span per layer: serve, shard, solver.
    for layer, name in [
        ("serve", "job"),
        ("serve", "queue_wait"),
        ("serve", "worker_spawn"),
        ("shard", "shard_plan"),
        ("shard", "stitch"),
        ("solver", "solve"),
        ("solver", "outer_iter"),
    ]:
        assert name in summary["names"], f"no {name!r} span ({layer} layer)"
    if sampling_supported():
        # The resource sampler ran alongside the stream: per-worker peak RSS
        # must have landed in the trace next to the spans.
        assert section["n_sampled_processes"] > 0
        assert section["max_worker_peak_rss_bytes"] > 0

    RESULTS["wall_clock_breakdown"] = {
        "n_jobs": N_JOBS + plan.n_blocks,
        **section,
        "trace_file": trace_path.name,
        "metrics_file": metrics_path.name,
    }
    print_table(
        "repro.obs: span-derived wall clock — where do traced jobs spend time?",
        ["span", "total seconds"],
        [
            [name, f"{section[f'{name}_seconds']:.2f}s"]
            for name in (
                "worker_spawn",
                "data_materialize",
                "solve",
                "queue_wait",
                "cache_store",
                "stitch",
            )
        ],
    )
    print_table(
        "repro.obs: sampled peak RSS (per-worker, from /proc)",
        ["process", "peak RSS"],
        [
            ["parent", f"{section['parent_peak_rss_bytes'] / 1e6:.1f} MB"],
            [
                "max worker",
                f"{section['max_worker_peak_rss_bytes'] / 1e6:.1f} MB",
            ],
            ["sampled processes", section["n_sampled_processes"]],
        ],
    )


def test_warm_start_cuts_relearn_iterations(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    incident = Incident("airline", "AC", "step3_reserve", 0.7, 3600, 10800)
    outcomes = {}
    for warm in (True, False):
        simulator = BookingSimulator(incidents=[incident], seed=5)
        pipeline = MonitoringPipeline(
            simulator, window_seconds=1800.0, warm_start=warm
        )
        pipeline.run(5, seed=11)
        outcomes[warm] = {
            "solver": pipeline.solver_summary(),
            "detection": pipeline.detection_summary(),
        }

    warm_solver = outcomes[True]["solver"]
    cold_solver = outcomes[False]["solver"]
    warm_detect = outcomes[True]["detection"]
    cold_detect = outcomes[False]["detection"]
    RESULTS["warm_start"] = {
        "warm_total_inner_iterations": warm_solver["total_inner_iterations"],
        "cold_total_inner_iterations": cold_solver["total_inner_iterations"],
        "warm_seconds": warm_solver["total_seconds"],
        "cold_seconds": cold_solver["total_seconds"],
        "warm_incidents_detected": warm_detect["incident_windows_detected"],
        "cold_incidents_detected": cold_detect["incident_windows_detected"],
        "warm_false_alarm_rate": warm_detect["false_alarm_rate"],
        "cold_false_alarm_rate": cold_detect["false_alarm_rate"],
    }
    print_table(
        "repro.serve: warm vs cold windowed re-learning (5 monitoring windows)",
        ["mode", "inner iters", "seconds", "incidents found", "false alarms"],
        [
            [
                "warm",
                int(warm_solver["total_inner_iterations"]),
                f"{warm_solver['total_seconds']:.2f}",
                int(warm_detect["incident_windows_detected"]),
                f"{warm_detect['false_alarm_rate']:.2f}",
            ],
            [
                "cold",
                int(cold_solver["total_inner_iterations"]),
                f"{cold_solver['total_seconds']:.2f}",
                int(cold_detect["incident_windows_detected"]),
                f"{cold_detect['false_alarm_rate']:.2f}",
            ],
        ],
    )
    # Warm starts must spend fewer solver iterations...
    assert (
        warm_solver["total_inner_iterations"] < cold_solver["total_inner_iterations"]
    )
    # ...while finding the same incidents with no extra false alarms.
    assert (
        warm_detect["incident_windows_detected"]
        >= cold_detect["incident_windows_detected"]
    )
    assert warm_detect["false_alarm_rate"] <= cold_detect["false_alarm_rate"]
