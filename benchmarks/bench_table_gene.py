"""E5 — Table I: gene-expression benchmarks (Sachs + scaled E. coli / Yeast).

The paper's Table I compares NOTEARS and LEAST on Sachs (11 genes), E. coli
(1,565 genes) and Yeast (4,441 genes), reporting predicted/true-positive edge
counts, FDR, TPR, FPR, SHD, F1 and AUC-ROC.  Sachs is reproduced at full size;
the two GeneNetWeaver datasets are replaced by synthetic gene-regulatory
networks (see DESIGN.md) scaled down to several hundred genes so the NOTEARS
baseline also finishes, preserving the comparison's shape: LEAST's accuracy is
comparable to (or slightly better than) NOTEARS while running faster.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import print_table, run_least, run_notears
from repro.datasets.grn import make_gene_regulatory_network
from repro.datasets.sachs import load_sachs


@pytest.fixture(scope="module")
def gene_problems():
    sachs = load_sachs(n_samples=1000, seed=41)
    ecoli_like = make_gene_regulatory_network(
        n_genes=150, n_edges=350, n_samples=600, seed=42, name="ecoli-scaled-down"
    )
    return [
        ("sachs", sachs.truth, sachs.data),
        ("ecoli-scaled-down", ecoli_like.truth, ecoli_like.data),
    ]


@pytest.fixture(scope="module")
def gene_results(gene_problems):
    rows = []
    for name, truth, data in gene_problems:
        least = run_least(truth, data, seed=43)
        notears = run_notears(truth, data, seed=43)
        rows.append((name, least, notears))
    return rows


def test_table1_gene_metrics(benchmark, gene_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print the Table I analogue and check both algorithms beat chance."""
    table = []
    for name, least, notears in gene_results:
        for run in (notears, least):
            table.append(
                [
                    name,
                    run.algorithm,
                    run.n_predicted_edges,
                    run.true_positives,
                    f"{run.fdr:.3f}",
                    f"{run.tpr:.3f}",
                    f"{run.fpr:.2e}",
                    run.shd,
                    f"{run.f1:.3f}",
                    f"{run.auc:.3f}",
                    f"{run.seconds:.1f}s",
                ]
            )
    print_table(
        "Table I: gene expression benchmarks",
        ["dataset", "algo", "#pred", "#TP", "FDR", "TPR", "FPR", "SHD", "F1", "AUC", "time"],
        table,
    )
    for name, least, notears in gene_results:
        assert least.auc > 0.55
        assert notears.auc > 0.55
        # LEAST must stay in the same accuracy regime as NOTEARS.
        assert least.auc >= notears.auc - 0.25


def test_benchmark_least_on_sachs(benchmark):
    sachs = load_sachs(n_samples=1000, seed=44)
    benchmark.pedantic(
        lambda: run_least(sachs.truth, sachs.data, seed=45), rounds=1, iterations=1
    )
