"""E10 — Fig. 8: extracted subgraph around one movie in the learned item graph.

Fig. 8 of the paper shows the neighbourhood of "Braveheart" in the learned
MovieLens DAG (green/red edges for positive/negative weights).  This harness
learns the item graph on the synthetic stand-in, extracts the neighbourhood of
the most connected franchise movie, and prints it as an edge list with signs.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import print_table
from repro.core.least import LEAST, LEASTConfig
from repro.core.thresholding import threshold_weights
from repro.datasets.movielens import make_movielens
from repro.recommend.explainable import ExplainableRecommender, extract_subgraph


@pytest.fixture(scope="module")
def learned_item_graph():
    dataset = make_movielens(n_movies=50, n_users=2000, n_series=8, seed=91)
    config = LEASTConfig(
        max_outer_iterations=8, max_inner_iterations=400, l1_penalty=0.02, tolerance=1e-3
    )
    result = LEAST(config).fit(dataset.centered, seed=92)
    pruned = threshold_weights(result.weights, 0.05)
    return dataset, pruned


def test_fig8_subgraph_extraction(benchmark, learned_item_graph):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print the neighbourhood of the best-connected movie (Fig. 8 analogue)."""
    dataset, pruned = learned_item_graph
    degrees = (pruned != 0).sum(axis=0) + (pruned != 0).sum(axis=1)
    center = int(np.argmax(degrees))
    submatrix, nodes = extract_subgraph(pruned, center=center, radius=1)

    rows = []
    for i, source in enumerate(nodes):
        for j, target in enumerate(nodes):
            if submatrix[i, j] != 0:
                sign = "positive" if submatrix[i, j] > 0 else "negative"
                rows.append(
                    [
                        dataset.movie_titles[source],
                        dataset.movie_titles[target],
                        f"{submatrix[i, j]:+.3f}",
                        sign,
                    ]
                )
    print_table(
        f"Fig. 8: subgraph around '{dataset.movie_titles[center]}'",
        ["from", "to", "weight", "sign"],
        rows,
    )
    assert len(nodes) >= 2
    assert len(rows) >= 1


def test_explanations_follow_learned_edges(benchmark, learned_item_graph):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """A recommendation's explanation path must consist of learned edges."""
    dataset, pruned = learned_item_graph
    recommender = ExplainableRecommender(pruned, labels=list(dataset.movie_titles))
    source = int(np.argmax((pruned != 0).sum(axis=1)))
    recommendations = recommender.recommend({source: 1.0}, n=5)
    for recommendation in recommendations:
        for a, b in zip(recommendation.path[:-1], recommendation.path[1:]):
            assert pruned[a, b] != 0


def test_benchmark_subgraph_extraction(benchmark, learned_item_graph):
    dataset, pruned = learned_item_graph
    benchmark.pedantic(
        lambda: extract_subgraph(pruned, center=0, radius=2), rounds=3, iterations=1
    )
