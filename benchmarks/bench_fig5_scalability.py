"""E4 — Fig. 5: scalability of LEAST-SP (constraint value vs execution time).

The paper runs LEAST-SP on Movielens (27k nodes), App-Security (92k nodes)
and App-Recom (159k nodes) and shows δ(W) and h(W) decaying to a very small
level over hours.  Those datasets are proprietary / too large for a laptop
harness, so this module runs LEAST-SP on sparse synthetic LSEM problems with
thousands of nodes — far beyond what the dense solvers handle — and checks
that (a) the run completes with a sparse memory footprint and (b) the
constraint trace decays monotonically toward the tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.helpers import print_table
from repro.core.least_sparse import SparseLEAST, SparseLEASTConfig
from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem

SIZES = [500, 2000]


def _sparse_problem(n_nodes: int, seed: int):
    truth = random_dag("ER-2", n_nodes, seed=seed)
    data = simulate_linear_sem(truth, min(4 * n_nodes, 4000), seed=seed + 1)
    return truth, data


@pytest.fixture(scope="module")
def scalability_traces():
    traces = []
    for n_nodes in SIZES:
        truth, data = _sparse_problem(n_nodes, seed=31)
        config = SparseLEASTConfig(
            init_density=min(5e-3, 2000.0 / (n_nodes * n_nodes)),
            batch_size=1000,
            max_outer_iterations=6,
            max_inner_iterations=150,
            tolerance=1e-4,
            threshold=1e-3,
        )
        result = SparseLEAST(config).fit(data, seed=32)
        traces.append((n_nodes, result))
    return traces


def test_fig5_constraint_decay(benchmark, scalability_traces):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print δ(W) vs wall-clock per dataset size and check the decay."""
    table = []
    for n_nodes, result in scalability_traces:
        deltas = result.log.column("delta")
        times = result.log.column("wall_clock")
        table.append(
            [
                n_nodes,
                result.weights.nnz,
                f"{deltas[0]:.2e}",
                f"{deltas[-1]:.2e}",
                f"{times[-1]:.1f}s",
            ]
        )
        # The constraint ends at least an order of magnitude below where it started
        # (or is already ~0), mirroring the decay curves of Fig. 5.
        assert deltas[-1] <= deltas[0] * 0.5 or deltas[-1] < 1e-6
    print_table(
        "Fig. 5: LEAST-SP constraint decay on large sparse problems",
        ["d", "final nnz", "delta (first)", "delta (last)", "wall clock"],
        table,
    )


def test_memory_footprint_stays_sparse(benchmark, scalability_traces):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """LEAST-SP never materializes a dense d x d matrix."""
    for n_nodes, result in scalability_traces:
        assert result.weights.nnz < 0.05 * n_nodes * n_nodes


def test_benchmark_sparse_least_d500(benchmark):
    truth, data = _sparse_problem(500, seed=33)
    config = SparseLEASTConfig(
        init_density=5e-3,
        batch_size=1000,
        max_outer_iterations=4,
        max_inner_iterations=100,
        tolerance=1e-4,
    )
    benchmark.pedantic(
        lambda: SparseLEAST(config).fit(data, seed=34), rounds=1, iterations=1
    )
