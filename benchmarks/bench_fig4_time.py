"""E3 — Fig. 4 row 4: wall-clock time of LEAST vs NOTEARS as d grows.

The paper fixes ε = 1e-4 and reports execution time for d ∈ {100, 200, 500},
observing a 5–15× speed-up that grows with d because LEAST's constraint costs
O(k·s) versus O(d³) for NOTEARS.  This harness uses d ∈ {50, 100} (NOTEARS at
d = 500 does not finish in a laptop-friendly benchmark) and checks the shape:
LEAST's constraint evaluation is orders of magnitude cheaper, and the ratio
grows with d.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from benchmarks.helpers import print_table
from benchmarks.helpers import make_problem, run_least, run_notears
from repro.core.acyclicity import spectral_bound_with_gradient
from repro.core.notears_constraint import notears_constraint_with_gradient
from repro.utils.timer import Timer

SIZES = [50, 100]


@pytest.fixture(scope="module")
def timing_rows():
    rows = []
    for n_nodes in SIZES:
        truth, data = make_problem("ER-2", n_nodes, "gaussian", seed=21)
        least = run_least(truth, data, seed=22)
        notears = run_notears(truth, data, seed=22)
        rows.append((n_nodes, least.seconds, notears.seconds))
    return rows


def test_fig4_time_table(benchmark, timing_rows):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """Print end-to-end solver times and the speed-up ratio."""
    table = [
        [n_nodes, f"{least_s:.1f}s", f"{notears_s:.1f}s", f"{notears_s / max(least_s, 1e-9):.1f}x"]
        for n_nodes, least_s, notears_s in timing_rows
    ]
    print_table(
        "Fig. 4 (row 4): execution time",
        ["d", "LEAST", "NOTEARS", "NOTEARS / LEAST"],
        table,
    )
    # Both solvers must at least finish; the constraint-level speed-up is the
    # robust claim and is asserted separately below.
    assert all(least_s > 0 and notears_s > 0 for _, least_s, notears_s in timing_rows)


def test_constraint_speedup_grows_with_d(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test active under --benchmark-only
    """The O(ks) vs O(d^3) gap: per-evaluation constraint cost ratio grows with d."""
    ratios = []
    for n_nodes in (100, 200, 400):
        truth, _ = make_problem("ER-2", n_nodes, "gaussian", seed=23)
        weights = truth + np.random.default_rng(0).normal(0, 0.01, truth.shape) * (truth != 0)
        sparse_weights = sp.csr_matrix(weights)

        least_timer = Timer()
        for _ in range(5):
            with least_timer:
                spectral_bound_with_gradient(sparse_weights)
        least_time = least_timer.mean_lap

        notears_timer = Timer()
        for _ in range(5):
            with notears_timer:
                notears_constraint_with_gradient(weights)
        notears_time = notears_timer.mean_lap
        ratios.append(notears_time / max(least_time, 1e-12))

    print_table(
        "Constraint evaluation cost ratio (h / delta)",
        ["d", "ratio"],
        [[d, f"{ratio:.1f}x"] for d, ratio in zip((100, 200, 400), ratios)],
    )
    assert ratios[-1] > 1.0
    assert ratios[-1] > ratios[0] * 0.5  # the gap does not shrink as d grows


def test_benchmark_least_time_d100(benchmark):
    truth, data = make_problem("ER-2", 100, "gaussian", seed=24)
    benchmark.pedantic(lambda: run_least(truth, data, seed=25), rounds=1, iterations=1)


def test_benchmark_notears_time_d50(benchmark):
    truth, data = make_problem("ER-2", 50, "gaussian", seed=26)
    benchmark.pedantic(lambda: run_notears(truth, data, seed=27), rounds=1, iterations=1)
