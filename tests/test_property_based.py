"""Property-based tests (hypothesis) for core invariants.

These cover the mathematical invariants the library relies on:

* the spectral bound is always an upper bound on the spectral radius and is
  invariant to how the matrix is stored;
* DAG generators always produce acyclic graphs;
* structural metrics stay within their theoretical ranges;
* thresholding-to-DAG always yields an acyclic graph;
* the two-proportion z-test is a valid p-value.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.acyclicity import spectral_bound, spectral_bound_with_gradient, spectral_radius
from repro.core.notears_constraint import notears_constraint
from repro.core.thresholding import threshold_to_dag
from repro.graph.dag import is_dag, topological_sort
from repro.graph.generation import random_dag
from repro.metrics.structural import evaluate_structure, structural_hamming_distance
from repro.monitoring.anomaly import two_proportion_z_test
from repro.sem.linear_sem import simulate_linear_sem


def square_matrices(max_size: int = 8, max_value: float = 2.0):
    """Strategy producing small square float matrices with zero diagonal.

    Entries are drawn on a 0.001 grid so that the iterated row/column sums of
    the spectral bound stay well away from the subnormal range (the bound is
    non-differentiable there and float64 quotients overflow); the solvers
    threshold such values away in practice.
    """
    return st.integers(min_value=2, max_value=max_size).flatmap(
        lambda d: arrays(
            dtype=float,
            shape=(d, d),
            elements=st.floats(
                min_value=-max_value, max_value=max_value, allow_nan=False, allow_infinity=False
            ).map(lambda value: round(value, 3)),
        ).map(_zero_diagonal)
    )


def _zero_diagonal(matrix: np.ndarray) -> np.ndarray:
    np.fill_diagonal(matrix, 0.0)
    return matrix


class TestSpectralBoundProperties:
    @given(weights=square_matrices())
    @settings(max_examples=60, deadline=None)
    def test_bound_dominates_spectral_radius(self, weights):
        bound = spectral_bound(weights, k=3)
        radius = spectral_radius(weights * weights)
        assert bound >= radius - 1e-8

    @given(weights=square_matrices())
    @settings(max_examples=40, deadline=None)
    def test_bound_is_non_negative(self, weights):
        assert spectral_bound(weights) >= 0.0

    @given(weights=square_matrices(max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_sparse_and_dense_paths_agree(self, weights):
        dense_value, dense_gradient = spectral_bound_with_gradient(weights)
        sparse_value, sparse_gradient = spectral_bound_with_gradient(sp.csr_matrix(weights))
        assert abs(dense_value - sparse_value) <= 1e-8 * max(1.0, abs(dense_value))
        np.testing.assert_allclose(sparse_gradient.toarray(), dense_gradient, atol=1e-8)

    @given(weights=square_matrices(), scale=st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_bound_scales_quadratically(self, weights, scale):
        """δ(cW) = c² δ(W): every term of the bound is built from W∘W."""
        base = spectral_bound(weights)
        scaled = spectral_bound(scale * weights)
        assert scaled == np.float64(scaled)
        np.testing.assert_allclose(scaled, scale**2 * base, rtol=1e-7, atol=1e-9)


class TestGraphGenerationProperties:
    @given(
        n_nodes=st.integers(min_value=2, max_value=40),
        degree=st.floats(min_value=0.5, max_value=4.0),
        seed=st.integers(min_value=0, max_value=10**6),
        model=st.sampled_from(["ER", "SF"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_graphs_are_dags(self, n_nodes, degree, seed, model):
        graph = random_dag(f"{model}-{degree}", n_nodes, seed=seed)
        assert is_dag(graph)
        assert notears_constraint(graph) <= 1e-6

    @given(
        n_nodes=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=20, deadline=None)
    def test_simulated_data_is_finite(self, n_nodes, seed):
        graph = random_dag("ER-2", n_nodes, seed=seed)
        data = simulate_linear_sem(graph, 50, seed=seed)
        assert np.all(np.isfinite(data))
        assert data.shape == (50, n_nodes)

    @given(
        n_nodes=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_topological_sort_is_a_permutation(self, n_nodes, seed):
        graph = random_dag("ER-2", n_nodes, seed=seed)
        order = topological_sort(graph)
        assert sorted(order) == list(range(n_nodes))


class TestMetricProperties:
    @given(predicted=square_matrices(max_size=7), truth=square_matrices(max_size=7))
    @settings(max_examples=50, deadline=None)
    def test_metric_ranges(self, predicted, truth):
        if predicted.shape != truth.shape:
            return
        metrics = evaluate_structure(predicted, truth)
        assert 0.0 <= metrics.f1 <= 1.0
        assert 0.0 <= metrics.fdr <= 1.0
        assert 0.0 <= metrics.tpr <= 1.0
        assert 0.0 <= metrics.fpr <= 1.0
        assert metrics.shd >= 0

    @given(matrix=square_matrices(max_size=7))
    @settings(max_examples=40, deadline=None)
    def test_shd_to_self_is_zero(self, matrix):
        assert structural_hamming_distance(matrix, matrix) == 0

    @given(matrix=square_matrices(max_size=7))
    @settings(max_examples=40, deadline=None)
    def test_f1_of_self_is_one_or_empty(self, matrix):
        metrics = evaluate_structure(matrix, matrix)
        if metrics.n_true_edges:
            assert metrics.f1 == 1.0
        else:
            assert metrics.f1 == 0.0


class TestThresholdingProperties:
    @given(matrix=square_matrices(max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_threshold_to_dag_always_acyclic(self, matrix):
        pruned, threshold = threshold_to_dag(matrix)
        assert is_dag(pruned)
        assert threshold >= 0.0


class TestStatisticalTestProperties:
    @given(
        successes_a=st.integers(min_value=0, max_value=50),
        extra_a=st.integers(min_value=0, max_value=50),
        successes_b=st.integers(min_value=0, max_value=50),
        extra_b=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_p_value_in_unit_interval(self, successes_a, extra_a, successes_b, extra_b):
        p_value = two_proportion_z_test(
            successes_a, successes_a + extra_a, successes_b, successes_b + extra_b
        )
        assert 0.0 <= p_value <= 1.0
