"""Tests for repro.sem (noise models, LSEM simulation, standardization)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NotADAGError, ValidationError
from repro.sem.linear_sem import LinearSEM, simulate_linear_sem
from repro.sem.noise import NOISE_TYPES, make_noise_model
from repro.sem.standardize import center_columns, center_rows, standardize_columns


class TestNoiseModels:
    @pytest.mark.parametrize("name", NOISE_TYPES)
    def test_samples_are_roughly_zero_mean(self, name):
        model = make_noise_model(name, scale=1.0)
        samples = model.sample(20000, seed=0)
        assert abs(samples.mean()) < 0.05

    @pytest.mark.parametrize("name", NOISE_TYPES)
    def test_variance_matches_theory(self, name):
        model = make_noise_model(name, scale=1.3)
        samples = model.sample(50000, seed=1)
        assert samples.var() == pytest.approx(model.variance(), rel=0.1)

    @pytest.mark.parametrize("alias,canonical", [("GS", "gaussian"), ("EX", "exponential"), ("GB", "gumbel")])
    def test_paper_aliases(self, alias, canonical):
        assert make_noise_model(alias).name == canonical

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            make_noise_model("cauchy")

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValidationError):
            make_noise_model("gaussian", scale=0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            make_noise_model("gaussian").sample(-1)

    def test_deterministic_given_seed(self):
        model = make_noise_model("gumbel")
        np.testing.assert_allclose(model.sample(10, seed=7), model.sample(10, seed=7))


class TestLinearSEM:
    def test_requires_dag(self, cyclic_matrix):
        with pytest.raises(NotADAGError):
            LinearSEM(weights=cyclic_matrix)

    def test_sample_shape(self, small_dag):
        sem = LinearSEM(weights=small_dag)
        assert sem.sample(50, seed=0).shape == (50, 4)

    def test_root_nodes_are_pure_noise(self, small_dag):
        sem = LinearSEM(weights=small_dag, noise=make_noise_model("gaussian", 1.0))
        data = sem.sample(20000, seed=0)
        assert data[:, 0].var() == pytest.approx(1.0, rel=0.1)

    def test_children_follow_structural_equation(self, small_dag):
        data = simulate_linear_sem(small_dag, 50000, seed=1)
        # X1 = 1.5 X0 + noise: regression coefficient should recover 1.5.
        coefficient = np.cov(data[:, 0], data[:, 1])[0, 1] / data[:, 0].var()
        assert coefficient == pytest.approx(1.5, rel=0.05)

    def test_empirical_covariance_matches_implied(self, small_dag):
        sem = LinearSEM(weights=small_dag)
        data = sem.sample(100000, seed=2)
        np.testing.assert_allclose(np.cov(data.T), sem.implied_covariance(), atol=0.15)

    def test_heteroscedastic_scales(self, small_dag):
        sem = LinearSEM(weights=small_dag, node_noise_scales=np.array([2.0, 1.0, 1.0, 1.0]))
        data = sem.sample(20000, seed=3)
        assert data[:, 0].var() == pytest.approx(4.0, rel=0.1)

    def test_invalid_noise_scales_rejected(self, small_dag):
        with pytest.raises(ValidationError):
            LinearSEM(weights=small_dag, node_noise_scales=np.array([1.0, -1.0, 1.0, 1.0]))

    def test_negative_sample_count_rejected(self, small_dag):
        with pytest.raises(ValidationError):
            LinearSEM(weights=small_dag).sample(-5)

    def test_simulate_with_all_noise_types(self, small_dag):
        for noise in ("gaussian", "exponential", "gumbel"):
            data = simulate_linear_sem(small_dag, 100, noise_type=noise, seed=0)
            assert data.shape == (100, 4)
            assert np.all(np.isfinite(data))


class TestStandardize:
    def test_center_columns(self):
        data = np.array([[1.0, 2.0], [3.0, 6.0]])
        centered = center_columns(data)
        np.testing.assert_allclose(centered.mean(axis=0), [0.0, 0.0])

    def test_center_rows(self):
        data = np.array([[1.0, 3.0], [2.0, 6.0]])
        centered = center_rows(data)
        np.testing.assert_allclose(centered.mean(axis=1), [0.0, 0.0])

    def test_standardize_columns(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(1000, 3))
        standardized = standardize_columns(data)
        np.testing.assert_allclose(standardized.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(standardized.std(axis=0), 1.0, atol=1e-12)

    def test_standardize_constant_column_is_safe(self):
        data = np.array([[1.0, 2.0], [1.0, 4.0]])
        standardized = standardize_columns(data)
        assert np.all(np.isfinite(standardized))
        np.testing.assert_allclose(standardized[:, 0], 0.0)

    def test_original_data_not_mutated(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        copy = data.copy()
        center_columns(data)
        standardize_columns(data)
        np.testing.assert_array_equal(data, copy)
