"""Tests for the repro.serve CLI: manifest parsing, reports, exit codes."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ValidationError
from repro.serve.cli import load_manifest, main

FAST_JOB = {
    "dataset": "er2",
    "solver": "least",
    "seed": 0,
    "dataset_options": {"n_nodes": 10},
    "config": {"max_outer_iterations": 2, "max_inner_iterations": 30},
}


def _write_manifest(tmp_path, jobs, wrap=True):
    path = tmp_path / "manifest.json"
    payload = {"jobs": jobs} if wrap else jobs
    path.write_text(json.dumps(payload))
    return str(path)


class TestLoadManifest:
    def test_object_and_list_forms(self, tmp_path):
        for wrap in (True, False):
            path = _write_manifest(tmp_path, [FAST_JOB], wrap=wrap)
            jobs = load_manifest(path)
            assert len(jobs) == 1 and jobs[0].dataset == "er2"

    def test_missing_file(self):
        with pytest.raises(ValidationError):
            load_manifest("/nonexistent/manifest.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError):
            load_manifest(str(path))

    def test_empty_jobs(self, tmp_path):
        with pytest.raises(ValidationError):
            load_manifest(_write_manifest(tmp_path, []))

    def test_non_list_jobs(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"jobs": "all of them"}))
        with pytest.raises(ValidationError):
            load_manifest(str(path))


class TestMain:
    def test_successful_run_writes_report(self, tmp_path, capsys):
        manifest = _write_manifest(tmp_path, [FAST_JOB, {**FAST_JOB, "seed": 1}])
        output = tmp_path / "report.json"
        code = main([manifest, "--output", str(output)])
        assert code == 0
        report = json.loads(output.read_text())
        assert report["summary"]["n_jobs"] == 2
        assert report["summary"]["n_ok"] == 2
        assert len(report["jobs"]) == 2
        assert all(job["status"] == "ok" for job in report["jobs"])
        assert "2 jobs: 2 ok" in capsys.readouterr().err

    def test_report_to_stdout(self, tmp_path, capsys):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        code = main([manifest, "--quiet"])
        assert code == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["summary"]["n_ok"] == 1
        assert captured.err == ""

    def test_failing_job_sets_exit_code(self, tmp_path):
        bad = {**FAST_JOB, "config": {"k": -3}}
        manifest = _write_manifest(tmp_path, [FAST_JOB, bad])
        code = main([manifest, "--quiet", "--output", str(tmp_path / "r.json")])
        assert code == 1
        report = json.loads((tmp_path / "r.json").read_text())
        assert report["summary"]["n_failed"] == 1

    def test_bad_manifest_exit_code(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_disk_cache_across_invocations(self, tmp_path):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        cache_dir = tmp_path / "cache"
        out1, out2 = tmp_path / "r1.json", tmp_path / "r2.json"
        assert main([manifest, "--cache-dir", str(cache_dir), "--quiet", "--output", str(out1)]) == 0
        assert main([manifest, "--cache-dir", str(cache_dir), "--quiet", "--output", str(out2)]) == 0
        first = json.loads(out1.read_text())
        second = json.loads(out2.read_text())
        assert first["summary"]["n_cache_hits"] == 0
        assert second["summary"]["n_cache_hits"] == 1
        assert second["jobs"][0]["cache_hit"] is True

    def test_pool_flags_run_jobs_on_a_recycling_pool(self, tmp_path):
        manifest = _write_manifest(tmp_path, [FAST_JOB, {**FAST_JOB, "seed": 1}])
        output = tmp_path / "report.json"
        code = main(
            [
                manifest,
                "--workers",
                "2",
                "--timeout",
                "60",
                "--soft-timeout",
                "50",
                "--max-jobs-per-worker",
                "1",
                "--quiet",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        report = json.loads(output.read_text())
        assert report["summary"]["n_ok"] == 2

    def test_soft_timeout_above_hard_timeout_exits_2(self, tmp_path, capsys):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        code = main([manifest, "--timeout", "10", "--soft-timeout", "20"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point_exists(self):
        import repro.serve.__main__  # noqa: F401 - import is the test


class TestShardSubcommand:
    def _write_data(self, tmp_path, d=10, n=200, seed=2):
        import numpy as np

        from repro.graph.generation import random_dag
        from repro.sem.linear_sem import simulate_linear_sem

        truth = random_dag("ER-2", d, seed=0)
        data = simulate_linear_sem(truth, n, seed=seed)
        path = tmp_path / "data.npy"
        np.save(path, data)
        return str(path)

    def test_shard_report_and_weights(self, tmp_path, capsys):
        import numpy as np

        data_path = self._write_data(tmp_path)
        out = tmp_path / "report.json"
        weights_path = tmp_path / "weights.npy"
        code = main(
            [
                "shard",
                data_path,
                "--max-block-size",
                "5",
                "--edge-threshold",
                "0.3",
                "--config",
                '{"max_outer_iterations": 2, "max_inner_iterations": 30}',
                "--output",
                str(out),
                "--save-weights",
                str(weights_path),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert set(report) == {
            "plan",
            "stitch",
            "blocks",
            "gaps",
            "total_seconds",
            "preemption",
            "waves",
            "resolve",
        }
        assert report["plan"]["n_nodes"] == 10
        assert report["gaps"]["n_missing_nodes"] == 0
        assert report["waves"]["n_waves"] == 0
        assert report["resolve"]["n_rounds"] == 0
        assert all(block["status"] == "ok" for block in report["blocks"])
        weights = np.load(weights_path)
        assert weights.shape == (10, 10)
        assert "blocks over 10 nodes" in capsys.readouterr().err

    def test_shard_csv_input_and_stdout_report(self, tmp_path, capsys):
        import numpy as np

        rng = np.random.default_rng(0)
        path = tmp_path / "data.csv"
        np.savetxt(path, rng.normal(size=(60, 4)), delimiter=",")
        code = main(
            [
                "shard",
                str(path),
                "--config",
                '{"max_outer_iterations": 2, "max_inner_iterations": 20}',
                "--quiet",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["plan"]["n_nodes"] == 4

    def test_shard_missing_data_exit_code(self, tmp_path, capsys):
        assert main(["shard", str(tmp_path / "nope.npy")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_shard_bad_config_exit_code(self, tmp_path, capsys):
        data_path = self._write_data(tmp_path, d=4, n=50)
        assert main(["shard", data_path, "--config", "[1, 2]"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_shard_unknown_solver_exit_code(self, tmp_path, capsys):
        data_path = self._write_data(tmp_path, d=4, n=50)
        assert main(["shard", data_path, "--solver", "leest"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_shard_sparse_solver_writes_npz_weights(self, tmp_path, capsys):
        import numpy as np
        import scipy.sparse as sp

        data_path = self._write_data(tmp_path, d=8, n=80)
        weights_path = tmp_path / "weights.npz"
        code = main(
            [
                "shard",
                data_path,
                "--solver",
                "least_sparse",
                "--max-block-size",
                "4",
                "--edge-threshold",
                "0.2",
                "--config",
                '{"max_outer_iterations": 2, "max_inner_iterations": 30}',
                "--quiet",
                "--save-weights",
                str(weights_path),
            ]
        )
        assert code == 0
        weights = sp.load_npz(weights_path)
        assert sp.issparse(weights)
        assert weights.shape == (8, 8)
        report = json.loads(capsys.readouterr().out)
        assert report["plan"]["n_nodes"] == 8

    def test_shard_unknown_solver_fails_before_reading_data(self, tmp_path, capsys):
        """--solver is validated against the live registry up front."""
        missing = tmp_path / "never-read.npy"  # does not exist
        assert main(["shard", str(missing), "--solver", "leest"]) == 2
        err = capsys.readouterr().err
        assert "unknown solver" in err and "least_sparse" in err

    def test_shard_sparse_save_weights_appends_npz_and_says_so(self, tmp_path, capsys):
        import scipy.sparse as sp

        data_path = self._write_data(tmp_path, d=6, n=60)
        asked = tmp_path / "weights.npy"  # wrong extension for a CSR result
        code = main(
            [
                "shard",
                data_path,
                "--solver",
                "least_sparse",
                "--max-block-size",
                "3",
                "--config",
                '{"max_outer_iterations": 2, "max_inner_iterations": 20}',
                "--quiet",
                "--output",
                str(tmp_path / "report.json"),
                "--save-weights",
                str(asked),
            ]
        )
        assert code == 0
        actual = tmp_path / "weights.npy.npz"
        assert actual.exists() and not asked.exists()
        assert str(actual) in capsys.readouterr().err


class TestObservabilityFlags:
    def test_trace_and_metrics_outputs(self, tmp_path, capsys):
        from repro.obs import read_trace, validate_trace

        manifest = _write_manifest(tmp_path, [FAST_JOB, {**FAST_JOB, "seed": 1}])
        trace_path = tmp_path / "trace.ndjson"
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                manifest,
                "--quiet",
                "--output",
                str(tmp_path / "report.json"),
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0

        spans = read_trace(trace_path)
        summary = validate_trace(spans)
        assert summary["n_orphans"] == 0
        for name in ("job", "queue_wait", "data_materialize", "solve", "outer_iter"):
            assert name in summary["names"], name

        metrics = json.loads(metrics_path.read_text())
        counters = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in metrics["counters"]
        }
        assert counters[("serve_jobs_total", (("status", "ok"),))] == 2.0
        histograms = {h["name"]: h for h in metrics["histograms"]}
        assert histograms["serve_job_seconds"]["count"] == 2

    def test_metrics_prometheus_format(self, tmp_path):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        metrics_path = tmp_path / "metrics.prom"
        code = main(
            [
                manifest,
                "--quiet",
                "--output",
                str(tmp_path / "report.json"),
                "--metrics-out",
                str(metrics_path),
                "--metrics-format",
                "prometheus",
            ]
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE serve_jobs_total counter" in text
        assert 'serve_jobs_total{status="ok"} 1' in text
        assert "serve_job_seconds_count 1" in text

    def test_metrics_only_run_uses_memory_sink(self, tmp_path):
        # --metrics-out alone must not require (or write) a trace file.
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        metrics_path = tmp_path / "metrics.json"
        code = main(
            [
                manifest,
                "--quiet",
                "--output",
                str(tmp_path / "report.json"),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        assert metrics_path.exists()
        assert not (tmp_path / "trace.ndjson").exists()

    def test_no_obs_flags_no_outputs(self, tmp_path):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        code = main([manifest, "--quiet", "--output", str(tmp_path / "report.json")])
        assert code == 0
        assert list(tmp_path.glob("*.ndjson")) == []

    def test_cache_summary_line_in_stderr(self, tmp_path, capsys):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        cache_dir = tmp_path / "cache"
        for _ in range(2):
            code = main(
                [
                    manifest,
                    "--cache-dir",
                    str(cache_dir),
                    "--output",
                    str(tmp_path / "report.json"),
                ]
            )
            assert code == 0
        err = capsys.readouterr().err
        # Each invocation opens its own DiskCache, so the stats are
        # per-invocation: a miss+store on the first run, a pure hit on the
        # second.
        assert "cache: 0 hits, 1 misses (hit rate 0.0%)" in err
        assert "cache: 1 hits, 0 misses (hit rate 100.0%), 0 evictions" in err

    def test_latency_summary_line_in_traced_run(self, tmp_path, capsys):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        code = main(
            [
                manifest,
                "--trace-out",
                str(tmp_path / "trace.ndjson"),
                "--output",
                str(tmp_path / "report.json"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        line = next(l for l in err.splitlines() if l.startswith("latency:"))
        assert "n=1" in line
        assert "p50=" in line and "p95=" in line and "p99=" in line

    def test_no_latency_line_without_tracer(self, tmp_path, capsys):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        code = main([manifest, "--output", str(tmp_path / "report.json")])
        assert code == 0
        assert "latency:" not in capsys.readouterr().err

    def test_cache_summary_line_in_stream_mode(self, tmp_path, capsys):
        manifest = _write_manifest(tmp_path, [FAST_JOB])
        cache_dir = tmp_path / "cache"
        code = main(
            [
                manifest,
                "--stream",
                "--cache-dir",
                str(cache_dir),
                "--output",
                str(tmp_path / "report.json"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "cache:" in err and "misses" in err

    def test_shard_trace_and_metrics(self, tmp_path, capsys):
        import numpy as np

        from repro.obs import read_trace, validate_trace

        rng = np.random.default_rng(2)
        data_path = tmp_path / "data.npy"
        np.save(data_path, rng.normal(size=(60, 8)))
        trace_path = tmp_path / "shard-trace.ndjson"
        metrics_path = tmp_path / "shard-metrics.json"
        code = main(
            [
                "shard",
                str(data_path),
                "--max-block-size",
                "4",
                "--config",
                json.dumps({"max_outer_iterations": 2, "max_inner_iterations": 30}),
                "--output",
                str(tmp_path / "report.json"),
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        summary = validate_trace(read_trace(trace_path))
        assert summary["n_orphans"] == 0
        for name in ("shard_plan", "shard_solve", "stitch", "job", "solve"):
            assert name in summary["names"], name
        metrics = json.loads(metrics_path.read_text())
        names = {c["name"] for c in metrics["counters"]}
        assert "shard_blocks_total" in names
