"""Tests for repro.utils.random, repro.utils.timer and repro.utils.logging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.logging import RunLog
from repro.utils.random import as_generator, spawn_generators
from repro.utils.timer import Timer, timed


class TestAsGenerator:
    def test_integer_seed_is_deterministic(self):
        assert as_generator(3).integers(1000) == as_generator(3).integers(1000)

    def test_existing_generator_is_returned_unchanged(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_none_gives_a_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_children_are_independent_and_deterministic(self):
        first = [g.integers(10**6) for g in spawn_generators(42, 3)]
        second = [g.integers(10**6) for g in spawn_generators(42, 3)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            sum(range(100))
        with timer:
            sum(range(100))
        assert timer.elapsed > 0
        assert len(timer.laps) == 2
        assert timer.mean_lap == pytest.approx(timer.elapsed / 2)

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.laps == []

    def test_timed_reports_to_sink(self):
        messages = []
        with timed("block", sink=messages.append):
            pass
        assert len(messages) == 1
        assert messages[0].startswith("block:")


class TestRunLog:
    def test_append_and_column(self):
        log = RunLog()
        log.append(loss=1.0, delta=0.5)
        log.append(loss=0.5, delta=0.25)
        assert np.allclose(log.column("loss"), [1.0, 0.5])
        assert len(log) == 2

    def test_missing_key_defaults_to_nan(self):
        log = RunLog()
        log.append(loss=1.0)
        log.append(loss=0.5, h=0.1)
        column = log.column("h")
        assert np.isnan(column[0]) and column[1] == 0.1

    def test_last(self):
        log = RunLog()
        log.append(a=1)
        log.append(b=2)
        assert log.last("a") == 1
        assert log.last("missing", default="x") == "x"

    def test_to_dict_preserves_key_order(self):
        log = RunLog()
        log.append(a=1, b=2)
        log.append(a=3)
        table = log.to_dict()
        assert list(table) == ["a", "b"]
        assert table["a"] == [1, 3]
        assert table["b"] == [2, None]

    def test_iteration_and_indexing(self):
        log = RunLog()
        log.extend([{"a": 1}, {"a": 2}])
        assert [record["a"] for record in log] == [1, 2]
        assert log[0]["a"] == 1


class TestTimerPeek:
    def test_peek_without_running_interval_equals_elapsed(self):
        timer = Timer()
        with timer:
            pass
        assert timer.peek() == timer.elapsed

    def test_peek_includes_open_interval_without_stopping(self):
        timer = Timer()
        timer.start()
        first = timer.peek()
        second = timer.peek()
        assert timer.running
        assert 0.0 <= first <= second
        assert timer.elapsed == 0.0  # no lap was closed by peeking
        total = timer.stop()
        assert total >= second

    def test_peek_accumulates_across_laps(self):
        timer = Timer()
        with timer:
            pass
        closed = timer.elapsed
        timer.start()
        assert timer.peek() >= closed
        timer.stop()


class TestRunLogNdjson:
    def test_round_trip(self, tmp_path):
        log = RunLog()
        log.append(outer=0, loss=1.5)
        log.append(outer=1, loss=0.7, extra="note")
        path = tmp_path / "log.ndjson"
        assert log.to_ndjson(path) == 2
        restored = RunLog.from_ndjson(path)
        assert restored.records == log.records

    def test_numpy_values_become_plain_json(self, tmp_path):
        log = RunLog()
        log.append(n=np.int64(3), x=np.float64(0.5))
        path = tmp_path / "log.ndjson"
        log.to_ndjson(path)
        restored = RunLog.from_ndjson(path)
        assert restored.records == [{"n": 3, "x": 0.5}]

    def test_creates_parent_directories(self, tmp_path):
        log = RunLog()
        log.append(step=1)
        path = tmp_path / "deep" / "nested" / "log.ndjson"
        log.to_ndjson(path)
        assert path.exists()

    def test_missing_file_reads_empty(self, tmp_path):
        assert len(RunLog.from_ndjson(tmp_path / "gone.ndjson")) == 0

    def test_shared_file_with_span_events(self, tmp_path):
        """log_record events interleaved with spans: only the logs load."""
        import json

        path = tmp_path / "mixed.ndjson"
        lines = [
            {"event": "span", "span_id": "a", "name": "solve"},
            {"event": "log_record", "index": 0, "record": {"loss": 2.0}},
            {"event": "log_record", "index": 1, "record": "not-a-dict"},
        ]
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        restored = RunLog.from_ndjson(path)
        assert restored.records == [{"loss": 2.0}]

    def test_to_dict_union_of_keys_in_first_seen_order(self):
        log = RunLog()
        log.append(a=1)
        log.append(b=2, a=3)
        log.append(c=4)
        columns = log.to_dict()
        assert list(columns) == ["a", "b", "c"]
        assert columns["a"] == [1, 3, None]
        assert columns["b"] == [None, 2, None]
        assert columns["c"] == [None, None, 4]
