"""Tests for repro.utils.random, repro.utils.timer and repro.utils.logging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.logging import RunLog
from repro.utils.random import as_generator, spawn_generators
from repro.utils.timer import Timer, timed


class TestAsGenerator:
    def test_integer_seed_is_deterministic(self):
        assert as_generator(3).integers(1000) == as_generator(3).integers(1000)

    def test_existing_generator_is_returned_unchanged(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_none_gives_a_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_children_are_independent_and_deterministic(self):
        first = [g.integers(10**6) for g in spawn_generators(42, 3)]
        second = [g.integers(10**6) for g in spawn_generators(42, 3)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_from_generator(self):
        children = spawn_generators(np.random.default_rng(1), 2)
        assert len(children) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer()
        with timer:
            sum(range(100))
        with timer:
            sum(range(100))
        assert timer.elapsed > 0
        assert len(timer.laps) == 2
        assert timer.mean_lap == pytest.approx(timer.elapsed / 2)

    def test_double_start_raises(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.laps == []

    def test_timed_reports_to_sink(self):
        messages = []
        with timed("block", sink=messages.append):
            pass
        assert len(messages) == 1
        assert messages[0].startswith("block:")


class TestRunLog:
    def test_append_and_column(self):
        log = RunLog()
        log.append(loss=1.0, delta=0.5)
        log.append(loss=0.5, delta=0.25)
        assert np.allclose(log.column("loss"), [1.0, 0.5])
        assert len(log) == 2

    def test_missing_key_defaults_to_nan(self):
        log = RunLog()
        log.append(loss=1.0)
        log.append(loss=0.5, h=0.1)
        column = log.column("h")
        assert np.isnan(column[0]) and column[1] == 0.1

    def test_last(self):
        log = RunLog()
        log.append(a=1)
        log.append(b=2)
        assert log.last("a") == 1
        assert log.last("missing", default="x") == "x"

    def test_to_dict_preserves_key_order(self):
        log = RunLog()
        log.append(a=1, b=2)
        log.append(a=3)
        table = log.to_dict()
        assert list(table) == ["a", "b"]
        assert table["a"] == [1, 3]
        assert table["b"] == [2, None]

    def test_iteration_and_indexing(self):
        log = RunLog()
        log.extend([{"a": 1}, {"a": 2}])
        assert [record["a"] for record in log] == [1, 2]
        assert log[0]["a"] == 1
