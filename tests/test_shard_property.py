"""Property-based tests (Hypothesis) for the sharding invariants.

Three invariants must hold for *any* data and *any* plan, not just the
benchmark scenario:

1. the stitched graph is always a DAG — whatever the block solves hand over,
   including cyclic or adversarial sub-graphs;
2. every node appears in at least one block (the cores partition the node
   set, halos only add);
3. stitching sub-graphs of a ground truth never *invents* edges — in
   particular, two disjoint components never acquire a cross-component edge.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dag import is_dag
from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem
from repro.shard.planner import ShardPlanner
from repro.shard.stitcher import Stitcher

SETTINGS = settings(max_examples=25, deadline=None)


def _random_sem_data(
    n_nodes: int, seed: int, n_samples: int = 60
) -> tuple[np.ndarray, np.ndarray]:
    """A random weighted DAG and LSEM samples drawn from it."""
    truth = random_dag("ER-2", n_nodes, seed=seed)
    data = simulate_linear_sem(truth, n_samples, noise_type="gaussian", seed=seed + 1)
    return truth, data


def _random_planner(
    n_nodes: int, threshold: float, max_block: int, min_block: int, halo_cap: int | None
) -> ShardPlanner:
    """A planner with randomized but mutually consistent knobs."""
    max_block = max(1, min(max_block, n_nodes))
    return ShardPlanner(
        skeleton_threshold=threshold,
        max_block_size=max_block,
        min_block_size=min(min_block, max_block),
        max_halo_size=halo_cap,
    )


@SETTINGS
@given(
    n_nodes=st.integers(2, 24),
    seed=st.integers(0, 10_000),
    threshold=st.floats(0.05, 0.8),
    max_block=st.integers(1, 12),
    min_block=st.integers(1, 12),
    halo_cap=st.one_of(st.none(), st.integers(0, 6)),
)
def test_every_node_appears_in_at_least_one_block(
    n_nodes, seed, threshold, max_block, min_block, halo_cap
):
    _, data = _random_sem_data(n_nodes, seed)
    planner = _random_planner(n_nodes, threshold, max_block, min_block, halo_cap)
    plan = planner.plan(data)

    covered = sorted({node for block in plan.blocks for node in block.core})
    assert covered == list(range(n_nodes))  # cores partition => full coverage
    for block in plan.blocks:
        assert len(block.core) <= planner.max_block_size
        assert not set(block.core) & set(block.halo)
        if halo_cap is not None:
            assert len(block.halo) <= halo_cap
    summary = plan.summary()
    assert summary["n_nodes"] == n_nodes
    assert summary["n_blocks"] == plan.n_blocks
    assert summary["is_monolithic"] == (plan.n_blocks == 1)


@SETTINGS
@given(
    n_nodes=st.integers(2, 20),
    seed=st.integers(0, 10_000),
    threshold=st.floats(0.05, 0.6),
    max_block=st.integers(1, 8),
    density=st.floats(0.0, 0.9),
    drop=st.integers(0, 2),
)
def test_stitched_graph_is_always_a_dag(
    n_nodes, seed, threshold, max_block, density, drop
):
    """Even adversarial (cyclic, dense) block graphs stitch into a DAG."""
    _, data = _random_sem_data(n_nodes, seed)
    plan = _random_planner(n_nodes, threshold, max_block, 1, None).plan(data)
    rng = np.random.default_rng(seed + 17)

    block_graphs = []
    for block in plan.blocks:
        size = len(block.nodes)
        local = rng.normal(size=(size, size)) * (rng.random((size, size)) < density)
        np.fill_diagonal(local, 0.0)
        block_graphs.append((block, local))
    # Some blocks may be missing entirely (failed / preempted jobs).
    block_graphs = block_graphs[: max(0, len(block_graphs) - drop)]

    stitched = Stitcher().stitch(block_graphs, n_nodes)
    assert is_dag(stitched.weights)
    assert stitched.report.n_edges == int(np.count_nonzero(stitched.weights))


@SETTINGS
@given(
    n_nodes=st.integers(2, 20),
    seed=st.integers(0, 10_000),
    threshold=st.floats(0.05, 0.6),
    max_block=st.integers(1, 8),
)
def test_stitching_true_subgraphs_never_invents_edges(
    n_nodes, seed, threshold, max_block
):
    """The stitched edge set is a subset of the union of the block edge sets."""
    truth, data = _random_sem_data(n_nodes, seed)
    plan = _random_planner(n_nodes, threshold, max_block, 1, None).plan(data)

    block_graphs = [
        (block, truth[np.ix_(block.nodes, block.nodes)]) for block in plan.blocks
    ]
    stitched = Stitcher().stitch(block_graphs, n_nodes)
    assert is_dag(stitched.weights)
    invented = (stitched.weights != 0) & (truth == 0)
    assert not invented.any()


@SETTINGS
@given(
    size_a=st.integers(2, 10),
    size_b=st.integers(2, 10),
    seed=st.integers(0, 10_000),
    threshold=st.floats(0.05, 0.6),
    max_block=st.integers(1, 8),
    min_block=st.integers(1, 8),
)
def test_disjoint_components_never_gain_cross_edges(
    size_a, size_b, seed, threshold, max_block, min_block
):
    """Two independent SEM components stay independent through plan + stitch.

    Even when the planner packs nodes of both components into a shared block,
    stitching the per-block *sub-graphs of the truth* must not produce a
    single edge between the two components.
    """
    truth_a = random_dag("ER-2", size_a, seed=seed)
    truth_b = random_dag("ER-2", size_b, seed=seed + 1)
    n_nodes = size_a + size_b
    truth = np.zeros((n_nodes, n_nodes))
    truth[:size_a, :size_a] = truth_a
    truth[size_a:, size_a:] = truth_b
    data = simulate_linear_sem(truth, 80, noise_type="gaussian", seed=seed + 2)

    plan = _random_planner(n_nodes, threshold, max_block, min_block, None).plan(data)
    block_graphs = [
        (block, truth[np.ix_(block.nodes, block.nodes)]) for block in plan.blocks
    ]
    stitched = Stitcher().stitch(block_graphs, n_nodes)

    assert is_dag(stitched.weights)
    cross_ab = stitched.weights[:size_a, size_a:]
    cross_ba = stitched.weights[size_a:, :size_a]
    assert not cross_ab.any() and not cross_ba.any()


def test_constant_columns_plan_as_isolated_nodes():
    """Zero-variance columns (undefined correlation) still get a block."""
    data = np.ones((50, 6))
    plan = ShardPlanner(skeleton_threshold=0.2).plan(data)
    covered = sorted({node for block in plan.blocks for node in block.core})
    assert covered == list(range(6))
    assert plan.n_skeleton_edges == 0
