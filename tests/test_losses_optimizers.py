"""Tests for the least-squares loss and the from-scratch optimizers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.losses import LeastSquaresLoss, sample_batch
from repro.core.optimizers import AdamOptimizer, SGDOptimizer, SparseAdamOptimizer
from repro.exceptions import DimensionMismatchError, ValidationError


class TestLeastSquaresLoss:
    def test_zero_loss_for_perfect_fit(self, small_dag):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 4))
        # Build data that satisfies X = X W exactly is impossible for generic W,
        # but the residual-based value must be >= 0 and 0 when W reproduces X.
        loss = LeastSquaresLoss()
        assert loss.value(np.zeros((4, 4)), data) == pytest.approx((data**2).sum() / 100)

    def test_l1_term(self):
        loss = LeastSquaresLoss(l1_penalty=2.0)
        data = np.zeros((10, 3))
        weights = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, -2.0], [0.0, 0.0, 0.0]])
        assert loss.value(weights, data) == pytest.approx(2.0 * 3.0)

    def test_gradient_matches_finite_differences(self, rng):
        loss = LeastSquaresLoss(l1_penalty=0.0)
        data = rng.normal(size=(50, 5))
        weights = rng.normal(size=(5, 5)) * 0.3
        np.fill_diagonal(weights, 0.0)
        _, gradient = loss.value_and_gradient(weights, data)
        epsilon = 1e-6
        for _ in range(10):
            i, j = rng.integers(0, 5, size=2)
            if i == j:
                continue
            plus = weights.copy()
            plus[i, j] += epsilon
            minus = weights.copy()
            minus[i, j] -= epsilon
            finite_difference = (loss.value(plus, data) - loss.value(minus, data)) / (2 * epsilon)
            assert gradient[i, j] == pytest.approx(finite_difference, rel=1e-4, abs=1e-6)

    def test_gradient_diagonal_is_zero(self, rng):
        loss = LeastSquaresLoss(l1_penalty=0.1)
        data = rng.normal(size=(30, 4))
        weights = rng.normal(size=(4, 4))
        _, gradient = loss.value_and_gradient(weights, data)
        np.testing.assert_array_equal(np.diag(gradient), 0.0)

    def test_sparse_gradient_matches_dense_on_support(self, rng):
        loss = LeastSquaresLoss(l1_penalty=0.05)
        data = rng.normal(size=(60, 8))
        dense = rng.normal(size=(8, 8)) * (rng.random((8, 8)) < 0.4)
        np.fill_diagonal(dense, 0.0)
        sparse = sp.csr_matrix(dense)
        dense_value, dense_gradient = loss.value_and_gradient(dense, data)
        sparse_value, sparse_gradient_data = loss.sparse_value_and_gradient(sparse, data)
        assert sparse_value == pytest.approx(dense_value)
        coo = sparse.tocoo()
        np.testing.assert_allclose(
            sparse_gradient_data, dense_gradient[coo.row, coo.col], atol=1e-9
        )

    def test_sparse_requires_sparse_matrix(self, rng):
        loss = LeastSquaresLoss()
        with pytest.raises(ValidationError):
            loss.sparse_value_and_gradient(np.zeros((3, 3)), rng.normal(size=(5, 3)))

    def test_shape_mismatch_rejected(self, rng):
        loss = LeastSquaresLoss()
        with pytest.raises(DimensionMismatchError):
            loss.value(np.zeros((3, 3)), rng.normal(size=(10, 4)))

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValidationError):
            LeastSquaresLoss(l1_penalty=-1.0)


class TestSampleBatch:
    def test_full_batch_when_none(self, rng):
        data = rng.normal(size=(20, 3))
        assert sample_batch(data, None, rng) is data
        assert sample_batch(data, 50, rng) is data

    def test_batch_size_respected(self, rng):
        data = rng.normal(size=(100, 3))
        batch = sample_batch(data, 10, rng)
        assert batch.shape == (10, 3)

    def test_batch_rows_come_from_data(self, rng):
        data = np.arange(30, dtype=float).reshape(10, 3)
        batch = sample_batch(data, 4, rng)
        for row in batch:
            assert any(np.array_equal(row, original) for original in data)


class TestAdam:
    def test_minimizes_quadratic(self):
        optimizer = AdamOptimizer(learning_rate=0.1)
        x = np.array([5.0, -3.0])
        for _ in range(500):
            x = optimizer.update(x, 2 * x)
        np.testing.assert_allclose(x, 0.0, atol=1e-3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            AdamOptimizer().update(np.zeros(3), np.zeros(4))

    def test_reset_clears_state(self):
        optimizer = AdamOptimizer()
        optimizer.update(np.ones(2), np.ones(2))
        optimizer.reset()
        assert optimizer._first_moment is None

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValidationError):
            AdamOptimizer(learning_rate=0.0)
        with pytest.raises(ValidationError):
            AdamOptimizer(beta1=1.5)


class TestSGD:
    def test_minimizes_quadratic_with_momentum(self):
        optimizer = SGDOptimizer(learning_rate=0.05, momentum=0.8)
        x = np.array([4.0])
        for _ in range(300):
            x = optimizer.update(x, 2 * x)
        assert abs(x[0]) < 1e-3

    def test_plain_gradient_step(self):
        optimizer = SGDOptimizer(learning_rate=0.5, momentum=0.0)
        x = optimizer.update(np.array([1.0]), np.array([1.0]))
        assert x[0] == pytest.approx(0.5)


class TestSparseAdam:
    def test_minimizes_quadratic_on_data_vector(self):
        optimizer = SparseAdamOptimizer(learning_rate=0.1)
        values = np.array([3.0, -2.0, 1.0])
        for _ in range(500):
            values = optimizer.update(values, 2 * values)
        np.testing.assert_allclose(values, 0.0, atol=1e-3)

    def test_shrink_support(self):
        optimizer = SparseAdamOptimizer(learning_rate=0.1)
        values = np.array([1.0, 2.0, 3.0])
        values = optimizer.update(values, values)
        keep = np.array([True, False, True])
        optimizer.shrink_support(keep)
        assert optimizer._first_moment.shape == (2,)
        # Next update with the shrunk vector must be consistent.
        optimizer.update(values[keep], values[keep])

    def test_shrink_before_any_update_is_noop(self):
        optimizer = SparseAdamOptimizer()
        optimizer.shrink_support(np.array([True]))

    def test_shrink_shape_mismatch_rejected(self):
        optimizer = SparseAdamOptimizer()
        optimizer.update(np.ones(3), np.ones(3))
        with pytest.raises(ValidationError):
            optimizer.shrink_support(np.array([True, False]))
