"""Tests for post-processing: thresholding and the ε/τ grid searches."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.least import LEASTResult
from repro.core.model_selection import (
    DEFAULT_EPSILON_GRID,
    DEFAULT_TAU_GRID,
    grid_search_epsilon_tau,
    grid_search_threshold,
)
from repro.core.thresholding import threshold_to_dag, threshold_weights
from repro.exceptions import ValidationError
from repro.graph.dag import is_dag
from repro.utils.logging import RunLog


class TestThresholdWeights:
    def test_small_entries_removed(self, small_dag):
        noisy = small_dag.copy()
        noisy[3, 0] = 0.01
        filtered = threshold_weights(noisy, 0.05)
        assert filtered[3, 0] == 0.0
        assert filtered[0, 1] == 1.5

    def test_sparse_input(self, small_dag):
        filtered = threshold_weights(sp.csr_matrix(small_dag), 1.0)
        assert filtered.nnz == 2


class TestThresholdToDag:
    def test_already_a_dag(self, small_dag):
        result, threshold = threshold_to_dag(small_dag)
        assert threshold == 0.0
        np.testing.assert_array_equal(result, small_dag)

    def test_breaks_weak_cycles(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 1.0
        matrix[1, 2] = 0.8
        matrix[2, 0] = 0.05  # weak back edge closes the cycle
        result, threshold = threshold_to_dag(matrix)
        assert is_dag(result)
        assert result[0, 1] == 1.0 and result[2, 0] == 0.0
        assert threshold > 0.05

    def test_initial_threshold_applied_first(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 0.2
        matrix[1, 0] = 0.01
        result, threshold = threshold_to_dag(matrix, initial_threshold=0.05)
        assert is_dag(result)
        assert threshold == 0.05

    def test_max_threshold_violation_raises(self):
        matrix = np.zeros((2, 2))
        matrix[0, 1] = 1.0
        matrix[1, 0] = 1.0
        with pytest.raises(ValidationError):
            threshold_to_dag(matrix, max_threshold=0.5)

    def test_negative_initial_threshold_rejected(self, small_dag):
        with pytest.raises(ValidationError):
            threshold_to_dag(small_dag, initial_threshold=-1.0)

    def test_sparse_matrix_preserves_type(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 1.0
        matrix[1, 0] = 0.01
        result, _ = threshold_to_dag(sp.csr_matrix(matrix))
        assert sp.issparse(result)
        assert is_dag(result)


class TestGridSearchThreshold:
    def test_selects_best_f1(self, small_dag):
        noisy = small_dag + np.random.default_rng(0).normal(0, 0.05, size=small_dag.shape)
        np.fill_diagonal(noisy, 0.0)
        result = grid_search_threshold(noisy, small_dag)
        assert result.best_f1 == 1.0
        assert result.best_threshold in DEFAULT_TAU_GRID
        assert len(result.all_results) == len(DEFAULT_TAU_GRID)

    def test_custom_objective(self, small_dag):
        result = grid_search_threshold(
            small_dag, small_dag, objective=lambda metrics: -metrics.shd
        )
        assert result.best_shd == 0

    def test_empty_grid_rejected(self, small_dag):
        with pytest.raises(ValidationError):
            grid_search_threshold(small_dag, small_dag, thresholds=[])

    def test_numpy_array_grid_accepted(self, small_dag):
        result = grid_search_threshold(small_dag, small_dag, thresholds=np.array([0.1, 0.2]))
        assert result.best_f1 == 1.0


class TestGridSearchEpsilonTau:
    def _fake_result(self, snapshots, h_values):
        log = RunLog()
        for step, h in enumerate(h_values, start=1):
            log.append(outer_iteration=step, h=h, delta=h * 2)
        return LEASTResult(
            weights=snapshots[-1],
            constraint_value=h_values[-1],
            converged=True,
            n_outer_iterations=len(h_values),
            log=log,
            history=list(snapshots),
        )

    def test_picks_earlier_snapshot_when_better(self, small_dag):
        good = small_dag.copy()
        crushed = small_dag * 0.01  # later snapshot: weights shrunk below every τ
        result = self._fake_result([good, crushed], [0.05, 1e-5])
        search = grid_search_epsilon_tau(result, small_dag)
        assert search.best_f1 == 1.0

    def test_requires_history(self, small_dag):
        result = LEASTResult(
            weights=small_dag, constraint_value=0.0, converged=True, n_outer_iterations=1
        )
        with pytest.raises(ValidationError):
            grid_search_epsilon_tau(result, small_dag)

    def test_falls_back_to_delta_trace(self, small_dag):
        log = RunLog()
        log.append(outer_iteration=1, delta=1e-3)
        result = LEASTResult(
            weights=small_dag,
            constraint_value=1e-3,
            converged=True,
            n_outer_iterations=1,
            log=log,
            history=[small_dag],
        )
        search = grid_search_epsilon_tau(result, small_dag)
        assert search.best_f1 == 1.0

    def test_default_epsilon_grid_matches_paper(self):
        assert DEFAULT_EPSILON_GRID == (1e-1, 1e-2, 1e-3, 1e-4)


def test_threshold_to_dag_breaks_cycles_without_densifying_sparse_input():
    """The cycle-escalation path must stay sparse for CSR inputs."""
    import scipy.sparse as sp

    cyclic = sp.csr_matrix(
        ([0.5, 0.9, 0.7], ([0, 1, 2], [1, 0, 0])), shape=(3, 3)
    )
    import tracemalloc

    from repro.core.thresholding import threshold_to_dag
    from repro.graph.dag import is_dag

    pruned, threshold = threshold_to_dag(cyclic)
    assert sp.issparse(pruned)
    assert is_dag(pruned)
    assert threshold > 0.5  # the lighter cycle edge was removed

    # At scale the escalation path must not allocate d × d: a 3000-node CSR
    # with one cycle stays under a budget far below 72 MB dense.
    d = 3000
    big = sp.csr_matrix(
        ([0.5, 0.9, 0.7], ([0, 1, 2], [1, 0, 0])), shape=(d, d)
    )
    tracemalloc.start()
    try:
        pruned, _ = threshold_to_dag(big)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert sp.issparse(pruned) and is_dag(pruned)
    assert peak < 8 * 1024 * 1024
