"""Tests for repro.serve.job / repro.serve.runner: jobs, retry, timeout, cache."""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.datasets.registry import register_dataset, unregister_dataset
from repro.exceptions import ValidationError
from repro.serve.cache import InMemoryCache
from repro.serve.job import (
    LearningJob,
    execute_job,
    register_solver,
    unregister_solver,
)
from repro.serve.runner import BatchRunner

FAST_CONFIG = {"max_outer_iterations": 3, "max_inner_iterations": 40}


def _inline_job(seed: int = 0, **overrides) -> LearningJob:
    rng = np.random.default_rng(99)
    data = rng.normal(size=(40, 6))
    options = {"data": data, "seed": seed, "config": dict(FAST_CONFIG)}
    options.update(overrides)
    return LearningJob(**options)


# -- a deliberately slow and a deliberately flaky solver, registered so both
# -- the serial path and the forked worker processes can resolve them.


@dataclass(frozen=True)
class _SleepyConfig:
    duration: float = 0.5


class _SleepySolver:
    def __init__(self, config: _SleepyConfig):
        self.config = config

    def fit(self, data, seed=None):
        time.sleep(self.config.duration)
        from repro.core.least import LEASTResult

        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


_FLAKY_CALLS = {"count": 0}


@dataclass(frozen=True)
class _FlakyConfig:
    fail_times: int = 1


class _FlakySolver:
    def __init__(self, config: _FlakyConfig):
        self.config = config

    def fit(self, data, seed=None):
        _FLAKY_CALLS["count"] += 1
        if _FLAKY_CALLS["count"] <= self.config.fail_times:
            raise RuntimeError("transient solver failure")
        from repro.core.least import LEASTResult

        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


@pytest.fixture
def sleepy_solver():
    register_solver("sleepy", _SleepySolver, _SleepyConfig, overwrite=True)
    yield
    unregister_solver("sleepy")


@pytest.fixture
def flaky_solver():
    _FLAKY_CALLS["count"] = 0
    register_solver("flaky", _FlakySolver, _FlakyConfig, overwrite=True)
    yield
    unregister_solver("flaky")


class TestLearningJob:
    def test_requires_exactly_one_data_source(self):
        with pytest.raises(ValidationError):
            LearningJob(solver="least")
        with pytest.raises(ValidationError):
            LearningJob(dataset="er2", data=np.zeros((4, 2)))

    def test_rejects_unknown_solver(self):
        with pytest.raises(ValidationError):
            LearningJob(solver="pc-algorithm", dataset="er2")

    def test_rejects_init_weights_for_notears(self):
        with pytest.raises(ValidationError):
            LearningJob(solver="notears", dataset="er2", init_weights=np.zeros((3, 3)))

    def test_registry_round_trip(self):
        """load_dataset name -> LearningJob -> same matrix the registry built."""
        from repro.datasets.registry import load_dataset

        job = LearningJob(dataset="er2", seed=7, dataset_options={"n_nodes": 12})
        resolved = job.resolve_data()
        direct = load_dataset("er2", seed=7, n_nodes=12)["data"]
        np.testing.assert_array_equal(resolved, direct)

    def test_manifest_round_trip(self):
        job = LearningJob(
            dataset="er2",
            seed=3,
            config={"k": 4},
            dataset_options={"n_nodes": 10},
            job_id="alpha",
        )
        clone = LearningJob.from_dict(job.to_dict())
        assert clone.dataset == "er2" and clone.seed == 3
        assert clone.config == {"k": 4} and clone.job_id == "alpha"

    def test_manifest_rejects_unknown_keys(self):
        with pytest.raises(ValidationError):
            LearningJob.from_dict({"dataset": "er2", "solvr": "least"})

    def test_manifest_round_trip_preserves_init_weights(self):
        init = np.zeros((5, 5))
        init[0, 1] = 0.7
        job = LearningJob(dataset="er2", seed=0, init_weights=init)
        clone = LearningJob.from_dict(job.to_dict())
        np.testing.assert_array_equal(clone.init_weights, init)

    def test_unknown_solver_error_reflects_registrations(self, sleepy_solver):
        with pytest.raises(ValidationError, match="sleepy"):
            LearningJob(solver="definitely-not-a-solver", dataset="er2")

    def test_execute_job_inline_data(self):
        result = execute_job(_inline_job())
        assert result.status == "ok"
        assert result.weights.shape == (6, 6)
        assert result.n_outer_iterations >= 1
        assert result.n_inner_iterations >= 1
        assert result.elapsed_seconds > 0


class TestBatchRunnerSerial:
    def test_runs_all_jobs_and_assigns_ids(self):
        jobs = [_inline_job(seed=s) for s in range(3)]
        report = BatchRunner().run(jobs)
        assert report.n_jobs == 3 and report.n_ok == 3
        assert [r.job_id for r in report.results] == ["job-000", "job-001", "job-002"]
        assert report.jobs_per_second > 0

    def test_failed_dataset_is_reported_not_raised(self):
        jobs = [LearningJob(dataset="er2", seed=0, dataset_options={"n_nodes": 8}),
                LearningJob(dataset="er2", seed=0, dataset_options={"bogus_option": 1})]
        report = BatchRunner().run(jobs)
        assert report.n_ok == 1 and report.n_failed == 1
        failed = report.results[1]
        assert failed.status == "failed" and failed.error

    def test_invalid_config_is_reported_not_raised(self):
        report = BatchRunner().run([_inline_job(config={"k": -2})])
        assert report.n_failed == 1
        assert "k" in report.results[0].error

    def test_serial_deadline_preempts_overrunning_jobs(self, sleepy_solver):
        job = LearningJob(solver="sleepy", data=np.zeros((4, 3)), config={"duration": 5.0})
        report = BatchRunner(timeout=0.2).run([job])
        assert report.n_preempted == 1 and report.n_timeout == 1
        assert report.results[0].status == "preempted"
        assert "deadline" in report.results[0].error
        # The worker is killed at the deadline, not after the 5s sleep.
        assert report.total_seconds < 5.0

    def test_solver_retry_succeeds_within_budget(self, flaky_solver):
        job = LearningJob(solver="flaky", data=np.zeros((4, 3)), config={"fail_times": 1})
        report = BatchRunner(max_retries=1).run([job])
        assert report.n_ok == 1
        assert report.results[0].attempts == 2

    def test_solver_retry_exhausted_reports_failure(self, flaky_solver):
        job = LearningJob(solver="flaky", data=np.zeros((4, 3)), config={"fail_times": 5})
        report = BatchRunner(max_retries=1).run([job])
        assert report.n_failed == 1
        assert report.results[0].attempts == 2
        assert "transient solver failure" in report.results[0].error

    def test_dataset_builder_retry(self):
        calls = {"count": 0}

        def builder(seed=None, **options):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("transient dataset failure")
            return {"name": "flaky-data", "data": np.random.default_rng(0).normal(size=(30, 4))}

        register_dataset("flaky-data", builder, overwrite=True)
        try:
            job = LearningJob(dataset="flaky-data", config=dict(FAST_CONFIG))
            report = BatchRunner(max_retries=1).run([job])
            assert report.n_ok == 1
            calls["count"] = 0
            report = BatchRunner(max_retries=0).run([job])
            assert report.n_failed == 1
            assert "transient dataset failure" in report.results[0].error
        finally:
            unregister_dataset("flaky-data")


class TestBatchRunnerParallel:
    def test_parallel_matches_serial_results(self):
        jobs = [_inline_job(seed=s) for s in range(4)]
        serial = BatchRunner(n_workers=1).run(jobs)
        parallel = BatchRunner(n_workers=2).run([_inline_job(seed=s) for s in range(4)])
        assert parallel.n_ok == 4
        for a, b in zip(serial.results, parallel.results):
            assert a.job_id == b.job_id
            np.testing.assert_allclose(a.weights, b.weights)

    def test_parallel_mixed_solvers_and_failures(self):
        jobs = [
            _inline_job(seed=0),
            _inline_job(seed=1, solver="notears", config={"max_outer_iterations": 2, "max_inner_iterations": 20}),
            _inline_job(seed=2, config={"k": -1}),
        ]
        report = BatchRunner(n_workers=2).run(jobs)
        assert report.n_ok == 2 and report.n_failed == 1

    def test_parallel_deadline_preempts_hanging_job(self, sleepy_solver):
        jobs = [
            LearningJob(solver="sleepy", data=np.zeros((4, 3)), config={"duration": 5.0}),
            _inline_job(seed=1),
        ]
        report = BatchRunner(n_workers=2, timeout=1.0).run(jobs)
        statuses = {r.job_id: r.status for r in report.results}
        assert statuses["job-000"] == "preempted"
        assert statuses["job-001"] == "ok"
        # Hard preemption kills the worker at the deadline instead of waiting
        # out the 5s sleep cooperatively.
        assert report.total_seconds < 5.0
        assert report.n_preempted == 1 and report.n_timeout == 1
        assert report.preemption_stats["n_killed"] >= 1


class TestRunnerCacheIntegration:
    def test_second_run_is_served_from_cache(self):
        cache = InMemoryCache()
        jobs = [_inline_job(seed=s) for s in range(2)]
        first = BatchRunner(cache=cache).run(jobs)
        assert first.n_cache_hits == 0
        second = BatchRunner(cache=cache).run([_inline_job(seed=s) for s in range(2)])
        assert second.n_cache_hits == 2
        assert second.solver_seconds_saved > 0
        for a, b in zip(first.results, second.results):
            np.testing.assert_allclose(a.weights, b.weights)
            assert b.cache_hit and b.elapsed_seconds == 0.0

    def test_cache_hits_skip_solver_execution(self, flaky_solver):
        """After caching, the solver is not invoked at all (call count frozen)."""
        cache = InMemoryCache()
        job = LearningJob(solver="flaky", data=np.zeros((4, 3)), config={"fail_times": 0})
        BatchRunner(cache=cache).run([job])
        calls_after_first = _FLAKY_CALLS["count"]
        assert calls_after_first == 1
        report = BatchRunner(cache=cache).run(
            [LearningJob(solver="flaky", data=np.zeros((4, 3)), config={"fail_times": 0})]
        )
        assert report.n_cache_hits == 1
        assert _FLAKY_CALLS["count"] == calls_after_first

    def test_cache_hits_are_relabelled_with_the_requesting_job_id(self):
        """A hit served from an entry produced under another id keeps its own."""
        cache = InMemoryCache()
        BatchRunner(cache=cache).run([_inline_job(seed=0)])  # cached as job-000
        report = BatchRunner(cache=cache).run(
            [_inline_job(seed=1), _inline_job(seed=0)]
        )
        assert [r.job_id for r in report.results] == ["job-000", "job-001"]
        assert [r.cache_hit for r in report.results] == [False, True]

    def test_different_seed_misses(self):
        cache = InMemoryCache()
        BatchRunner(cache=cache).run([_inline_job(seed=0)])
        report = BatchRunner(cache=cache).run([_inline_job(seed=1)])
        assert report.n_cache_hits == 0

    def test_failed_jobs_are_not_cached(self, flaky_solver):
        cache = InMemoryCache()
        job = LearningJob(solver="flaky", data=np.zeros((4, 3)), config={"fail_times": 10})
        BatchRunner(cache=cache).run([job])
        _FLAKY_CALLS["count"] = 0
        report = BatchRunner(cache=cache).run(
            [LearningJob(solver="flaky", data=np.zeros((4, 3)), config={"fail_times": 0})]
        )
        assert report.n_cache_hits == 0 and report.n_ok == 1


class TestRunnerValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            BatchRunner(n_workers=0)
        with pytest.raises(ValidationError):
            BatchRunner(timeout=-1.0)
        with pytest.raises(ValidationError):
            BatchRunner(max_retries=-1)

    def test_report_summary_is_json_able(self):
        import json

        report = BatchRunner().run([_inline_job()])
        payload = json.dumps(report.summary())
        assert "jobs_per_second" in payload
