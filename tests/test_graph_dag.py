"""Tests for repro.graph.dag."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import NotADAGError
from repro.graph.dag import (
    all_paths_to,
    ancestors,
    children,
    count_edges,
    descendants,
    find_cycle,
    is_dag,
    parents,
    topological_sort,
    transitive_closure,
)


class TestIsDag:
    def test_dag_is_accepted(self, small_dag):
        assert is_dag(small_dag)

    def test_cycle_is_rejected(self, cyclic_matrix):
        assert not is_dag(cyclic_matrix)

    def test_self_loop_is_a_cycle(self):
        matrix = np.zeros((2, 2))
        matrix[0, 0] = 1.0
        assert not is_dag(matrix)

    def test_empty_graph_is_a_dag(self):
        assert is_dag(np.zeros((5, 5)))

    def test_sparse_input(self, small_dag, cyclic_matrix):
        assert is_dag(sp.csr_matrix(small_dag))
        assert not is_dag(sp.csr_matrix(cyclic_matrix))


class TestTopologicalSort:
    def test_order_respects_edges(self, small_dag):
        order = topological_sort(small_dag)
        position = {node: index for index, node in enumerate(order)}
        rows, cols = np.nonzero(small_dag)
        for source, target in zip(rows, cols):
            assert position[source] < position[target]

    def test_cycle_raises(self, cyclic_matrix):
        with pytest.raises(NotADAGError):
            topological_sort(cyclic_matrix)

    def test_all_nodes_present(self, small_dag):
        assert sorted(topological_sort(small_dag)) == list(range(4))


class TestFindCycle:
    def test_returns_none_for_dag(self, small_dag):
        assert find_cycle(small_dag) is None

    def test_returns_a_closed_walk(self, cyclic_matrix):
        cycle = find_cycle(cyclic_matrix)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        for source, target in zip(cycle[:-1], cycle[1:]):
            assert cyclic_matrix[source, target] != 0

    def test_long_cycle(self):
        matrix = np.zeros((5, 5))
        for i in range(5):
            matrix[i, (i + 1) % 5] = 1.0
        cycle = find_cycle(matrix)
        assert cycle is not None
        assert len(cycle) == 6  # 5 nodes + repeated start


class TestRelatives:
    def test_parents_and_children(self, small_dag):
        assert parents(small_dag, 3) == [1, 2]
        assert children(small_dag, 0) == [1, 2]
        assert parents(small_dag, 0) == []

    def test_descendants(self, small_dag):
        assert descendants(small_dag, 0) == {1, 2, 3}
        assert descendants(small_dag, 3) == set()

    def test_ancestors(self, small_dag):
        assert ancestors(small_dag, 3) == {0, 1, 2}
        assert ancestors(small_dag, 0) == set()

    def test_count_edges(self, small_dag):
        assert count_edges(small_dag) == 4
        assert count_edges(sp.csr_matrix(small_dag)) == 4


class TestAllPathsTo:
    def test_paths_end_at_target_and_start_at_roots(self, small_dag):
        paths = all_paths_to(small_dag, 3)
        assert sorted(paths) == [[0, 1, 3], [0, 2, 3]]

    def test_max_length_filters_long_paths(self, small_dag):
        paths = all_paths_to(small_dag, 3, max_length=1)
        assert paths == []

    def test_root_target_gives_singleton_path(self, small_dag):
        assert all_paths_to(small_dag, 0) == [[0]]


class TestTransitiveClosure:
    def test_reachability(self, small_dag):
        closure = transitive_closure(small_dag)
        assert closure[0, 3]
        assert closure[1, 3]
        assert not closure[3, 0]
        assert not closure[0, 0]
