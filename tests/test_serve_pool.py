"""Tests for repro.serve.pool: worker reuse, recycling, two-tier deadlines.

These pin the properties that distinguish the persistent pool from the old
disposable-process engine:

* workers are *reused* — N workers serve M >> N jobs without respawning;
* ``max_jobs_per_worker`` recycles workers on schedule (and ``1`` reproduces
  the disposable engine exactly);
* a hard-deadline preemption kills exactly the offending worker, never its
  busy neighbors;
* ``soft_timeout`` stops a cooperative solver at an outer-iteration boundary
  *without* killing the worker (the process survives and takes the next job);
* requeue accounting tiles the job span — every ``queue_wait`` /
  ``job_attempt`` child sits inside its parent ``job`` span, which
  ``repro-obs check`` must certify orphan-free.

Solver classes are module-level so the suite passes under both ``fork`` and
``spawn`` start methods.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.backend import (
    BackendSpec,
    SolveResult,
    register_backend,
    registry_epoch,
    unregister_backend,
)
from repro.exceptions import ValidationError
from repro.serve.job import LearningJob, register_solver, unregister_solver
from repro.serve.pool import WorkerPool
from repro.serve.streaming import SoftDeadlineExceeded, StreamingRunner

pytestmark = pytest.mark.timeout(120)

FAST_CONFIG = {"max_outer_iterations": 2, "max_inner_iterations": 20}


def _inline_job(seed: int = 0, **overrides) -> LearningJob:
    rng = np.random.default_rng(4242)
    data = rng.normal(size=(30, 5))
    options = {"data": data, "seed": seed, "config": dict(FAST_CONFIG)}
    options.update(overrides)
    return LearningJob(**options)


@dataclass(frozen=True)
class _NapConfig:
    duration: float = 0.0


class _NapSolver:
    """Sleep ``duration`` seconds, then return an instant empty result."""

    def __init__(self, config: _NapConfig):
        self.config = config

    def fit(self, data, seed=None):
        from repro.core.least import LEASTResult

        if self.config.duration > 0:
            time.sleep(self.config.duration)
        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


@pytest.fixture
def nap_solver():
    register_solver("nap", _NapSolver, _NapConfig, overwrite=True)
    yield
    unregister_solver("nap")


@dataclass(frozen=True)
class _IterConfig:
    """A cooperative solver: ``n_iterations`` outer steps of fixed length."""

    n_iterations: int = 50
    iteration_seconds: float = 0.05


class _IterBackend:
    """Implements the backend protocol directly, honoring ``deadline_hooks``
    once per outer iteration — the contract the soft-deadline tier rides on."""

    name = "iterhooks"
    sparse = False

    def __init__(self, config: _IterConfig):
        self.config = config

    def fit(self, data, *, init_weights=None, deadline_hooks=None, rng=None):
        iterations = 0
        for _ in range(self.config.n_iterations):
            for hook in deadline_hooks or ():
                hook()
            time.sleep(self.config.iteration_seconds)
            iterations += 1
        d = data.shape[1]
        return SolveResult(
            solver=self.name,
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=iterations,
        )


@pytest.fixture
def iter_backend():
    register_backend(
        BackendSpec(
            name="iterhooks",
            backend_class=_IterBackend,
            config_class=_IterConfig,
        ),
        overwrite=True,
    )
    yield
    unregister_backend("iterhooks")


class TestPoolValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"n_workers": 2, "timeout": 0.0},
            {"n_workers": 2, "soft_timeout": -1.0},
            {"n_workers": 2, "timeout": 1.0, "soft_timeout": 2.0},
            {"n_workers": 2, "max_retries": -1},
            {"n_workers": 2, "preempt_policy": "shrug"},
            {"n_workers": 2, "preempt_retries": -1},
            {"n_workers": 2, "max_jobs_per_worker": 0},
        ],
    )
    def test_constructor_rejects_bad_parameters(self, kwargs):
        n_workers = kwargs.pop("n_workers")
        with pytest.raises(ValidationError):
            WorkerPool(n_workers, **kwargs)

    def test_runner_rejects_soft_timeout_above_hard(self):
        with pytest.raises(ValidationError):
            StreamingRunner(n_workers=2, timeout=1.0, soft_timeout=3.0)

    def test_runner_rejects_bad_max_jobs_per_worker(self):
        with pytest.raises(ValidationError):
            StreamingRunner(n_workers=2, timeout=5.0, max_jobs_per_worker=0)

    def test_submit_to_closed_pool_raises(self):
        pool = WorkerPool(1)
        pool.close()
        from repro.serve.pool import PoolJob

        with pytest.raises(ValidationError):
            pool.submit(PoolJob(job=_inline_job()))


class TestWorkerReuse:
    def test_many_jobs_reuse_few_workers(self, nap_solver):
        """The tentpole property: M jobs never spawn more than N processes."""
        jobs = [
            LearningJob(solver="nap", data=np.zeros((4, 3)), job_id=f"j{i}")
            for i in range(8)
        ]
        runner = StreamingRunner(n_workers=2, timeout=30.0)
        results = list(runner.stream(jobs))
        assert [r.status for r in results] == ["ok"] * 8
        assert runner.telemetry.n_workers_spawned <= 2
        assert len(set(runner.telemetry.worker_pids)) <= 2
        assert runner.telemetry.n_recycled == 0

    def test_registry_snapshot_paid_once_per_worker(self, nap_solver):
        """The registry epoch only forces a refresh when it actually moved."""
        epoch_before = registry_epoch()
        jobs = [
            LearningJob(solver="nap", data=np.zeros((4, 3))) for _ in range(4)
        ]
        runner = StreamingRunner(n_workers=1, timeout=30.0)
        results = list(runner.stream(jobs))
        assert all(r.status == "ok" for r in results)
        # No registration happened mid-stream, so the epoch is untouched and
        # every dispatch shipped registry=None (owning a single worker for 4
        # jobs is itself the proof the snapshot was not re-paid per job).
        assert registry_epoch() == epoch_before
        assert runner.telemetry.n_workers_spawned == 1

    def test_recycling_after_max_jobs_per_worker(self, nap_solver):
        jobs = [
            LearningJob(solver="nap", data=np.zeros((4, 3)), job_id=f"j{i}")
            for i in range(6)
        ]
        runner = StreamingRunner(
            n_workers=1, timeout=30.0, max_jobs_per_worker=2
        )
        results = list(runner.stream(jobs))
        assert [r.status for r in results] == ["ok"] * 6
        # 6 jobs at 2 per worker = 3 worker generations, all retired cleanly.
        assert runner.telemetry.n_workers_spawned == 3
        assert len(set(runner.telemetry.worker_pids)) == 3
        assert runner.telemetry.n_recycled == 3
        assert runner.telemetry.n_killed == 0

    def test_max_jobs_per_worker_one_reproduces_disposable_engine(
        self, nap_solver
    ):
        jobs = [
            LearningJob(solver="nap", data=np.zeros((4, 3))) for _ in range(3)
        ]
        runner = StreamingRunner(
            n_workers=1, timeout=30.0, max_jobs_per_worker=1
        )
        results = list(runner.stream(jobs))
        assert all(r.status == "ok" for r in results)
        assert runner.telemetry.n_workers_spawned == 3
        assert len(set(runner.telemetry.worker_pids)) == 3

    def test_workers_are_reaped_after_stream(self, nap_solver, wait_until):
        jobs = [
            LearningJob(solver="nap", data=np.zeros((4, 3))) for _ in range(4)
        ]
        runner = StreamingRunner(n_workers=2, timeout=30.0)
        list(runner.stream(jobs))

        def _all_dead():
            for pid in runner.telemetry.worker_pids:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    continue
                return False
            return True

        wait_until(_all_dead, timeout=10.0, message="pool workers to exit")


class TestPoolPreemption:
    def test_preemption_kills_exactly_one_worker(self, nap_solver):
        """A blown deadline costs one process; busy neighbors keep working."""
        hanging = LearningJob(
            solver="nap",
            data=np.zeros((4, 3)),
            config={"duration": 60.0},
            job_id="hang",
        )
        fast = [
            LearningJob(
                solver="nap",
                data=np.zeros((4, 3)),
                config={"duration": 0.05},
                job_id=f"fast-{i}",
            )
            for i in range(3)
        ]
        runner = StreamingRunner(n_workers=2, timeout=8.0)
        results = {r.job_id: r for r in runner.stream([hanging] + fast)}
        assert results["hang"].status == "preempted"
        assert all(results[f"fast-{i}"].status == "ok" for i in range(3))
        assert runner.telemetry.n_killed == 1
        assert len(runner.telemetry.killed_pids) == 1
        # The killed pid is a real pool worker, and at least one other worker
        # survived the kill to finish the fast jobs.
        assert set(runner.telemetry.killed_pids) < set(
            runner.telemetry.worker_pids
        )


class TestSoftDeadline:
    def test_soft_preemption_spares_the_worker(self, iter_backend):
        """The soft tier stops the solve at an iteration boundary and the
        worker process survives to run the next job."""
        slow = LearningJob(
            solver="iterhooks",
            data=np.zeros((4, 3)),
            config={"n_iterations": 200, "iteration_seconds": 0.05},
            job_id="slow",
        )
        quick = LearningJob(
            solver="iterhooks",
            data=np.zeros((4, 3)),
            config={"n_iterations": 1, "iteration_seconds": 0.0},
            job_id="quick",
        )
        runner = StreamingRunner(n_workers=1, timeout=30.0, soft_timeout=0.4)
        results = {r.job_id: r for r in runner.stream([slow, quick])}
        assert results["slow"].status == "preempted"
        assert "soft deadline" in results["slow"].error
        assert results["quick"].status == "ok"
        telemetry = runner.telemetry
        assert telemetry.n_soft_preempted == 1
        assert telemetry.n_killed == 0  # nothing was SIGKILLed
        assert telemetry.n_requeued == 0  # soft stops are final
        # One process served both the preempted and the following job.
        assert telemetry.n_workers_spawned == 1
        assert len(set(telemetry.worker_pids)) == 1

    def test_soft_preemption_summary_counter(self, iter_backend):
        job = LearningJob(
            solver="iterhooks",
            data=np.zeros((4, 3)),
            config={"n_iterations": 200, "iteration_seconds": 0.05},
        )
        runner = StreamingRunner(n_workers=1, timeout=30.0, soft_timeout=0.3)
        list(runner.stream([job]))
        summary = runner.telemetry.preemption_summary()
        assert summary["n_soft_preempted"] == 1.0
        assert summary["n_killed"] == 0.0

    def test_inline_runner_honors_soft_timeout(self, iter_backend):
        """n_workers=1 with no hard timeout runs inline — the soft tier must
        behave identically there (same hook, same final preempted record)."""
        job = LearningJob(
            solver="iterhooks",
            data=np.zeros((4, 3)),
            config={"n_iterations": 200, "iteration_seconds": 0.05},
        )
        runner = StreamingRunner(n_workers=1, soft_timeout=0.3)
        results = list(runner.stream([job]))
        assert results[0].status == "preempted"
        assert "soft deadline" in results[0].error
        assert runner.telemetry.n_soft_preempted == 1
        assert runner.telemetry.n_workers_spawned == 0  # truly inline

    def test_hard_tier_still_fires_for_uncooperative_solver(self, nap_solver):
        """A solver that never calls its hooks blows through the soft tier;
        the SIGKILL tier remains the backstop."""
        job = LearningJob(
            solver="nap", data=np.zeros((4, 3)), config={"duration": 60.0}
        )
        runner = StreamingRunner(n_workers=1, timeout=1.0, soft_timeout=0.3)
        results = list(runner.stream(job for job in [job]))
        assert results[0].status == "preempted"
        assert runner.telemetry.n_killed == 1
        assert runner.telemetry.n_soft_preempted == 0

    def test_soft_deadline_exceeded_is_exported(self):
        assert issubclass(SoftDeadlineExceeded, RuntimeError)


class TestRequeueAccounting:
    def test_queue_wait_spans_tile_the_job_span(self, nap_solver, tmp_path):
        """Regression for the requeue race: the requeued attempt's wait must
        start at the kill (requeue moment), every attempt must be visible as
        a ``job_attempt`` span, and all children must sit inside the job span
        — certified orphan-free by ``repro-obs check``."""
        from repro.obs import NDJSONFileSink, Tracer
        from repro.obs.cli import main as obs_main

        trace_path = tmp_path / "trace.ndjson"
        tracer = Tracer(sink=NDJSONFileSink(trace_path))
        job = LearningJob(
            solver="nap",
            data=np.zeros((4, 3)),
            config={"duration": 60.0},
            job_id="requeued",
        )
        runner = StreamingRunner(
            n_workers=1,
            timeout=0.8,
            preempt_policy="requeue",
            preempt_retries=1,
            tracer=tracer,
        )
        results = list(runner.stream([job]))
        tracer.close()
        assert results[0].status == "preempted"
        assert runner.telemetry.n_requeued == 1
        assert runner.telemetry.n_killed == 2  # initial attempt + 1 requeue

        spans = [
            event
            for event in map(json.loads, trace_path.read_text().splitlines())
            if event["event"] == "span"
        ]
        by_name: dict[str, list[dict]] = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        (job_span,) = by_name["job"]

        # One queue_wait per attempt: attempt 0 recorded at submit, attempt 1
        # recorded at the requeue dispatch.
        waits = sorted(
            by_name["queue_wait"], key=lambda s: s["attributes"]["attempt"]
        )
        assert [w["attributes"]["attempt"] for w in waits] == [0, 1]
        # Each killed attempt is a job_attempt child with status preempted.
        attempts = by_name["job_attempt"]
        assert len(attempts) == 2
        assert all(a["status"] == "preempted" for a in attempts)

        # Tiling: every accounting child lies inside the job span, and the
        # requeued wait starts where its killed attempt ended (the race put
        # the reset *after* sweeping other workers, inflating the wait).
        eps = 0.05
        job_start, job_end = job_span["start"], job_span["start"] + job_span["duration"]
        for child in waits + attempts:
            assert child["parent_id"] == job_span["span_id"]
            assert child["start"] >= job_start - eps
            assert child["start"] + child["duration"] <= job_end + eps
        first_attempt = min(attempts, key=lambda a: a["start"])
        requeue_wait = waits[1]
        attempt_end = first_attempt["start"] + first_attempt["duration"]
        assert abs(requeue_wait["start"] - attempt_end) < 0.5
        # The wait must not swallow the killed attempt's runtime (~0.8s).
        assert requeue_wait["duration"] < 0.6

        assert (
            obs_main(
                [
                    "check",
                    str(trace_path),
                    "--require-span",
                    "job",
                    "--require-span",
                    "queue_wait",
                    "--require-span",
                    "job_attempt",
                ]
            )
            == 0
        )
