"""Smoke tests exercising the examples end-to-end (scaled down for speed).

The examples are the library's front door; importing them as modules and
running their parameterized ``main`` keeps them from silently rotting when the
API underneath moves.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.core.least import LEASTConfig

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_flow(capsys):
    quickstart = _load_example("quickstart")
    outcome = quickstart.main(
        n_nodes=12,
        n_samples=150,
        config=LEASTConfig(
            keep_history=True,
            track_h=True,
            max_outer_iterations=4,
            max_inner_iterations=100,
        ),
    )
    captured = capsys.readouterr().out
    assert "ground truth:" in captured
    assert "structure recovery:" in captured
    assert 0.0 <= outcome["f1"] <= 1.0
    assert outcome["shd"] >= 0
    assert outcome["n_edges"] >= 0


def test_batch_serving_flow(capsys):
    batch_serving = _load_example("batch_serving")
    outcome = batch_serving.main(n_jobs=3, n_nodes=10, n_workers=1, n_windows=2)
    captured = capsys.readouterr().out
    assert "cache hits" in captured
    assert outcome["batch"]["n_ok"] == 3
    assert outcome["rerun"]["n_cache_hits"] == 3
    assert outcome["relearn"]["n_windows"] == 2.0
    assert outcome["relearn"]["n_warm_windows"] == 1.0
    assert outcome["streaming"]["n_streamed"] == 3
    assert "streamed job-000" in captured


@pytest.mark.parametrize("name", ["quickstart", "batch_serving"])
def test_examples_are_importable(name):
    module = _load_example(name)
    assert callable(module.main)
