"""Failure paths of sharded execution on the streaming engine.

A block job that hangs is preempted (SIGKILL at the deadline), or requeued
first under the ``"requeue"`` policy; a block whose solver raises fails.  In
every case the stitcher must still emit a DAG from the surviving blocks and
the gap (which blocks, which owned nodes) must be recorded in the run report.
These tests run the real engine with worker processes, so they are written to
pass under both ``fork`` and ``spawn`` start methods (module-level solver
classes, picklable configs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.least import LEASTConfig, LEASTResult
from repro.graph.dag import is_dag
from repro.serve.job import JobResult, register_solver, unregister_solver
from repro.serve.scheduler import RelearnScheduler
from repro.shard.executor import ShardExecutor, ShardResult
from repro.shard.planner import ShardBlock, ShardPlan
from repro.shard.stitcher import StitchedGraph, Stitcher

# Concurrency suite: abort with tracebacks instead of hanging CI on deadlock.
pytestmark = pytest.mark.timeout(120)

#: Deadline generous enough that a spawn-started worker can import and solve
#: the instant blocks, yet short against the hanging solver's sleep.
DEADLINE = 3.0


@dataclass(frozen=True)
class _SizeHangConfig:
    """Config of the size-triggered hanging solver (picklable for spawn)."""

    hang_at_least: int = 10_000
    duration: float = 60.0


class _SizeHangSolver:
    """Hangs on blocks with >= ``hang_at_least`` columns, else solves a chain."""

    def __init__(self, config: _SizeHangConfig):
        self.config = config

    def fit(self, data, seed=None):
        """Return a chain graph instantly, or sleep far past any deadline."""
        d = data.shape[1]
        if d >= self.config.hang_at_least:
            time.sleep(self.config.duration)
        weights = np.zeros((d, d))
        for i in range(d - 1):
            weights[i, i + 1] = 1.0
        return LEASTResult(
            weights=weights, constraint_value=0.0, converged=True, n_outer_iterations=1
        )


@dataclass(frozen=True)
class _SizeBoomConfig:
    """Config of the size-triggered crashing solver."""

    boom_at_least: int = 10_000


class _SizeBoomSolver:
    """Raises on blocks with >= ``boom_at_least`` columns, else solves a chain."""

    def __init__(self, config: _SizeBoomConfig):
        self.config = config

    def fit(self, data, seed=None):
        """Return a chain graph, or raise to exercise the failed path."""
        d = data.shape[1]
        if d >= self.config.boom_at_least:
            raise ValueError("block solver exploded")
        weights = np.zeros((d, d))
        for i in range(d - 1):
            weights[i, i + 1] = 1.0
        return LEASTResult(
            weights=weights, constraint_value=0.0, converged=True, n_outer_iterations=1
        )


@pytest.fixture()
def hang_solver():
    """Register the hanging solver for the duration of one test."""
    register_solver("shard-hang", _SizeHangSolver, _SizeHangConfig, overwrite=True)
    yield "shard-hang"
    unregister_solver("shard-hang")


@pytest.fixture()
def boom_solver():
    """Register the crashing solver for the duration of one test."""
    register_solver("shard-boom", _SizeBoomSolver, _SizeBoomConfig, overwrite=True)
    yield "shard-boom"
    unregister_solver("shard-boom")


def _two_block_plan() -> tuple[np.ndarray, ShardPlan]:
    """An 11-node problem with one 8-node block and one 3-node block."""
    rng = np.random.default_rng(42)
    data = rng.normal(size=(30, 11))
    plan = ShardPlan(
        n_nodes=11,
        blocks=[
            ShardBlock(index=0, core=tuple(range(8))),
            ShardBlock(index=1, core=(8, 9, 10)),
        ],
    )
    return data, plan


def test_preempted_block_reported_and_survivors_stitch_to_dag(hang_solver):
    data, plan = _two_block_plan()
    executor = ShardExecutor(
        solver=hang_solver,
        config={"hang_at_least": 8, "duration": 60.0},
        n_workers=2,
        timeout=DEADLINE,
        preempt_policy="fail",
    )
    result = executor.run(data, plan, seed=0)

    assert result.n_blocks_preempted == 1
    assert result.n_blocks_ok == 1
    assert not result.complete
    # The surviving 3-node block contributes its chain; the stitched graph is
    # a DAG restricted to the survivor's nodes.
    assert is_dag(result.weights)
    assert result.weights[8, 9] == 1.0 and result.weights[9, 10] == 1.0
    assert np.count_nonzero(result.weights[:8, :]) == 0
    assert np.count_nonzero(result.weights[:, :8]) == 0
    # The gap is recorded: the preempted block's owned nodes are missing.
    assert result.missing_nodes == list(range(8))
    report = result.report()
    assert report["gaps"]["n_blocks_preempted"] == 1
    assert report["gaps"]["n_missing_nodes"] == 8
    assert report["gaps"]["missing_nodes"] == list(range(8))
    assert report["blocks"][0]["status"] == "preempted"
    assert report["blocks"][1]["status"] == "ok"
    assert result.preemption["n_killed"] >= 1.0


def test_requeue_policy_grants_fresh_attempts_before_reporting(hang_solver):
    data, plan = _two_block_plan()
    executor = ShardExecutor(
        solver=hang_solver,
        config={"hang_at_least": 8, "duration": 60.0},
        n_workers=2,
        timeout=DEADLINE,
        preempt_policy="requeue",
        preempt_retries=1,
    )
    result = executor.run(data, plan, seed=0)

    # The hanging block was requeued once, hung again, and was then reported.
    assert result.preemption["n_requeued"] == 1.0
    assert result.n_blocks_preempted == 1
    assert result.n_blocks_ok == 1
    assert is_dag(result.weights)
    assert result.missing_nodes == list(range(8))


def test_failed_block_recorded_as_gap(boom_solver):
    data, plan = _two_block_plan()
    executor = ShardExecutor(
        solver=boom_solver,
        config={"boom_at_least": 8},
        n_workers=2,
        timeout=DEADLINE,
    )
    result = executor.run(data, plan, seed=0)

    assert result.n_blocks_failed == 1
    assert result.n_blocks_ok == 1
    assert is_dag(result.weights)
    assert result.missing_nodes == list(range(8))
    failed = result.block_results[0]
    assert failed.status == "failed"
    assert "exploded" in (failed.error or "")


def test_all_blocks_preempted_yields_empty_dag(hang_solver):
    data, plan = _two_block_plan()
    executor = ShardExecutor(
        solver=hang_solver,
        config={"hang_at_least": 1, "duration": 60.0},  # every block hangs
        n_workers=2,
        timeout=DEADLINE,
    )
    result = executor.run(data, plan, seed=0)

    assert result.n_blocks_ok == 0
    assert result.n_blocks_preempted == 2
    assert np.count_nonzero(result.weights) == 0
    assert is_dag(result.weights)
    assert result.missing_nodes == list(range(11))


def test_scheduler_shards_large_windows_and_stitches_a_dag(er2_problem):
    data = er2_problem["data"]
    scheduler = RelearnScheduler(
        LEASTConfig(max_outer_iterations=2, max_inner_iterations=30),
        shard_vocabulary_threshold=10,
    )
    names = [f"n{i}" for i in range(data.shape[1])]
    result = scheduler.step(data, names, seed=3)

    stats = scheduler.history[-1]
    assert stats.sharded
    assert stats.n_blocks >= 1
    assert stats.n_blocks_unsolved == 0
    assert not stats.preempted
    assert is_dag(result.weights)
    assert scheduler.state is not None  # stitched result seeds future windows
    assert scheduler.last_shard_result is not None
    assert scheduler.last_shard_result.complete

    # A small vocabulary stays monolithic (and can warm-start off the stitch).
    scheduler.step(data[:, :6], names[:6], seed=3)
    assert not scheduler.history[-1].sharded
    assert scheduler.history[-1].warm_started


def test_scheduler_degrades_window_when_no_block_survives(monkeypatch, er2_problem):
    data = er2_problem["data"]
    d = data.shape[1]
    plan = ShardPlan(n_nodes=d, blocks=[ShardBlock(index=0, core=tuple(range(d)))])

    def _all_preempted(self, run_data, run_plan, seed=0):
        from repro.serve.job import JobResult

        return ShardResult(
            weights=np.zeros((d, d)),
            plan=run_plan,
            stitched=Stitcher().stitch([], d),
            block_results=[
                JobResult(job_id="block-000", solver="least", status="preempted")
            ],
            missing_nodes=list(range(d)),
        )

    monkeypatch.setattr(ShardExecutor, "run", _all_preempted)
    scheduler = RelearnScheduler(
        LEASTConfig(max_outer_iterations=2, max_inner_iterations=30),
        shard_vocabulary_threshold=1,
        shard_planner=_PlanStub(plan),
    )
    result = scheduler.step(data, [f"n{i}" for i in range(d)], seed=0)

    stats = scheduler.history[-1]
    assert stats.sharded and stats.preempted
    assert stats.n_blocks == 1 and stats.n_blocks_unsolved == 1
    assert not result.converged
    assert np.count_nonzero(result.weights) == 0
    assert scheduler.state is None  # carried state untouched by the lost window


class _PlanStub:
    """A planner stand-in returning a fixed plan (used by the degrade test)."""

    def __init__(self, plan: ShardPlan):
        self._plan = plan

    def plan(self, data) -> ShardPlan:
        """Return the canned plan regardless of the data."""
        return self._plan


def test_stitched_graph_type_roundtrip(hang_solver):
    """A StitchedGraph carries the weights the executor exposes."""
    data, plan = _two_block_plan()
    executor = ShardExecutor(
        solver=hang_solver,
        config={"hang_at_least": 10_000},  # nothing hangs
        n_workers=1,
    )
    result = executor.run(data, plan, seed=0)
    assert isinstance(result.stitched, StitchedGraph)
    assert result.complete
    assert result.stitched.weights is result.weights
    assert result.stitched.report.n_blocks == 2


def test_sharded_window_reproducible_with_generator_seed(er2_problem):
    """A generator seed must reproduce sharded windows, not silently unseed them."""
    data = er2_problem["data"]
    names = [f"n{i}" for i in range(data.shape[1])]
    weights = []
    for _ in range(2):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=2, max_inner_iterations=30),
            shard_vocabulary_threshold=10,
        )
        result = scheduler.step(data, names, seed=np.random.default_rng(123))
        weights.append(result.weights)
    assert np.array_equal(weights[0], weights[1])


def test_scheduler_splits_window_deadline_across_blocks(monkeypatch, er2_problem):
    """window_deadline bounds the WINDOW: blocks share it, not multiply it."""
    data = er2_problem["data"]
    d = data.shape[1]
    blocks = [
        ShardBlock(index=0, core=tuple(range(0, 7))),
        ShardBlock(index=1, core=tuple(range(7, 14))),
        ShardBlock(index=2, core=tuple(range(14, d))),
    ]
    plan = ShardPlan(n_nodes=d, blocks=blocks)
    seen = {}

    def _capture(self, run_data, run_plan, seed=0):
        seen["timeout"] = self.timeout
        seen["edge_threshold"] = self.edge_threshold
        return ShardResult(
            weights=np.zeros((d, d)),
            plan=run_plan,
            stitched=Stitcher().stitch([], d),
            block_results=[
                JobResult(job_id=f"block-{b.index:03d}", solver="least", status="ok")
                for b in run_plan.blocks
            ],
        )

    monkeypatch.setattr(ShardExecutor, "run", _capture)
    scheduler = RelearnScheduler(
        LEASTConfig(max_outer_iterations=2, max_inner_iterations=30),
        shard_vocabulary_threshold=1,
        shard_planner=_PlanStub(plan),
        window_deadline=9.0,
        shard_edge_threshold=0.25,
    )
    scheduler.step(data, [f"n{i}" for i in range(d)], seed=0)
    assert seen["timeout"] == pytest.approx(3.0)  # 9s window / 3 serial blocks
    assert seen["edge_threshold"] == 0.25
