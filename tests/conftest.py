"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator shared by tests that need ad-hoc randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dag() -> np.ndarray:
    """A fixed 4-node weighted DAG: 0 -> 1 -> 3, 0 -> 2 -> 3."""
    weights = np.zeros((4, 4))
    weights[0, 1] = 1.5
    weights[1, 3] = -0.8
    weights[0, 2] = 0.7
    weights[2, 3] = 1.1
    return weights


@pytest.fixture
def cyclic_matrix() -> np.ndarray:
    """A 3-node matrix with a 2-cycle (0 <-> 1) and an extra edge 1 -> 2."""
    matrix = np.zeros((3, 3))
    matrix[0, 1] = 1.0
    matrix[1, 0] = 0.5
    matrix[1, 2] = 2.0
    return matrix


@pytest.fixture(scope="session")
def er2_problem() -> dict:
    """A 20-node ER-2 structure-learning problem reused across slow tests."""
    truth = random_dag("ER-2", 20, seed=7)
    data = simulate_linear_sem(truth, 400, noise_type="gaussian", seed=8)
    return {"truth": truth, "data": data}
