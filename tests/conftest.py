"""Shared pytest fixtures: data factories, polling sync, per-test deadlines.

Concurrency-test hygiene lives here so every suite gets it for free:

* ``wait_until`` — event-style polling that replaces fixed ``time.sleep``
  synchronization (the classic source of both flakes and wasted seconds);
* an autouse **per-test deadline** in the spirit of ``pytest-timeout`` (which
  this environment doesn't ship): a ``faulthandler`` watchdog dumps every
  thread's traceback and aborts the run if a single test exceeds the budget,
  so a deadlocked worker-pool test fails loudly in CI instead of hanging the
  job forever.  Configure with ``--timeout``, the ``REPRO_TEST_TIMEOUT``
  environment variable, or per-test via ``@pytest.mark.timeout(seconds)``;
  ``0`` disables.
"""

from __future__ import annotations

import faulthandler
import os
import time
from typing import Any, Callable

import numpy as np
import pytest

from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem

_DEFAULT_TEST_TIMEOUT = 300.0


def pytest_addoption(parser: pytest.Parser) -> None:
    """Register ``--timeout`` (seconds per test; 0 disables the watchdog)."""
    parser.addoption(
        "--timeout",
        type=float,
        default=None,
        help=(
            "per-test deadline in seconds enforced by a faulthandler "
            "watchdog (default: $REPRO_TEST_TIMEOUT or "
            f"{_DEFAULT_TEST_TIMEOUT:g}; 0 disables)"
        ),
    )


def pytest_configure(config: pytest.Config) -> None:
    """Register the ``timeout`` marker used to override the global deadline."""
    config.addinivalue_line(
        "markers",
        "timeout(seconds): override the per-test watchdog deadline "
        "(0 disables it for that test)",
    )


def _test_deadline(request: pytest.FixtureRequest) -> float:
    """Resolve the deadline: marker > --timeout > env var > default."""
    marker = request.node.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    option = request.config.getoption("--timeout")
    if option is not None:
        return float(option)
    return float(os.environ.get("REPRO_TEST_TIMEOUT", _DEFAULT_TEST_TIMEOUT))


@pytest.fixture(autouse=True)
def _per_test_deadline(request: pytest.FixtureRequest):
    """Abort the run (with all-thread tracebacks) if one test hangs.

    ``exit=True`` is deliberate: a test that blew a 300s budget is deadlocked
    (a worker that never sent its result, a poll loop that never drains), and
    no later test in the process can be trusted after ``os._exit`` anyway.
    The traceback dump names the stuck frame, which is the actual debugging
    artifact CI needs.
    """
    seconds = _test_deadline(request)
    if seconds <= 0:
        yield
        return
    faulthandler.dump_traceback_later(seconds, exit=True)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()


@pytest.fixture
def wait_until() -> Callable[..., Any]:
    """Poll ``predicate`` until truthy; ``pytest.fail`` past the timeout.

    The returned value of the predicate is passed through, so tests can both
    synchronize and capture (``result = wait_until(lambda: queue.peek())``).
    Use this instead of fixed ``time.sleep`` synchronization: it is
    simultaneously faster on the happy path and more tolerant of slow CI.
    """

    def _wait_until(
        predicate: Callable[[], Any],
        timeout: float = 30.0,
        interval: float = 0.01,
        message: str = "condition to become true",
    ) -> Any:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            value = predicate()
            if value:
                return value
            time.sleep(interval)
        pytest.fail(f"timed out after {timeout:g}s waiting for {message}")

    return _wait_until


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded generator shared by tests that need ad-hoc randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dag() -> np.ndarray:
    """A fixed 4-node weighted DAG: 0 -> 1 -> 3, 0 -> 2 -> 3."""
    weights = np.zeros((4, 4))
    weights[0, 1] = 1.5
    weights[1, 3] = -0.8
    weights[0, 2] = 0.7
    weights[2, 3] = 1.1
    return weights


@pytest.fixture
def cyclic_matrix() -> np.ndarray:
    """A 3-node matrix with a 2-cycle (0 <-> 1) and an extra edge 1 -> 2."""
    matrix = np.zeros((3, 3))
    matrix[0, 1] = 1.0
    matrix[1, 0] = 0.5
    matrix[1, 2] = 2.0
    return matrix


@pytest.fixture(scope="session")
def er2_problem() -> dict:
    """A 20-node ER-2 structure-learning problem reused across slow tests."""
    truth = random_dag("ER-2", 20, seed=7)
    data = simulate_linear_sem(truth, 400, noise_type="gaussian", seed=8)
    return {"truth": truth, "data": data}
