"""Tests for the sparse LEAST-SP solver."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.least_sparse import (
    SparseLEAST,
    SparseLEASTConfig,
    correlation_support,
    random_sparse_glorot,
)
from repro.core.model_selection import grid_search_threshold
from repro.exceptions import ValidationError
from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem


FAST = SparseLEASTConfig(
    max_outer_iterations=5,
    max_inner_iterations=150,
    tolerance=1e-3,
    batch_size=None,
    threshold=1e-3,
)


class TestRandomSparseGlorot:
    def test_density_and_shape(self, rng):
        matrix = random_sparse_glorot(100, 0.01, rng)
        assert matrix.shape == (100, 100)
        assert matrix.nnz >= 8  # respects the minimum edge floor

    def test_no_diagonal_entries(self, rng):
        matrix = random_sparse_glorot(50, 0.1, rng).tocoo()
        assert np.all(matrix.row != matrix.col)

    def test_tiny_matrix(self, rng):
        assert random_sparse_glorot(1, 0.5, rng).nnz == 0

    def test_invalid_density_rejected(self, rng):
        with pytest.raises(ValidationError):
            random_sparse_glorot(10, 1.5, rng)


class TestCorrelationSupport:
    def test_includes_strongly_correlated_pairs(self):
        truth = random_dag("ER-2", 30, seed=0)
        data = simulate_linear_sem(truth, 500, seed=1)
        support = correlation_support(data, max_parents=8)
        dense = np.abs(support.toarray()) > 0
        rows, cols = np.nonzero(truth)
        covered = sum(dense[i, j] or dense[j, i] for i, j in zip(rows, cols))
        assert covered / len(rows) > 0.8

    def test_max_parents_bounds_support_size(self):
        data = np.random.default_rng(0).normal(size=(100, 20))
        support = correlation_support(data, max_parents=3)
        assert support.nnz <= 3 * 20

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValidationError):
            correlation_support(np.zeros(5), max_parents=2)
        with pytest.raises(ValidationError):
            correlation_support(np.zeros((5, 5)), max_parents=0)


class TestSparseLEAST:
    def test_returns_sparse_weights(self, er2_problem):
        result = SparseLEAST(FAST).fit(er2_problem["data"], seed=0)
        assert sp.issparse(result.weights)
        assert result.weights.shape == er2_problem["truth"].shape

    def test_constraint_trace_is_recorded(self, er2_problem):
        result = SparseLEAST(FAST).fit(er2_problem["data"], seed=0)
        assert len(result.log) == result.n_outer_iterations
        assert np.all(np.isfinite(result.log.column("delta")))
        assert result.elapsed_seconds > 0

    def test_support_never_grows_without_screening(self, er2_problem):
        config = SparseLEASTConfig(
            max_outer_iterations=3,
            max_inner_iterations=100,
            init_density=0.02,
            batch_size=None,
            tolerance=1e-6,
        )
        d = er2_problem["truth"].shape[0]
        initial_nnz = max(8, int(round(0.02 * d * d)))
        result = SparseLEAST(config).fit(er2_problem["data"], seed=0)
        assert result.weights.nnz <= initial_nnz

    def test_accuracy_with_correlation_screening(self):
        truth = random_dag("ER-2", 40, seed=3)
        data = simulate_linear_sem(truth, 500, seed=4)
        support = correlation_support(data, max_parents=8, rng=np.random.default_rng(5))
        config = SparseLEASTConfig(
            max_outer_iterations=8,
            max_inner_iterations=300,
            tolerance=1e-3,
            batch_size=None,
        )
        result = SparseLEAST(config).fit(data, seed=5, initial_support=support)
        search = grid_search_threshold(result.weights.toarray(), truth)
        assert search.best_f1 >= 0.6

    def test_initial_support_shape_validated(self, er2_problem):
        with pytest.raises(ValidationError):
            SparseLEAST(FAST).fit(
                er2_problem["data"], initial_support=sp.eye(3, format="csr")
            )

    def test_batching_runs(self, er2_problem):
        config = SparseLEASTConfig(
            max_outer_iterations=3, max_inner_iterations=100, batch_size=64, tolerance=1e-6
        )
        result = SparseLEAST(config).fit(er2_problem["data"], seed=0)
        assert np.all(np.isfinite(result.weights.data))

    def test_reproducible_given_seed(self, er2_problem):
        first = SparseLEAST(FAST).fit(er2_problem["data"], seed=9)
        second = SparseLEAST(FAST).fit(er2_problem["data"], seed=9)
        np.testing.assert_allclose(first.weights.toarray(), second.weights.toarray())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            SparseLEASTConfig(alpha=-0.5)
        with pytest.raises(ValidationError):
            SparseLEASTConfig(threshold=-1.0)
