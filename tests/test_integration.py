"""Integration tests exercising several subsystems together."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    LEAST,
    LEASTConfig,
    NOTEARS,
    NOTEARSConfig,
    evaluate_structure,
    random_dag,
    simulate_linear_sem,
)
from repro.bn import conditional_distribution, fit_linear_gaussian
from repro.core import SparseLEAST, SparseLEASTConfig, correlation_support, grid_search_epsilon_tau
from repro.core.thresholding import threshold_to_dag
from repro.datasets import load_sachs, make_movielens
from repro.graph.dag import is_dag
from repro.metrics import auc_roc, pearson_correlation, trace_correlation
from repro.monitoring import BookingSimulator, Incident, MonitoringPipeline
from repro.recommend import ExplainableRecommender, hub_analysis, top_edges


class TestLearnThenModel:
    """Structure learning feeding the BN layer (learn -> fit -> infer)."""

    def test_end_to_end_on_er2(self, er2_problem):
        config = LEASTConfig(max_outer_iterations=8, max_inner_iterations=300, keep_history=True)
        result = LEAST(config).fit(er2_problem["data"], seed=0)
        pruned, _ = threshold_to_dag(result.weights, initial_threshold=0.1)
        assert is_dag(pruned)
        network = fit_linear_gaussian(pruned, er2_problem["data"])
        log_likelihood = network.log_likelihood(er2_problem["data"])
        empty = fit_linear_gaussian(np.zeros_like(pruned), er2_problem["data"])
        assert log_likelihood >= empty.log_likelihood(er2_problem["data"])
        # Conditional inference runs on the learned model.
        posterior = conditional_distribution(network, [0], {1: 1.0})
        assert np.isfinite(posterior.mean).all()

    def test_least_and_notears_agree_on_structure_quality(self, er2_problem):
        least_result = LEAST(
            LEASTConfig(max_outer_iterations=10, max_inner_iterations=400, keep_history=True, track_h=True)
        ).fit(er2_problem["data"], seed=1)
        notears_result = NOTEARS(
            NOTEARSConfig(max_outer_iterations=10, max_inner_iterations=60)
        ).fit(er2_problem["data"], seed=1)
        least_f1 = grid_search_epsilon_tau(least_result, er2_problem["truth"]).best_f1
        notears_f1 = evaluate_structure(
            np.where(np.abs(notears_result.weights) > 0.3, notears_result.weights, 0.0),
            er2_problem["truth"],
        ).f1
        # Both should clearly beat chance; LEAST should be within reach of NOTEARS.
        assert notears_f1 >= 0.6
        assert least_f1 >= 0.6

    def test_delta_and_h_traces_are_correlated(self, er2_problem):
        """Reproduces the consistency claim behind Fig. 4 row 3 at small scale."""
        config = LEASTConfig(
            max_outer_iterations=10, max_inner_iterations=200, track_h=True, tolerance=1e-6
        )
        result = LEAST(config).fit(er2_problem["data"], seed=2)
        if len(result.log) >= 3:
            assert trace_correlation(result.log) > 0.5


class TestSachsWorkflow:
    def test_gene_benchmark_runs_and_beats_chance(self):
        dataset = load_sachs(n_samples=800, seed=0)
        config = LEASTConfig(max_outer_iterations=10, max_inner_iterations=400, keep_history=True)
        result = LEAST(config).fit(dataset.data, seed=1)
        auc = auc_roc(result.weights, dataset.truth)
        assert auc > 0.6  # the paper reports ~0.9; well above 0.5 is required here


class TestSparseWorkflow:
    def test_sparse_solver_with_screening_on_larger_graph(self):
        truth = random_dag("ER-2", 80, seed=10)
        data = simulate_linear_sem(truth, 600, seed=11)
        support = correlation_support(data, max_parents=6, rng=np.random.default_rng(12))
        config = SparseLEASTConfig(
            max_outer_iterations=6, max_inner_iterations=250, batch_size=None, tolerance=1e-3
        )
        result = SparseLEAST(config).fit(data, seed=13, initial_support=support)
        assert result.weights.nnz > 0
        metrics = evaluate_structure(
            np.where(np.abs(result.weights.toarray()) > 0.2, 1.0, 0.0), truth
        )
        assert metrics.f1 > 0.3


class TestMonitoringWorkflow:
    def test_incident_is_detected_and_attributed(self):
        simulator = BookingSimulator(seed=20)
        simulator.add_incident(
            Incident(
                "airline",
                "AC",
                "step3_reserve",
                0.6,
                start=3600,
                end=7200,
                category="airline",
                description="Air Canada maintenance",
            )
        )
        pipeline = MonitoringPipeline(simulator, window_seconds=3600.0)
        reports = pipeline.run(3, seed=21)
        incident_report = reports[1]
        assert incident_report.n_anomalies >= 1
        assert any(finding.is_true_positive for finding in incident_report.findings)
        summary = pipeline.detection_summary()
        assert summary["incident_recall"] == 1.0

    def test_quiet_period_produces_few_or_no_reports(self):
        simulator = BookingSimulator(seed=30)
        pipeline = MonitoringPipeline(simulator, window_seconds=1800.0)
        reports = pipeline.run(3, seed=31)
        total_reports = sum(r.n_anomalies for r in reports)
        assert total_reports <= 2  # no incidents were injected

    def test_pipeline_runs_windows_on_the_sparse_backend(self):
        """MonitoringPipeline drives least_sparse windows (auto-escalated)."""
        import scipy.sparse as sp

        simulator = BookingSimulator(seed=32)
        pipeline = MonitoringPipeline(
            simulator,
            window_seconds=1800.0,
            least_config=LEASTConfig(
                max_outer_iterations=2,
                max_inner_iterations=40,
                l1_penalty=0.02,
                tolerance=1e-3,
            ),
            sparse_vocabulary_threshold=1,  # every window escalates to CSR
        )
        reports = pipeline.run(3, seed=33)
        assert len(reports) == 3
        stats = pipeline.window_stats
        assert stats and all(s.solver == "least_sparse" for s in stats)
        assert sp.issparse(pipeline.scheduler.state.weights)
        assert stats[1].warm_started  # CSR state seeded the next CSR window

    def test_pipeline_runs_windows_on_the_fast_backend(self):
        """MonitoringPipeline forwards prefer_fast to the scheduler."""
        simulator = BookingSimulator(seed=34)
        pipeline = MonitoringPipeline(
            simulator,
            window_seconds=1800.0,
            least_config=LEASTConfig(
                max_outer_iterations=2,
                max_inner_iterations=40,
                l1_penalty=0.02,
                tolerance=1e-3,
            ),
            prefer_fast=True,
        )
        reports = pipeline.run(3, seed=35)
        assert len(reports) == 3
        stats = pipeline.window_stats
        assert stats and all(s.solver == "least_fast" for s in stats)
        assert stats[1].warm_started  # dense state flows between fast windows


class TestRecommendationWorkflow:
    def test_movielens_pipeline_learns_planted_relations(self):
        dataset = make_movielens(n_movies=50, n_users=1500, n_series=8, seed=40)
        config = LEASTConfig(
            max_outer_iterations=8, max_inner_iterations=400, l1_penalty=0.02, tolerance=1e-3
        )
        result = LEAST(config).fit(dataset.centered, seed=41)
        edges = top_edges(result.weights, n=15)
        related = sum(
            1
            for source, target, _ in edges
            if dataset.relation_of(int(source), int(target)) != "unrelated"
            or dataset.relation_of(int(target), int(source)) != "unrelated"
        )
        # The planted graph covers ~5% of ordered movie pairs, so hitting a
        # planted relation by chance in a top-15 list is rare; requiring at
        # least 3 hits (20%) checks the learned edges are far above chance.
        assert related >= 3

        recommender = ExplainableRecommender(
            np.where(np.abs(result.weights) > 0.05, result.weights, 0.0),
            labels=list(dataset.movie_titles),
        )
        source_item = max(
            range(dataset.n_movies),
            key=lambda i: np.abs(np.where(np.abs(result.weights[i]) > 0.05, result.weights[i], 0)).sum(),
        )
        recommendations = recommender.recommend({source_item: 1.5}, n=5)
        assert all(np.isfinite(r.score) for r in recommendations)

    def test_blockbuster_asymmetry_is_measurable_on_planted_graph(self):
        dataset = make_movielens(n_movies=60, n_users=200, n_series=10, seed=50)
        summary = hub_analysis(dataset.truth, dataset.blockbusters)
        assert summary["popular_in_out_ratio"] >= 1.0
