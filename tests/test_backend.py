"""Tests for repro.core.backend: the protocol, the factory, the live registry."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest
import scipy.sparse as sp

import repro.serve as serve_package
import repro.serve.job as job_module
from repro.core.backend import (
    BackendSpec,
    LEASTBackend,
    NOTEARSBackend,
    SolveResult,
    SolverBackend,
    SparseLEASTBackend,
    get_spec,
    make_solver,
    register_backend,
    solver_names,
    unregister_backend,
)
from repro.core.least import LEASTConfig
from repro.exceptions import ValidationError
from repro.serve.job import register_solver, unregister_solver

FAST = {"max_outer_iterations": 2, "max_inner_iterations": 25}


@pytest.fixture
def data() -> np.ndarray:
    rng = np.random.default_rng(11)
    x = rng.normal(size=(80, 6))
    x[:, 1] += 0.8 * x[:, 0]
    return x


class TestProtocolAndFactory:
    def test_builtin_backends_satisfy_protocol(self):
        for name in ("least", "least_sparse", "notears"):
            assert isinstance(make_solver(name), SolverBackend)

    def test_make_solver_applies_overrides(self):
        backend = make_solver("least", **FAST)
        assert backend.config.max_outer_iterations == 2
        assert backend.name == "least"

    def test_make_solver_accepts_config_instance_plus_overrides(self):
        config = LEASTConfig(max_outer_iterations=9)
        backend = make_solver("least", config=config, max_inner_iterations=7)
        assert backend.config.max_outer_iterations == 9
        assert backend.config.max_inner_iterations == 7

    def test_unknown_name_and_bad_override_raise(self):
        with pytest.raises(ValidationError):
            make_solver("leest")
        with pytest.raises(ValidationError):
            make_solver("least", no_such_option=1)

    def test_dense_fit_returns_dense_solve_result(self, data):
        result = make_solver("least", **FAST).fit(data, rng=0)
        assert isinstance(result, SolveResult)
        assert not result.is_sparse
        assert result.n_edges == np.count_nonzero(result.weights)
        assert sp.issparse(result.sparse_weights())

    def test_sparse_fit_returns_csr_solve_result(self, data):
        backend = make_solver(
            "least_sparse", support="correlation", support_max_parents=3, **FAST
        )
        result = backend.fit(data, rng=0)
        assert result.is_sparse
        assert result.solver == "least_sparse"
        assert result.dense_weights().shape == (6, 6)
        assert result.telemetry["n_support_entries"] == result.weights.nnz

    def test_deadline_hooks_called_each_outer_iteration(self, data):
        calls: list[int] = []
        result = make_solver("least", **FAST).fit(
            data, rng=0, deadline_hooks=[lambda: calls.append(1)]
        )
        assert len(calls) == result.n_outer_iterations

    def test_deadline_hook_can_abort_the_solve(self, data):
        class Abort(RuntimeError):
            pass

        def bomb():
            raise Abort()

        with pytest.raises(Abort):
            make_solver("least", **FAST).fit(data, rng=0, deadline_hooks=[bomb])

    def test_notears_rejects_init_weights(self, data):
        with pytest.raises(ValidationError):
            make_solver("notears").fit(data, init_weights=np.zeros((6, 6)))

    def test_dense_backend_accepts_sparse_init(self, data):
        init = sp.csr_matrix(([0.3], ([0], [1])), shape=(6, 6))
        result = make_solver("least", **FAST).fit(data, rng=0, init_weights=init)
        assert not result.is_sparse

    def test_sparse_backend_accepts_dense_init(self, data):
        init = np.zeros((6, 6))
        init[0, 1] = 0.3
        result = make_solver("least_sparse", **FAST).fit(data, rng=0, init_weights=init)
        assert result.is_sparse


class TestSpecs:
    def test_builtin_spec_flags(self):
        assert get_spec("least").sparse is False
        assert get_spec("least_sparse").sparse is True
        assert get_spec("notears").supports_init_weights is False

    def test_backend_classes_advertise_names(self):
        assert LEASTBackend.name == "least"
        assert SparseLEASTBackend.name == "least_sparse"
        assert NOTEARSBackend.name == "notears"


@dataclass(frozen=True)
class _EchoConfig:
    value: float = 1.0


class _EchoSolver:
    """Legacy-contract solver: returns a fixed single-edge result."""

    def __init__(self, config: _EchoConfig):
        self.config = config

    def fit(self, data, seed=None):
        from repro.core.least import LEASTResult

        d = data.shape[1]
        weights = np.zeros((d, d))
        weights[0, -1] = self.config.value
        return LEASTResult(
            weights=weights, constraint_value=0.0, converged=True, n_outer_iterations=1
        )


class TestLiveRegistry:
    """SOLVER_NAMES staleness: the registry is reflected on every access."""

    def test_register_unregister_reflected_everywhere(self):
        before = solver_names()
        assert "echo" not in before
        register_solver("echo", _EchoSolver, _EchoConfig)
        try:
            assert "echo" in solver_names()
            # The legacy module constant and the package re-export are live too.
            assert "echo" in job_module.SOLVER_NAMES
            assert "echo" in serve_package.SOLVER_NAMES
        finally:
            unregister_solver("echo")
        assert solver_names() == before
        assert "echo" not in job_module.SOLVER_NAMES

    def test_cli_help_lists_live_registry(self):
        from repro.serve.cli import build_parser, build_shard_parser

        register_solver("echo", _EchoSolver, _EchoConfig)
        try:
            assert "echo" in build_parser().description
            shard_parser = build_shard_parser()
            solver_action = next(
                a for a in shard_parser._actions if a.dest == "solver"
            )
            assert "echo" in solver_action.help
        finally:
            unregister_solver("echo")

    def test_legacy_backend_fits_through_factory(self, data):
        register_solver("echo", _EchoSolver, _EchoConfig)
        try:
            result = make_solver("echo", value=2.5).fit(data)
            assert isinstance(result, SolveResult)
            assert result.weights[0, -1] == 2.5
            assert result.solver == "echo"
        finally:
            unregister_solver("echo")

    def test_duplicate_registration_requires_overwrite(self):
        register_solver("echo", _EchoSolver, _EchoConfig)
        try:
            with pytest.raises(ValidationError):
                register_solver("echo", _EchoSolver, _EchoConfig)
            register_solver("echo", _EchoSolver, _EchoConfig, overwrite=True)
        finally:
            unregister_solver("echo")

    def test_register_backend_spec_directly(self, data):
        spec = BackendSpec(
            name="least-again", backend_class=LEASTBackend, config_class=LEASTConfig
        )
        register_backend(spec)
        try:
            assert "least-again" in solver_names()
            result = make_solver("least-again", **FAST).fit(data, rng=0)
            assert isinstance(result, SolveResult)
        finally:
            unregister_backend("least-again")


class TestJobIntegration:
    def test_job_validates_against_live_registry(self, data):
        from repro.serve.job import LearningJob

        with pytest.raises(ValidationError):
            LearningJob(solver="echo", data=data)
        register_solver("echo", _EchoSolver, _EchoConfig)
        try:
            job = LearningJob(solver="echo", data=data)
            assert job.build_backend().name == "echo"
        finally:
            unregister_solver("echo")

    def test_execute_job_runs_sparse_backend(self, data):
        from repro.serve.job import LearningJob, execute_job

        result = execute_job(
            LearningJob(solver="least_sparse", data=data, config=dict(FAST))
        )
        assert result.status == "ok"
        assert sp.issparse(result.weights)
