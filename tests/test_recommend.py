"""Tests for the explainable-recommendation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.recommend.analysis import degree_profile, hub_analysis
from repro.recommend.explainable import (
    ExplainableRecommender,
    extract_subgraph,
    top_edges,
)


@pytest.fixture
def item_graph() -> np.ndarray:
    """Small item graph: 0 -> 1 (0.5), 1 -> 2 (0.4), 3 -> 2 (-0.3), 3 -> 4 (0.2)."""
    graph = np.zeros((5, 5))
    graph[0, 1] = 0.5
    graph[1, 2] = 0.4
    graph[3, 2] = -0.3
    graph[3, 4] = 0.2
    return graph


class TestTopEdges:
    def test_sorted_by_magnitude(self, item_graph):
        edges = top_edges(item_graph, n=3)
        weights = [abs(w) for *_, w in edges]
        assert weights == sorted(weights, reverse=True)
        assert edges[0][:2] == (0, 1)

    def test_labels(self, item_graph):
        labels = ["A", "B", "C", "D", "E"]
        edges = top_edges(item_graph, labels=labels, n=1)
        assert edges[0][:2] == ("A", "B")

    def test_n_must_be_positive(self, item_graph):
        with pytest.raises(ValidationError):
            top_edges(item_graph, n=0)


class TestExtractSubgraph:
    def test_radius_one_neighbourhood(self, item_graph):
        submatrix, nodes = extract_subgraph(item_graph, center=2, radius=1)
        assert nodes[0] == 2
        assert set(nodes) == {1, 2, 3}
        assert submatrix.shape == (3, 3)

    def test_radius_two_reaches_further(self, item_graph):
        _, nodes = extract_subgraph(item_graph, center=2, radius=2)
        assert set(nodes) == {0, 1, 2, 3, 4}

    def test_radius_zero_is_just_the_center(self, item_graph):
        submatrix, nodes = extract_subgraph(item_graph, center=0, radius=0)
        assert nodes == [0] and submatrix.shape == (1, 1)

    def test_invalid_center_rejected(self, item_graph):
        with pytest.raises(ValidationError):
            extract_subgraph(item_graph, center=99)


class TestRecommender:
    def test_direct_neighbour_recommended(self, item_graph):
        recommender = ExplainableRecommender(item_graph)
        recommendations = recommender.recommend({0: 1.0}, n=5)
        items = [r.item for r in recommendations]
        assert 1 in items
        top = recommendations[0]
        assert top.item == 1
        assert top.score == pytest.approx(0.5)
        assert top.path == (0, 1)

    def test_two_hop_propagation(self, item_graph):
        recommender = ExplainableRecommender(item_graph, max_hops=2)
        recommendations = recommender.recommend({0: 1.0}, n=5)
        by_item = {r.item: r for r in recommendations}
        assert 2 in by_item
        assert by_item[2].score == pytest.approx(0.5 * 0.4)
        assert by_item[2].path == (0, 1, 2)

    def test_negative_rating_flips_sign(self, item_graph):
        recommender = ExplainableRecommender(item_graph)
        recommendations = recommender.recommend({0: -2.0}, n=5)
        by_item = {r.item: r for r in recommendations}
        assert by_item[1].score == pytest.approx(-1.0)

    def test_observed_items_excluded_by_default(self, item_graph):
        recommender = ExplainableRecommender(item_graph)
        recommendations = recommender.recommend({0: 1.0, 1: 1.0}, n=5)
        assert all(r.item not in (0, 1) for r in recommendations)

    def test_explanation_uses_labels(self, item_graph):
        labels = ["Alpha", "Beta", "Gamma", "Delta", "Epsilon"]
        recommender = ExplainableRecommender(item_graph, labels=labels)
        recommendation = recommender.recommend({0: 1.0}, n=1)[0]
        assert "Alpha -> Beta" in recommender.explain(recommendation)

    def test_no_outgoing_edges_gives_no_recommendations(self, item_graph):
        recommender = ExplainableRecommender(item_graph)
        assert recommender.recommend({2: 1.0}, n=5) == []

    def test_invalid_inputs_rejected(self, item_graph):
        with pytest.raises(ValidationError):
            ExplainableRecommender(item_graph, labels=["only-one"])
        with pytest.raises(ValidationError):
            ExplainableRecommender(item_graph, max_hops=0)
        recommender = ExplainableRecommender(item_graph)
        with pytest.raises(ValidationError):
            recommender.recommend({99: 1.0})


class TestDegreeAnalysis:
    def test_degree_profile(self, item_graph):
        profile = degree_profile(item_graph)
        assert profile.in_degree[2] == 2
        assert profile.out_degree[3] == 2
        assert profile.top_by_in_degree(1)[0][0] == 2

    def test_hub_analysis_detects_asymmetry(self, item_graph):
        summary = hub_analysis(item_graph, popular_items=[2])
        assert summary["popular_mean_in_degree"] == 2.0
        assert summary["popular_mean_out_degree"] == 0.0
        assert summary["popular_in_out_ratio"] == 2.0

    def test_hub_analysis_validates_indices(self, item_graph):
        with pytest.raises(ValidationError):
            hub_analysis(item_graph, popular_items=[99])
        with pytest.raises(ValidationError):
            hub_analysis(item_graph, popular_items=[])

    def test_labels_length_checked(self, item_graph):
        with pytest.raises(ValidationError):
            degree_profile(item_graph, labels=["a"])
