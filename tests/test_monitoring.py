"""Tests for the booking-monitoring subsystem (events, simulator, encoder, anomaly)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.monitoring.anomaly import (
    AnomalyPath,
    detect_anomalies,
    extract_error_paths,
    path_statistics,
    two_proportion_z_test,
)
from repro.monitoring.booking_simulator import BookingSimulator, Incident, SimulatorConfig
from repro.monitoring.encoder import LogEncoder
from repro.monitoring.events import BOOKING_STEPS, BookingRecord, error_rate
from repro.monitoring.root_cause import RootCauseAnalyzer, categorize_root_cause


def _record(airline="AC", step3=False, step1=False) -> BookingRecord:
    return BookingRecord(
        timestamp=0.0,
        airline=airline,
        fare_source="fare_source_1",
        agent="agent_01",
        departure_city="PEK",
        arrival_city="SHA",
        step_errors={"step3_reserve": step3, "step1_availability": step1},
    )


class TestEvents:
    def test_failed_and_error_steps(self):
        record = _record(step3=True)
        assert record.failed()
        assert record.error_steps() == ["step3_reserve"]
        assert not _record().failed()

    def test_entities(self):
        assert _record().entities()["airline"] == "AC"

    def test_error_rate(self):
        records = [_record(step3=True), _record(), _record()]
        assert error_rate(records) == pytest.approx(1 / 3)
        assert error_rate(records, "step3_reserve") == pytest.approx(1 / 3)
        assert error_rate([], "step3_reserve") == 0.0


class TestIncident:
    def test_validation(self):
        with pytest.raises(ValidationError):
            Incident("airline", "AC", "step9", 0.5, 0, 10)
        with pytest.raises(ValidationError):
            Incident("airline", "AC", "step3_reserve", 0.5, 10, 5)

    def test_active_and_matches(self):
        incident = Incident("airline", "AC", "step3_reserve", 0.5, 100, 200)
        assert incident.active_at(150) and not incident.active_at(250)
        assert incident.matches({"airline": "AC"})
        assert not incident.matches({"airline": "MU"})


class TestSimulator:
    def test_window_record_count_scales_with_duration(self):
        simulator = BookingSimulator(seed=0)
        short = simulator.simulate_window(0, 1800)
        long = simulator.simulate_window(0, 7200)
        assert len(long) > len(short)

    def test_baseline_error_rate_is_low(self):
        simulator = BookingSimulator(seed=1)
        records = simulator.simulate_window(0, 3600 * 4)
        assert error_rate(records, "step3_reserve") < 0.05

    def test_incident_raises_error_rate_for_matching_entity(self):
        incident = Incident("airline", "AC", "step3_reserve", 0.7, 0, 3600 * 4)
        simulator = BookingSimulator(incidents=[incident], seed=2)
        records = simulator.simulate_window(0, 3600 * 4)
        affected = [r for r in records if r.airline == "AC"]
        unaffected = [r for r in records if r.airline != "AC"]
        assert error_rate(affected, "step3_reserve") > 0.4
        assert error_rate(unaffected, "step3_reserve") < 0.05

    def test_incident_outside_window_has_no_effect(self):
        incident = Incident("airline", "AC", "step3_reserve", 0.9, 10**6, 10**6 + 10)
        simulator = BookingSimulator(incidents=[incident], seed=3)
        records = simulator.simulate_window(0, 3600)
        assert error_rate(records, "step3_reserve") < 0.05

    def test_active_incidents(self):
        incident = Incident("airline", "AC", "step3_reserve", 0.5, 1000, 2000)
        simulator = BookingSimulator(incidents=[incident], seed=0)
        assert simulator.active_incidents(500, 1000) == [incident]
        assert simulator.active_incidents(2500, 1000) == []

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            SimulatorConfig(airlines=("AC",))


class TestEncoder:
    def test_encoding_shape_and_vocabulary(self):
        simulator = BookingSimulator(seed=0)
        records = simulator.simulate_window(0, 3600)
        window = LogEncoder(center=False).encode(records)
        assert window.n_records == len(records)
        assert set(BOOKING_STEPS) <= set(window.node_names)
        assert window.index_of("step3_reserve") >= 0

    def test_indicators_are_binary_without_centering(self):
        records = [_record(step3=True), _record(airline="MU")]
        window = LogEncoder(center=False).encode(records)
        assert set(np.unique(window.data)) <= {0.0, 1.0}
        assert window.data[0, window.index_of("airline=AC")] == 1.0
        assert window.data[1, window.index_of("airline=MU")] == 1.0
        assert window.data[0, window.index_of("step3_reserve")] == 1.0

    def test_centering(self):
        records = [_record(), _record(airline="MU")]
        window = LogEncoder(center=True).encode(records)
        np.testing.assert_allclose(window.data.mean(axis=0), 0.0, atol=1e-12)

    def test_fixed_vocabulary(self):
        vocabulary = ["airline=AC", "airline=MU"]
        window = LogEncoder(center=False, vocabulary=vocabulary).encode([_record()])
        assert window.entity_nodes == ("airline=AC", "airline=MU")

    def test_empty_window_rejected(self):
        with pytest.raises(ValidationError):
            LogEncoder().encode([])

    def test_unknown_node_lookup_rejected(self):
        window = LogEncoder().encode([_record()])
        with pytest.raises(ValidationError):
            window.index_of("nonexistent")


class TestAnomalyDetection:
    def test_z_test_detects_large_increase(self):
        assert two_proportion_z_test(50, 100, 5, 100) < 1e-6

    def test_z_test_no_increase(self):
        assert two_proportion_z_test(5, 100, 5, 100) > 0.4

    def test_z_test_empty_samples(self):
        assert two_proportion_z_test(0, 0, 1, 10) == 1.0

    def test_z_test_rejects_negative_counts(self):
        with pytest.raises(ValidationError):
            two_proportion_z_test(-1, 10, 0, 10)

    def test_extract_error_paths(self):
        node_names = ["airline=AC", "fare_source=3", "step3_reserve"]
        weights = np.zeros((3, 3))
        weights[0, 2] = 0.5
        weights[1, 0] = 0.3
        paths = extract_error_paths(weights, node_names)
        strings = {str(p) for p in paths}
        assert "step3_reserve <- airline=AC <- fare_source=3" in strings

    def test_path_statistics(self):
        path = AnomalyPath(nodes=("airline=AC", "step3_reserve"), error_node="step3_reserve")
        records = [_record(step3=True), _record(step3=False), _record(airline="MU", step3=True)]
        total, errors = path_statistics(records, path)
        assert total == 2 and errors == 1

    def test_detect_anomalies_flags_significant_paths(self):
        path = AnomalyPath(nodes=("airline=AC", "step3_reserve"), error_node="step3_reserve")
        current = [_record(step3=True) for _ in range(40)] + [_record(step3=False) for _ in range(10)]
        previous = [_record(step3=False) for _ in range(50)]
        reports = detect_anomalies([path], current, previous)
        assert len(reports) == 1
        assert reports[0].root_cause == "airline=AC"
        assert reports[0].current_rate > reports[0].previous_rate

    def test_detect_anomalies_respects_min_support(self):
        path = AnomalyPath(nodes=("airline=AC", "step3_reserve"), error_node="step3_reserve")
        current = [_record(step3=True)] * 3
        previous = [_record()] * 3
        assert detect_anomalies([path], current, previous, min_support=5) == []


class TestRootCause:
    def test_categorize(self):
        assert categorize_root_cause("airline=AC") == "airline"
        assert categorize_root_cause("agent=agent_01") == "travel agent"
        assert categorize_root_cause("fare_source=3") == "intermediary interface"
        assert categorize_root_cause("arrival_city=WUH") == "unpredictable event"
        assert categorize_root_cause("something_else") == "external system"

    def test_evaluate_window_matches_incident(self):
        analyzer = RootCauseAnalyzer()
        incident = Incident(
            "airline", "AC", "step3_reserve", 0.7, 0, 100, category="airline", description="outage"
        )
        path = AnomalyPath(nodes=("airline=AC", "step3_reserve"), error_node="step3_reserve")
        current = [_record(step3=True)] * 30
        previous = [_record()] * 30
        reports = detect_anomalies([path], current, previous)
        findings = analyzer.evaluate_window(reports, [incident])
        assert findings[0].is_true_positive
        assert analyzer.true_positive_rate() == 1.0
        assert analyzer.category_breakdown() == {"airline": 1.0}

    def test_unmatched_incident_is_recorded_as_missed(self):
        analyzer = RootCauseAnalyzer()
        incident = Incident("airline", "MU", "step1_availability", 0.7, 0, 100)
        analyzer.evaluate_window([], [incident])
        assert analyzer.missed_incidents == [incident]
        assert analyzer.false_alarm_rate() == 0.0
