"""Tests for the dataset generators (Sachs, synthetic GRN, synthetic MovieLens)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.grn import GRN_PRESETS, make_gene_regulatory_network
from repro.datasets.movielens import make_movielens
from repro.datasets.registry import DATASET_BUILDERS, load_dataset
from repro.datasets.sachs import SACHS_EDGES, SACHS_NODES, load_sachs, sachs_adjacency
from repro.exceptions import ValidationError
from repro.graph.dag import is_dag


class TestSachs:
    def test_structure_matches_published_network(self):
        adjacency = sachs_adjacency()
        assert adjacency.shape == (11, 11)
        assert int(adjacency.sum()) == len(SACHS_EDGES) == 17
        assert is_dag(adjacency)

    def test_named_edges_present(self):
        adjacency = sachs_adjacency()
        index = {name: i for i, name in enumerate(SACHS_NODES)}
        assert adjacency[index["Raf"], index["Mek"]] == 1
        assert adjacency[index["Mek"], index["Erk"]] == 1
        assert adjacency[index["Erk"], index["Raf"]] == 0

    def test_load_sachs_shapes(self):
        dataset = load_sachs(n_samples=200, seed=0)
        assert dataset.data.shape == (200, 11)
        assert dataset.weights.shape == (11, 11)
        np.testing.assert_array_equal(dataset.weights != 0, dataset.truth != 0)

    def test_structure_stable_across_sample_sizes(self):
        a = load_sachs(n_samples=50, seed=5)
        b = load_sachs(n_samples=500, seed=5)
        np.testing.assert_allclose(a.weights, b.weights)

    def test_noise_types(self):
        dataset = load_sachs(n_samples=100, noise_type="gumbel", seed=1)
        assert np.all(np.isfinite(dataset.data))


class TestGRN:
    def test_presets_match_table_one(self):
        assert GRN_PRESETS["ecoli-scale"]["n_genes"] == 1565
        assert GRN_PRESETS["yeast-scale"]["n_genes"] == 4441
        assert GRN_PRESETS["ecoli-scale"]["n_edges"] == 3648
        assert GRN_PRESETS["yeast-scale"]["n_edges"] == 12873

    def test_explicit_sizes(self):
        dataset = make_gene_regulatory_network(
            n_genes=100, n_edges=200, n_samples=150, seed=0
        )
        assert dataset.n_genes == 100
        assert dataset.n_edges == 200
        assert dataset.data.shape == (150, 100)
        assert is_dag(dataset.truth)

    def test_out_degree_is_heavy_tailed(self):
        dataset = make_gene_regulatory_network(
            n_genes=300, n_edges=600, n_samples=10, tf_fraction=0.1, seed=1
        )
        out_degree = (dataset.truth != 0).sum(axis=1)
        regulators = (out_degree > 0).sum()
        # Only ~10% of genes regulate others, and the top regulator controls many.
        assert regulators <= 0.15 * 300
        assert out_degree.max() >= 5 * max(out_degree[out_degree > 0].mean(), 1e-9) or out_degree.max() >= 15

    def test_impossible_edge_count_rejected(self):
        with pytest.raises(ValidationError):
            make_gene_regulatory_network(n_genes=10, n_edges=1000, n_samples=5, seed=0)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValidationError):
            make_gene_regulatory_network("human-scale")

    def test_missing_sizes_rejected(self):
        with pytest.raises(ValidationError):
            make_gene_regulatory_network(n_genes=10, n_edges=5)

    def test_deterministic_given_seed(self):
        a = make_gene_regulatory_network(n_genes=50, n_edges=80, n_samples=20, seed=3)
        b = make_gene_regulatory_network(n_genes=50, n_edges=80, n_samples=20, seed=3)
        np.testing.assert_allclose(a.data, b.data)
        np.testing.assert_array_equal(a.truth, b.truth)


class TestMovieLens:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_movielens(n_movies=60, n_users=500, n_series=10, seed=0)

    def test_shapes(self, dataset):
        assert dataset.ratings.shape == (500, 60)
        assert dataset.centered.shape == (500, 60)
        assert dataset.truth.shape == (60, 60)
        assert len(dataset.movie_titles) == 60

    def test_planted_graph_is_a_dag(self, dataset):
        assert is_dag(dataset.truth)

    def test_ratings_in_range(self, dataset):
        assert dataset.ratings.min() >= 0.0
        assert dataset.ratings.max() <= 5.0

    def test_centered_rows_have_zero_mean(self, dataset):
        np.testing.assert_allclose(dataset.centered.mean(axis=1), 0.0, atol=1e-9)

    def test_series_edges_are_strongest_relation(self, dataset):
        series_weights = [
            abs(dataset.truth[i, j])
            for (i, j), relation in dataset.relations.items()
            if relation == "same series"
        ]
        genre_weights = [
            abs(dataset.truth[i, j])
            for (i, j), relation in dataset.relations.items()
            if relation == "same genre"
        ]
        assert series_weights and genre_weights
        assert np.mean(series_weights) > np.mean(genre_weights)

    def test_blockbusters_have_no_outgoing_planted_edges(self, dataset):
        for hub in dataset.blockbusters:
            assert np.count_nonzero(dataset.truth[hub, :]) == 0

    def test_relation_lookup(self, dataset):
        (edge, relation), *_ = dataset.relations.items()
        assert dataset.relation_of(*edge) == relation
        assert dataset.relation_of(0, 0) == "unrelated"

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValidationError):
            make_movielens(n_movies=10, n_series=10, series_size=3)


class TestRegistry:
    def test_all_builders_produce_data(self):
        for name in ("sachs", "er2", "sf4"):
            payload = load_dataset(name, seed=0, **({"n_nodes": 20} if name in ("er2", "sf4") else {}))
            assert "data" in payload and payload["data"].ndim == 2

    def test_movielens_builder(self):
        payload = load_dataset(
            "movielens-synthetic", seed=1, n_movies=30, n_users=100, n_series=5
        )
        assert payload["data"].shape == (100, 30)
        assert "dataset" in payload

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            load_dataset("imagenet")

    def test_registry_contains_expected_names(self):
        assert {"sachs", "ecoli-scale", "yeast-scale", "movielens-synthetic"} <= set(
            DATASET_BUILDERS
        )
