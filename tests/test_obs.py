"""Unit tests for repro.obs: sinks, metrics registry, and the tracing core."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    InMemorySink,
    MetricsRegistry,
    NDJSONFileSink,
    OuterIterationSpans,
    Span,
    Tracer,
    activated,
    clamp_negative_durations,
    current_tracer,
    merge_spool,
    read_ndjson,
    read_trace,
    validate_trace,
    wall_clock_breakdown,
)


class TestSinks:
    def test_in_memory_sink_records_events(self):
        sink = InMemorySink()
        sink.emit({"event": "span", "span_id": "a"})
        sink.emit({"event": "log_record", "index": 0})
        assert len(sink.events) == 2
        assert sink.spans() == [{"event": "span", "span_id": "a"}]

    def test_in_memory_sink_close_is_idempotent_but_blocks_emit(self):
        sink = InMemorySink()
        sink.close()
        sink.close()
        with pytest.raises(RuntimeError):
            sink.emit({"event": "span"})

    def test_ndjson_sink_flushes_each_event(self, tmp_path):
        path = tmp_path / "nested" / "trace.ndjson"
        sink = NDJSONFileSink(path)
        sink.emit({"event": "span", "span_id": "a"})
        # Flushed before close: the line is already on disk.
        assert path.read_text().count("\n") == 1
        sink.emit({"event": "span", "span_id": "b"})
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(RuntimeError):
            sink.emit({"event": "span", "span_id": "c"})
        assert [e["span_id"] for e in read_ndjson(path)] == ["a", "b"]

    def test_ndjson_sink_encodes_numpy_values(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        sink = NDJSONFileSink(path)
        sink.emit(
            {
                "event": "span",
                "attributes": {
                    "n": np.int64(3),
                    "x": np.float64(0.5),
                    "flag": np.bool_(True),
                    "vec": np.arange(2),
                },
            }
        )
        sink.close()
        attrs = read_ndjson(path)[0]["attributes"]
        assert attrs == {"n": 3, "x": 0.5, "flag": True, "vec": [0, 1]}

    def test_read_ndjson_missing_file_is_empty(self, tmp_path):
        assert read_ndjson(tmp_path / "nope.ndjson") == []

    def test_read_ndjson_skips_truncated_final_line(self, tmp_path):
        path = tmp_path / "spool.ndjson"
        path.write_text(
            json.dumps({"event": "span", "span_id": "a"})
            + "\n"
            + '{"event": "span", "span_id": "b", "trunca'
        )
        events = read_ndjson(path)
        assert [e["span_id"] for e in events] == ["a"]
        with pytest.raises(json.JSONDecodeError):
            read_ndjson(path, skip_malformed=False)


class TestMetrics:
    def test_counter_increments_and_rejects_decrease(self):
        counter = Counter("jobs_total", {"status": "ok"})
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValidationError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("queue_depth", {})
        gauge.set(4)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_histogram_cumulative_buckets(self):
        hist = Histogram("seconds", {}, buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(56.05)
        assert hist.mean == pytest.approx(56.05 / 5)
        assert hist.cumulative_buckets() == {"0.1": 1, "1.0": 3, "10.0": 4, "+Inf": 5}

    def test_histogram_requires_buckets(self):
        with pytest.raises(ValidationError):
            Histogram("seconds", {}, buckets=[])

    def test_histogram_quantile_interpolates_within_bucket(self):
        hist = Histogram("seconds", {}, buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        # p50 target = 2.5 observations: 1 in (0, 0.1], then 2 in (0.1, 1.0];
        # 1.5 of those 2 are needed → 0.1 + 0.9 * 0.75.
        assert hist.quantile(0.50) == pytest.approx(0.775)
        # p95 lands in the +Inf bucket and clamps to the top finite bound.
        assert hist.quantile(0.95) == pytest.approx(10.0)

    def test_histogram_quantile_uniform_buckets(self):
        hist = Histogram("seconds", {}, buckets=[1.0, 2.0, 3.0, 4.0])
        for value in (0.5, 1.5, 2.5, 3.5):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(2.0)
        assert hist.quantile(1.0) == pytest.approx(4.0)

    def test_histogram_quantile_edge_cases(self):
        hist = Histogram("seconds", {}, buckets=[1.0])
        assert hist.quantile(0.5) == 0.0  # no observations yet
        hist.observe(0.5)
        with pytest.raises(ValidationError):
            hist.quantile(1.5)
        with pytest.raises(ValidationError):
            hist.quantile(-0.1)

    def test_histogram_percentiles_in_as_dict(self):
        hist = Histogram("seconds", {}, buckets=[1.0, 2.0])
        for value in (0.5, 0.5, 1.5):
            hist.observe(value)
        payload = hist.as_dict()
        assert set(payload["percentiles"]) == {"p50", "p95", "p99"}
        assert payload["percentiles"]["p50"] == pytest.approx(
            hist.quantile(0.5)
        )
        # Percentile estimates are monotone in q.
        p = payload["percentiles"]
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_default_buckets_cover_cache_hits_to_sharded_solves(self):
        assert DEFAULT_BUCKETS[0] <= 0.001 and DEFAULT_BUCKETS[-1] >= 300.0

    def test_registry_returns_same_instrument_for_same_identity(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", status="ok").inc()
        registry.counter("jobs_total", status="ok").inc()
        registry.counter("jobs_total", status="failed").inc()
        assert registry.counter("jobs_total", status="ok").value == 2.0
        assert len(registry) == 2

    def test_registry_rejects_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total")
        with pytest.raises(ValidationError):
            registry.gauge("jobs_total")

    def test_as_dict_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.gauge("b_depth").set(2)
        registry.histogram("c_seconds").observe(0.2)
        dump = registry.as_dict()
        assert [c["name"] for c in dump["counters"]] == ["a_total"]
        assert [g["name"] for g in dump["gauges"]] == ["b_depth"]
        assert dump["histograms"][0]["count"] == 1
        json.dumps(dump)  # must be JSON-able as written

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", status="ok").inc(3)
        registry.histogram("wait_seconds", buckets=[1.0]).observe(0.5)
        text = registry.to_prometheus()
        assert "# TYPE jobs_total counter" in text
        assert 'jobs_total{status="ok"} 3' in text
        assert "# TYPE wait_seconds histogram" in text
        assert 'wait_seconds_bucket{le="1.0"} 1' in text
        assert 'wait_seconds_bucket{le="+Inf"} 1' in text
        assert "wait_seconds_sum 0.5" in text
        assert "wait_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("errs_total", message='a "quoted"\nline').inc()
        text = registry.to_prometheus()
        assert r"a \"quoted\"\nline" in text


class TestTracing:
    def test_nested_spans_link_to_ambient_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        names = [s["name"] for s in tracer.sink.spans()]
        assert names == ["inner", "outer"]  # emitted in end order

    def test_span_exception_sets_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("nope")
        assert span.status == "error"
        assert "RuntimeError" in span.attributes["error"]

    def test_span_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once")
        span.end()
        first = span.duration
        span.end("error")
        assert span.duration == first
        assert span.status == "ok"
        assert len(tracer.sink.spans()) == 1

    def test_explicit_parent_overrides_ambient(self):
        tracer = Tracer()
        root = tracer.span("root")
        with tracer.span("ambient"):
            child = tracer.span("child", parent=root)
            orphanless = tracer.span("detached", parent=None)
        assert child.parent_id == root.span_id
        assert orphanless.parent_id is None

    def test_use_parent_redirects_without_restarting(self):
        tracer = Tracer()
        job = tracer.span("job")
        start = job.start
        with tracer.use_parent(job):
            inner = tracer.span("inner")
        assert inner.parent_id == job.span_id
        assert job.start == start and not job.ended

    def test_record_span_clamps_negative_duration(self):
        tracer = Tracer()
        event = tracer.record_span("synth", start=10.0, duration=-0.5)
        assert event["duration"] == 0.0
        assert tracer.sink.spans()[0]["name"] == "synth"

    def test_activated_scopes_the_current_tracer(self):
        assert current_tracer() is None
        tracer = Tracer()
        with activated(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_outer_iteration_spans_slice_time_between_calls(self):
        tracer = Tracer()
        with tracer.span("solve") as solve:
            hook = OuterIterationSpans(tracer, parent=solve)
            hook()
            hook()
        iters = [s for s in tracer.sink.spans() if s["name"] == "outer_iter"]
        assert len(iters) == 2
        assert hook.n_calls == 2
        assert [s["attributes"]["index"] for s in iters] == [0, 1]
        assert all(s["parent_id"] == solve.span_id for s in iters)
        # Consecutive slices tile the timeline: each starts where the last ended.
        assert iters[1]["start"] == pytest.approx(
            iters[0]["start"] + iters[0]["duration"]
        )


class TestMergeAndAnalysis:
    def _spool(self, tmp_path, events):
        path = tmp_path / "spool.ndjson"
        path.write_text("".join(json.dumps(e) + "\n" for e in events))
        return path

    def test_merge_spool_reparents_worker_roots(self, tmp_path):
        parent = Tracer()
        job = parent.span("job")
        worker = Tracer(trace_id=parent.trace_id)
        with worker.span("worker", parent=job.span_id):
            with worker.span("solve"):
                pass
        path = self._spool(tmp_path, worker.sink.spans())
        merged = merge_spool(parent, path, adopt_parent=job)
        job.end()
        spans = parent.sink.spans()
        assert len(merged) == 2
        assert validate_trace(spans)["n_orphans"] == 0

    def test_merge_spool_adopts_spans_with_unflushed_parents(self, tmp_path):
        # A worker SIGKILLed mid-solve flushed its outer_iter slices but never
        # its (still open) root span: the slices must be adopted, not dropped.
        parent = Tracer()
        job = parent.span("job")
        events = [
            {
                "event": "span",
                "trace_id": parent.trace_id,
                "span_id": "aaaa",
                "parent_id": "never-flushed",
                "name": "outer_iter",
                "start": 1.0,
                "wall": 1.0,
                "duration": 0.5,
                "status": "ok",
                "attributes": {},
            }
        ]
        merged = merge_spool(parent, self._spool(tmp_path, events), adopt_parent=job)
        job.end()
        assert merged[0]["parent_id"] == job.span_id
        assert merged[0]["attributes"]["adopted"] is True
        assert validate_trace(parent.sink.spans())["n_orphans"] == 0

    def test_merge_spool_missing_file_is_a_noop(self, tmp_path):
        parent = Tracer()
        assert merge_spool(parent, tmp_path / "gone.ndjson", adopt_parent=None) == []
        assert parent.sink.events == []

    def test_read_trace_filters_non_span_events(self, tmp_path):
        path = self._spool(
            tmp_path,
            [
                {"event": "log_record", "index": 0},
                {"event": "span", "span_id": "a", "name": "x"},
            ],
        )
        assert [s["span_id"] for s in read_trace(path)] == ["a"]

    def test_validate_trace_reports_orphans_and_roots(self):
        spans = [
            {"span_id": "a", "parent_id": None, "name": "root"},
            {"span_id": "b", "parent_id": "a", "name": "child"},
            {"span_id": "c", "parent_id": "ghost", "name": "lost"},
        ]
        report = validate_trace(spans)
        assert report["n_spans"] == 3
        assert report["n_roots"] == 1
        assert report["n_orphans"] == 1 and report["orphans"] == ["c"]
        assert report["names"] == ["child", "lost", "root"]

    def test_wall_clock_breakdown_sums_by_name(self):
        spans = [
            {"name": "solve", "duration": 1.0},
            {"name": "solve", "duration": 2.0},
            {"name": "killed", "duration": None},
        ]
        breakdown = wall_clock_breakdown(spans)
        assert breakdown["solve"] == pytest.approx(3.0)
        assert breakdown["killed"] == 0.0

    def test_clamp_negative_durations_counts_and_flags(self):
        spans = [
            {"span_id": "a", "name": "x", "duration": -0.5, "attributes": {}},
            {"span_id": "b", "name": "y", "duration": 1.0, "attributes": {}},
            {"span_id": "c", "name": "z", "duration": -0.1},  # no attributes
        ]
        assert clamp_negative_durations(spans) == 2
        assert spans[0]["duration"] == 0.0
        assert spans[0]["attributes"]["clamped_negative_duration"] is True
        assert spans[1]["duration"] == 1.0
        assert spans[2]["duration"] == 0.0
        assert validate_trace(spans)["n_clamped_durations"] == 2

    def test_merge_spool_clamps_negative_durations(self, tmp_path):
        # A worker clock hiccup (or torn write) can leave duration < 0 in a
        # spool; the merged trace must clamp it to zero and flag the span.
        parent = Tracer()
        job = parent.span("job")
        events = [
            {
                "event": "span",
                "trace_id": parent.trace_id,
                "span_id": "aaaa",
                "parent_id": job.span_id,
                "name": "solve",
                "start": 1.0,
                "wall": 1.0,
                "duration": -0.25,
                "status": "ok",
                "attributes": {},
            }
        ]
        merged = merge_spool(parent, self._spool(tmp_path, events), adopt_parent=job)
        job.end()
        assert merged[0]["duration"] == 0.0
        assert merged[0]["attributes"]["clamped_negative_duration"] is True
        assert validate_trace(parent.sink.spans())["n_clamped_durations"] == 1

    def test_read_trace_clamps_negative_durations(self, tmp_path):
        path = self._spool(
            tmp_path,
            [
                {"event": "span", "span_id": "a", "name": "x", "duration": -1.0},
                {"event": "span", "span_id": "b", "name": "y", "duration": 2.0},
            ],
        )
        spans = read_trace(path)
        assert spans[0]["duration"] == 0.0
        assert spans[1]["duration"] == 2.0

    def test_span_event_schema(self):
        tracer = Tracer(trace_id="t" * 16)
        with tracer.span("unit", key="value"):
            pass
        event = tracer.sink.spans()[0]
        assert event["event"] == "span"
        assert event["trace_id"] == "t" * 16
        assert len(event["span_id"]) == 16
        assert event["parent_id"] is None
        assert event["name"] == "unit"
        assert event["status"] == "ok"
        assert event["duration"] >= 0.0
        assert event["attributes"] == {"key": "value"}
        assert isinstance(Span("x", "t", None), Span)
