"""Integration tests for repro.serve.daemon: spool intake over the pool.

The daemon is driven deterministically through :meth:`ServeDaemon.step` —
one intake→dispatch→poll turn at a time — so the tests control exactly when
submissions land relative to the scheduler, without racing a background
thread.  The CLI test is the exception: it runs the real blocking
``repro-serve daemon`` loop on a thread and stops it with the spool's
``stop`` sentinel, exercising the same shutdown path a SIGTERM takes.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serve.daemon import ServeDaemon
from repro.serve.job import register_solver, unregister_solver
from repro.serve.streaming import StreamingRunner

pytestmark = pytest.mark.timeout(180)


@dataclass(frozen=True)
class _InstantConfig:
    duration: float = 0.0


class _InstantSolver:
    """Return an empty result immediately (optionally after a short nap)."""

    def __init__(self, config: _InstantConfig):
        self.config = config

    def fit(self, data, seed=None):
        from repro.core.least import LEASTResult

        if self.config.duration > 0:
            time.sleep(self.config.duration)
        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


@pytest.fixture
def instant_solver():
    register_solver("instant", _InstantSolver, _InstantConfig, overwrite=True)
    yield
    unregister_solver("instant")


def _submission_line(tenant: str | None = None, **overrides) -> str:
    payload = {
        "solver": "instant",
        "data": [[0.0, 0.0, 0.0]] * 4,
        "config": {},
    }
    if tenant is not None:
        payload["tenant"] = tenant
    payload.update(overrides)
    return json.dumps(payload)


def _submit(daemon: ServeDaemon, name: str, lines: list[str]) -> None:
    """Drop one submission file the way a client would: write, then rename."""
    staging = daemon.spool_dir / f".{name}.tmp"
    staging.write_text("\n".join(lines) + "\n")
    os.rename(staging, daemon.incoming_dir / f"{name}.ndjson")


def _result_lines(daemon: ServeDaemon, name: str) -> list[dict]:
    path = daemon.results_dir / f"{name}.ndjson"
    if not path.exists():
        return []
    return [json.loads(line) for line in path.read_text().splitlines()]


def _drain(daemon: ServeDaemon, deadline: float = 60.0) -> None:
    started = time.monotonic()
    daemon.step(timeout=0.05)  # before the first intake, drained() is vacuous
    while not daemon.drained():
        daemon.step(timeout=0.05)
        assert time.monotonic() - started < deadline, "daemon failed to drain"


class TestDaemonValidation:
    def test_rejects_bad_parameters(self, tmp_path):
        runner = StreamingRunner(n_workers=1)
        with pytest.raises(ValidationError):
            ServeDaemon(runner, tmp_path / "spool", max_pending=0)
        with pytest.raises(ValidationError):
            ServeDaemon(runner, tmp_path / "spool", poll_interval=0.0)

    def test_creates_spool_layout(self, tmp_path):
        daemon = ServeDaemon(StreamingRunner(n_workers=1), tmp_path / "spool")
        assert daemon.incoming_dir.is_dir()
        assert daemon.work_dir.is_dir()
        assert daemon.results_dir.is_dir()


class TestDaemonIntake:
    def test_jobs_submitted_mid_run_stream_results_incrementally(
        self, instant_solver, tmp_path
    ):
        """The acceptance scenario: 20 jobs arriving in two waves mid-run,
        results appended to the per-file stream as each finishes."""
        runner = StreamingRunner(n_workers=2, timeout=30.0)
        daemon = ServeDaemon(runner, tmp_path / "spool", max_pending=32)

        _submit(daemon, "wave-a", [_submission_line() for _ in range(8)])
        # First wave: step until at least one result is out while work is
        # still in flight — proof results stream, not batch at drain.
        started = time.monotonic()
        while not _result_lines(daemon, "wave-a"):
            daemon.step(timeout=0.05)
            assert time.monotonic() - started < 60.0
        assert not daemon.drained() or len(_result_lines(daemon, "wave-a")) < 8

        # Second wave lands while the first is still being served.
        _submit(daemon, "wave-b", [_submission_line() for _ in range(12)])
        _drain(daemon)
        daemon.close()

        results_a = _result_lines(daemon, "wave-a")
        results_b = _result_lines(daemon, "wave-b")
        assert len(results_a) == 8
        assert len(results_b) == 12
        for record in results_a + results_b:
            assert record["type"] == "result"
            assert record["status"] == "ok"
        # Auto-assigned ids are <file>:<line> — one per line, none repeated.
        assert {r["job_id"] for r in results_a} == {
            f"wave-a:{n}" for n in range(1, 9)
        }
        assert daemon.n_accepted == 20
        assert daemon.n_completed == 20
        assert daemon.n_rejected == 0
        # The submission files were claimed out of incoming/ exactly once.
        assert list(daemon.incoming_dir.iterdir()) == []

    def test_malformed_lines_are_rejected_not_fatal(
        self, instant_solver, tmp_path
    ):
        daemon = ServeDaemon(
            StreamingRunner(n_workers=1, timeout=30.0), tmp_path / "spool"
        )
        _submit(
            daemon,
            "mixed",
            [
                _submission_line(),
                "{definitely not json",
                json.dumps(["a", "list", "not", "an", "object"]),
                json.dumps({"solver": "instant", "unknown_key": 1}),
                _submission_line(),
            ],
        )
        _drain(daemon)
        daemon.close()
        records = _result_lines(daemon, "mixed")
        rejected = [r for r in records if r["type"] == "rejected"]
        completed = [r for r in records if r["type"] == "result"]
        assert len(completed) == 2
        assert {r["line"] for r in rejected} == {2, 3, 4}
        assert all("malformed submission" in r["reason"] for r in rejected)
        assert daemon.n_rejected == 3
        assert daemon.n_accepted == 2

    def test_admission_control_rejects_past_max_pending(
        self, instant_solver, tmp_path
    ):
        daemon = ServeDaemon(
            StreamingRunner(n_workers=1, timeout=30.0),
            tmp_path / "spool",
            max_pending=3,
        )
        _submit(daemon, "burst", [_submission_line() for _ in range(10)])
        _drain(daemon)
        daemon.close()
        records = _result_lines(daemon, "burst")
        rejected = [r for r in records if r["type"] == "rejected"]
        completed = [r for r in records if r["type"] == "result"]
        # The burst is parsed in one intake turn: the admission window is
        # max_pending queued jobs (dispatch happens after intake), the rest
        # bounce with an explicit queue-full record naming the job.
        assert len(rejected) == 7
        assert all(r["reason"] == "queue full" for r in rejected)
        assert all("job_id" in r for r in rejected)
        assert len(completed) == 3
        assert daemon.n_completed == 3

    def test_tenant_fairness_round_robin(self, instant_solver, tmp_path):
        """A bulk tenant cannot starve a trickle tenant: once both queues
        hold work, dispatch alternates between them."""
        daemon = ServeDaemon(
            StreamingRunner(n_workers=1, timeout=30.0),
            tmp_path / "spool",
            max_pending=32,
        )
        lines = [_submission_line(tenant="bulk") for _ in range(6)] + [
            _submission_line(tenant="trickle") for _ in range(2)
        ]
        _submit(daemon, "both", lines)
        _drain(daemon)
        daemon.close()
        order = [
            r["job_id"]
            for r in _result_lines(daemon, "both")
            if r["type"] == "result"
        ]
        assert len(order) == 8
        # trickle's 2 jobs (lines 7 and 8) finished before bulk's last job —
        # strict FIFO over the file would have put them dead last.
        bulk_last = order.index("both:6")
        assert order.index("both:7") < bulk_last
        assert order.index("both:8") < bulk_last

    def test_stop_drains_accepted_work_and_ignores_new(
        self, instant_solver, tmp_path
    ):
        daemon = ServeDaemon(
            StreamingRunner(n_workers=1, timeout=30.0), tmp_path / "spool"
        )
        _submit(daemon, "early", [_submission_line() for _ in range(3)])
        daemon.step(timeout=0.05)  # claim + start serving
        daemon.request_stop()
        _submit(daemon, "late", [_submission_line()])
        daemon.run()  # drains "early", never touches "late"
        assert daemon.n_completed == 3
        assert len(_result_lines(daemon, "early")) == 3
        assert _result_lines(daemon, "late") == []
        assert (daemon.incoming_dir / "late.ndjson").exists()
        # The pool went down with the session: no live workers remain.
        for pid in daemon.runner.telemetry.worker_pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_stop_sentinel_file_stops_the_loop(self, instant_solver, tmp_path):
        daemon = ServeDaemon(
            StreamingRunner(n_workers=1, timeout=30.0), tmp_path / "spool"
        )
        (daemon.spool_dir / "stop").touch()
        assert daemon.stop_requested()
        daemon.run()  # returns immediately: stop requested, nothing pending
        assert daemon.n_accepted == 0


class TestDaemonCLI:
    def test_cli_serves_spool_until_stopped(self, instant_solver, tmp_path):
        import threading

        from repro.serve.cli import daemon_main

        spool = tmp_path / "spool"
        codes: list[int] = []
        thread = threading.Thread(
            target=lambda: codes.append(
                daemon_main(
                    [
                        str(spool),
                        "--workers",
                        "1",
                        "--timeout",
                        "30",
                        "--poll-interval",
                        "0.02",
                    ]
                )
            ),
            daemon=True,
        )
        thread.start()
        started = time.monotonic()
        while not (spool / "incoming").is_dir():
            time.sleep(0.01)
            assert time.monotonic() - started < 30.0
        staging = tmp_path / ".jobs.tmp"
        staging.write_text(
            "\n".join([_submission_line() for _ in range(3)] + ["broken{"])
            + "\n"
        )
        os.rename(staging, spool / "incoming" / "jobs.ndjson")
        results = spool / "results" / "jobs.ndjson"
        while not (
            results.exists() and len(results.read_text().splitlines()) == 4
        ):
            time.sleep(0.05)
            assert time.monotonic() - started < 120.0
        (spool / "stop").touch()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert codes == [0]
        records = [json.loads(line) for line in results.read_text().splitlines()]
        assert sum(1 for r in records if r["type"] == "result") == 3
        assert sum(1 for r in records if r["type"] == "rejected") == 1
