"""Documentation contract: the public serve + shard + core solver APIs are documented.

The CI docs job runs this module (alongside the markdown link check) so the
documentation site in ``docs/`` cannot silently rot: every public module,
class, function, method, and property of the serving layer, the sharding
subsystem, the unified solver backend layer, and the LEAST solver family
must carry a docstring, and the solver config dataclasses must describe
every field they expose.
"""

from __future__ import annotations

import dataclasses
import inspect

import pytest

import repro.core.backend as backend
import repro.core.least as least
import repro.core.least_sparse as least_sparse
import repro.obs as obs
import repro.obs.metrics as obs_metrics
import repro.obs.sinks as obs_sinks
import repro.obs.tracing as obs_tracing
import repro.serve as serve
import repro.serve.cache as serve_cache
import repro.serve.cli as serve_cli
import repro.serve.daemon as serve_daemon
import repro.serve.job as serve_job
import repro.serve.pool as serve_pool
import repro.serve.runner as serve_runner
import repro.serve.scheduler as serve_scheduler
import repro.serve.streaming as serve_streaming
import repro.serve.warm_start as serve_warm_start
import repro.shard as shard
import repro.shard.executor as shard_executor
import repro.shard.planner as shard_planner
import repro.shard.stitcher as shard_stitcher

MODULES = [
    serve,
    serve_cache,
    serve_cli,
    serve_daemon,
    serve_job,
    serve_pool,
    serve_runner,
    serve_scheduler,
    serve_streaming,
    serve_warm_start,
    shard,
    shard_executor,
    shard_planner,
    shard_stitcher,
    backend,
    least,
    least_sparse,
    obs,
    obs_metrics,
    obs_sinks,
    obs_tracing,
]

CONFIG_CLASSES = [least.LEASTConfig, least_sparse.SparseLEASTConfig]


def _public_members(module):
    """(name, object) pairs of the module's public API (``__all__`` first)."""
    names = list(getattr(module, "__all__", None) or [])
    if not names:
        names = [name for name in dir(module) if not name.startswith("_")]
    return [(name, getattr(module, name)) for name in names]


def _documented(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert _documented(module), f"module {module.__name__} has no docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_have_docstrings(module):
    missing = []
    for name, member in _public_members(module):
        if inspect.ismodule(member):
            continue
        if not (inspect.isclass(member) or callable(member)):
            continue  # data constants (e.g. SOLVER_NAMES) document themselves
        if not _documented(member):
            missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public members: {missing}"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_methods_and_properties_have_docstrings(module):
    missing = []
    for name, member in _public_members(module):
        if not inspect.isclass(member):
            continue
        for attr_name, attr in vars(member).items():
            if attr_name.startswith("_"):
                continue
            if isinstance(attr, property):
                target = attr.fget
            elif isinstance(attr, (staticmethod, classmethod)):
                target = attr.__func__
            elif inspect.isfunction(attr):
                target = attr
            else:
                continue  # dataclass fields and plain class attributes
            if not _documented(target):
                missing.append(f"{module.__name__}.{name}.{attr_name}")
    assert not missing, f"undocumented public methods/properties: {missing}"


@pytest.mark.parametrize(
    "config_class", CONFIG_CLASSES, ids=lambda c: c.__name__
)
def test_solver_configs_document_every_field(config_class):
    """Every tunable of a solver config appears in its class docstring."""
    doc = inspect.getdoc(config_class) or ""
    missing = [
        field.name
        for field in dataclasses.fields(config_class)
        if field.name not in doc
    ]
    assert not missing, (
        f"{config_class.__name__} docstring does not mention fields: {missing}"
    )


@pytest.mark.parametrize("package", [serve, shard, obs], ids=lambda m: m.__name__)
def test_package_reexports_are_documented(package):
    """Everything importable from the package is documented at the source."""
    missing = [
        name
        for name in package.__all__
        if (
            inspect.isclass(getattr(package, name))
            or callable(getattr(package, name))
        )
        and not _documented(getattr(package, name))
    ]
    assert not missing, f"undocumented {package.__name__} exports: {missing}"
