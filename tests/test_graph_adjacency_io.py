"""Tests for repro.graph.adjacency and repro.graph.io."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graph.adjacency import (
    adjacency_to_edge_list,
    binarize,
    edge_list_to_adjacency,
    threshold_matrix,
    to_dense,
    to_sparse,
)
from repro.graph.io import load_edge_list, load_graph_npz, save_edge_list, save_graph_npz


class TestConversions:
    def test_to_dense_roundtrip(self, small_dag):
        assert np.allclose(to_dense(sp.csr_matrix(small_dag)), small_dag)

    def test_to_sparse_formats(self, small_dag):
        assert to_sparse(small_dag, "csc").format == "csc"
        assert to_sparse(sp.csr_matrix(small_dag)).format == "csr"

    def test_binarize_dense(self, small_dag):
        binary = binarize(small_dag)
        assert set(np.unique(binary)) <= {0.0, 1.0}
        assert binary.sum() == 4

    def test_binarize_threshold(self, small_dag):
        binary = binarize(small_dag, threshold=1.0)
        assert binary.sum() == 2  # only |1.5| and |1.1| survive

    def test_binarize_sparse(self, small_dag):
        binary = binarize(sp.csr_matrix(small_dag), threshold=1.0)
        assert binary.nnz == 2

    def test_binarize_rejects_negative_threshold(self, small_dag):
        with pytest.raises(ValidationError):
            binarize(small_dag, threshold=-1.0)

    def test_threshold_matrix_keeps_weights(self, small_dag):
        filtered = threshold_matrix(small_dag, 1.0)
        assert filtered[0, 1] == 1.5 and filtered[1, 3] == 0.0

    def test_threshold_matrix_sparse(self, small_dag):
        filtered = threshold_matrix(sp.csr_matrix(small_dag), 1.0)
        assert filtered.nnz == 2


class TestEdgeLists:
    def test_roundtrip_indices(self, small_dag):
        edges = adjacency_to_edge_list(small_dag)
        rebuilt = edge_list_to_adjacency(edges, n_nodes=4)
        np.testing.assert_allclose(rebuilt, small_dag)

    def test_labels(self, small_dag):
        labels = ["a", "b", "c", "d"]
        edges = adjacency_to_edge_list(small_dag, labels=labels)
        assert ("a", "b", 1.5) in edges
        rebuilt = edge_list_to_adjacency(edges, labels=labels)
        np.testing.assert_allclose(rebuilt, small_dag)

    def test_sort_by_weight(self, small_dag):
        edges = adjacency_to_edge_list(small_dag, sort_by_weight=True)
        magnitudes = [abs(weight) for *_, weight in edges]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_label_length_mismatch(self, small_dag):
        with pytest.raises(ValidationError):
            adjacency_to_edge_list(small_dag, labels=["a"])

    def test_two_tuples_default_weight(self):
        matrix = edge_list_to_adjacency([(0, 1), (1, 2)], n_nodes=3)
        assert matrix[0, 1] == 1.0 and matrix[1, 2] == 1.0

    def test_bad_tuple_length(self):
        with pytest.raises(ValidationError):
            edge_list_to_adjacency([(0, 1, 2.0, 3.0)], n_nodes=2)

    def test_infer_n_nodes(self):
        matrix = edge_list_to_adjacency([(0, 4, 1.0)])
        assert matrix.shape == (5, 5)


class TestIO:
    def test_edge_list_roundtrip(self, small_dag, tmp_path):
        path = save_edge_list(small_dag, tmp_path / "graph.tsv")
        loaded = load_edge_list(path, n_nodes=4)
        np.testing.assert_allclose(loaded, small_dag)

    def test_edge_list_with_labels(self, small_dag, tmp_path):
        labels = ["n0", "n1", "n2", "n3"]
        path = save_edge_list(small_dag, tmp_path / "graph.tsv", labels=labels)
        loaded = load_edge_list(path, labels=labels)
        np.testing.assert_allclose(loaded, small_dag)

    def test_edge_list_bad_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(ValidationError):
            load_edge_list(path)

    def test_npz_roundtrip(self, small_dag, tmp_path):
        path = save_graph_npz(small_dag, tmp_path / "graph.npz", labels=["a", "b", "c", "d"])
        adjacency, labels = load_graph_npz(path)
        np.testing.assert_allclose(adjacency, small_dag)
        assert labels == ["a", "b", "c", "d"]

    def test_npz_without_labels(self, small_dag, tmp_path):
        path = save_graph_npz(sp.csr_matrix(small_dag), tmp_path / "graph.npz")
        adjacency, labels = load_graph_npz(path)
        np.testing.assert_allclose(adjacency, small_dag)
        assert labels is None

    def test_npz_label_mismatch(self, small_dag, tmp_path):
        with pytest.raises(ValidationError):
            save_graph_npz(small_dag, tmp_path / "graph.npz", labels=["a"])
