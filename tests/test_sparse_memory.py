"""Peak-memory gate of the sparse serving path: no dense ``d × d``, ever.

The acceptance contract of the CSR-end-to-end pipeline is that planning,
block solving, stitching, and warm-start alignment of a ``least_sparse``
problem never materialize a dense ``d × d`` matrix.  These tests enforce it
with a :mod:`tracemalloc` peak-allocation budget set *below the size of one
dense matrix*: at ``d = 2048`` a single float64 densification costs 32 MiB,
so any regression that densifies along the sparse path blows the budget and
fails loudly.  (numpy and scipy route array buffers through the traced
Python allocator, so tracemalloc sees them.)

The sharded solve runs inline (one worker, no deadline) so every allocation
happens in this process, under the tracer.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.dag import is_dag
from repro.serve.warm_start import WarmStartState, prepare_init
from repro.shard import ShardExecutor, ShardPlanner

D_NODES = 2048
N_COMPONENTS = 32
N_SAMPLES = 120
DENSE_MATRIX_BYTES = D_NODES * D_NODES * 8  # one float64 d×d: 32 MiB

#: Peak tracemalloc budget for the full plan→solve→stitch pass.  Set below
#: one dense d×d so a single accidental densification fails the test, with
#: headroom above the honest peak (~8 MiB) so the test is not flaky.
SOLVE_BUDGET_BYTES = 24 * 1024 * 1024
#: Alignment/damping of a carried CSR solution is O(nnz): tiny budget.
ALIGN_BUDGET_BYTES = 8 * 1024 * 1024


def _chain_problem(seed: int = 0) -> np.ndarray:
    """2048 columns in 32 independent chains — cheap, strongly correlated."""
    rng = np.random.default_rng(seed)
    per = D_NODES // N_COMPONENTS
    columns = []
    for _ in range(N_COMPONENTS):
        x = rng.normal(size=(N_SAMPLES, per))
        for i in range(1, per):
            x[:, i] += 0.8 * x[:, i - 1]
        columns.append(x)
    return np.hstack(columns)


@pytest.fixture(scope="module")
def chain_data() -> np.ndarray:
    """The shared 2048-node sample matrix (built outside the tracer)."""
    return _chain_problem()


def test_sparse_sharded_solve_stays_under_memory_budget(chain_data):
    """Plan (chunked skeleton) + solve + stitch at d=2048 stays O(edges)."""
    planner = ShardPlanner(
        skeleton_threshold=0.3,
        max_block_size=64,
        min_block_size=8,
        max_halo_size=4,
        dense_skeleton_limit=512,
        skeleton_chunk_columns=256,
    )
    executor = ShardExecutor(
        solver="least_sparse",
        config={
            "max_outer_iterations": 2,
            "max_inner_iterations": 15,
            "batch_size": 64,
            "support_max_parents": 4,
        },
        edge_threshold=0.1,
    )

    tracemalloc.start()
    try:
        plan = planner.plan(chain_data)
        result = executor.run(chain_data, plan, seed=0)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert sp.issparse(result.weights), "sparse solver must stitch to CSR"
    assert is_dag(result.weights)
    assert result.n_blocks_ok == plan.n_blocks
    assert peak < SOLVE_BUDGET_BYTES, (
        f"sparse sharded solve peaked at {peak / 2**20:.1f} MiB, over the "
        f"{SOLVE_BUDGET_BYTES / 2**20:.0f} MiB budget (one dense d×d is "
        f"{DENSE_MATRIX_BYTES / 2**20:.0f} MiB — something densified)"
    )


def test_sparse_warm_start_alignment_stays_sparse_and_small():
    """Aligning a 2048-node CSR solution across vocabularies is O(nnz)."""
    rng = np.random.default_rng(3)
    rows = rng.integers(0, D_NODES, size=4000)
    cols = rng.integers(0, D_NODES, size=4000)
    keep = rows != cols
    weights = sp.csr_matrix(
        (rng.normal(size=keep.sum()), (rows[keep], cols[keep])),
        shape=(D_NODES, D_NODES),
    )
    source = [f"n{i}" for i in range(D_NODES)]
    # Shift the vocabulary: drop 100 nodes, add 100 new ones.
    target = source[100:] + [f"new{i}" for i in range(100)]
    state = WarmStartState(weights=weights, node_names=source)

    tracemalloc.start()
    try:
        init = prepare_init(
            state, target, damping=0.5, threshold=1e-3, representation="sparse"
        )
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert sp.issparse(init)
    assert init.shape == (D_NODES, D_NODES)
    assert peak < ALIGN_BUDGET_BYTES, (
        f"CSR warm-start alignment peaked at {peak / 2**20:.1f} MiB — "
        "the sparse path must never densify"
    )
