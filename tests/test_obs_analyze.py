"""Tests for repro.obs.analyze — the trace analytics layer."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.exceptions import ValidationError
from repro.obs import (
    TraceModel,
    critical_path,
    diff_traces,
    peak_rss_by_pid,
    phase_attribution,
    queue_wait_stats,
    render_waterfall,
    self_time_by_name,
    to_chrome_trace,
    validate_trace,
    wall_clock_section,
    worker_stats,
    write_chrome_trace,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_TRACE = REPO_ROOT / "trace.ndjson"


def _span(span_id, name, start, duration, parent=None, **attributes):
    return {
        "event": "span",
        "trace_id": "t0",
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "start": float(start),
        "wall": 1000.0 + float(start),
        "duration": float(duration),
        "status": "ok",
        "attributes": attributes,
    }


def _job_tree():
    """A small synthetic job tree: root with two children and a gap."""
    return [
        _span("r", "job", 0.0, 10.0),
        _span("a", "queue_wait", 0.0, 2.0, parent="r"),
        _span("b", "worker", 3.0, 7.0, parent="r"),
        _span("c", "solve", 3.5, 6.0, parent="b"),
    ]


class TestTraceModel:
    def test_indexes_and_roots(self):
        model = TraceModel(_job_tree())
        assert len(model) == 4
        assert [s["span_id"] for s in model.roots] == ["r"]
        assert [c["span_id"] for c in model.children_of("r")] == ["a", "b"]
        assert model.node("c")["name"] == "solve"
        assert model.orphans == []

    def test_orphans_become_traversable_roots(self):
        spans = _job_tree() + [_span("x", "lost", 1.0, 1.0, parent="missing")]
        model = TraceModel(spans)
        assert len(model.orphans) == 1
        assert {s["span_id"] for s in model.roots} == {"r", "x"}

    def test_root_picks_longest_duration(self):
        spans = [_span("r1", "job", 0.0, 2.0), _span("r2", "job", 0.0, 9.0)]
        assert TraceModel(spans).root()["span_id"] == "r2"

    def test_negative_durations_clamped_and_counted(self):
        spans = _job_tree()
        spans[1]["duration"] = -0.5
        model = TraceModel(spans)
        assert model.n_clamped == 1
        assert model.node("a")["duration"] == 0.0
        assert model.node("a")["attributes"]["clamped_negative_duration"] is True
        assert wall_clock_section(model)["n_clamped_durations"] == 1

    def test_from_file_tolerates_truncated_last_line(self, tmp_path):
        # A killed writer leaves a half-flushed final line; the model must
        # load every complete span and simply drop the torn one.
        path = tmp_path / "trace.ndjson"
        lines = [json.dumps(s) for s in _job_tree()]
        path.write_text("\n".join(lines) + "\n" + lines[0][: len(lines[0]) // 2])
        model = TraceModel.from_file(path)
        assert len(model) == 4
        assert validate_trace(model.spans)["n_orphans"] == 0

    def test_from_file_splits_resource_events(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        events = [json.dumps(s) for s in _job_tree()]
        events.append(
            json.dumps(
                {
                    "event": "resource",
                    "pid": 42,
                    "role": "worker",
                    "rss_bytes": 1000,
                    "cpu_seconds": 0.5,
                    "monotonic": 4.0,
                }
            )
        )
        path.write_text("\n".join(events) + "\n")
        model = TraceModel.from_file(path)
        assert len(model) == 4
        assert len(model.resources) == 1

    def test_lanes_split_worker_descendants(self):
        spans = _job_tree()
        spans[2]["attributes"] = {"pid": 77}
        lanes = TraceModel(spans).lanes()
        assert {s["span_id"] for s in lanes["parent"]} == {"r", "a"}
        assert {s["span_id"] for s in lanes["worker-77"]} == {"b", "c"}


class TestCriticalPath:
    def test_segments_tile_root_exactly(self):
        model = TraceModel(_job_tree())
        path = critical_path(model)
        assert path.total_seconds == pytest.approx(10.0, abs=1e-9)
        # Chronological, gap-free tiling of [0, 10].
        cursor = 0.0
        for seg in path.segments:
            assert seg["start"] == pytest.approx(cursor, abs=1e-9)
            cursor = seg["end"]
        assert cursor == pytest.approx(10.0, abs=1e-9)

    def test_path_descends_into_latest_child(self):
        model = TraceModel(_job_tree())
        names = [seg["name"] for seg in critical_path(model).segments]
        # queue_wait (0-2), job gap (2-3), worker/solve, trailing edges.
        assert names[0] == "queue_wait"
        assert "solve" in names
        assert "job" in names  # the uncovered gap is root self-time

    def test_by_name_sums_to_total(self):
        model = TraceModel(_job_tree())
        path = critical_path(model)
        assert sum(path.by_name().values()) == pytest.approx(path.total_seconds)

    def test_explicit_root_by_id(self):
        model = TraceModel(_job_tree())
        path = critical_path(model, root="b")
        assert path.root["span_id"] == "b"
        assert path.total_seconds == pytest.approx(7.0)

    def test_unknown_root_raises(self):
        with pytest.raises(ValidationError):
            critical_path(TraceModel(_job_tree()), root="nope")

    def test_empty_trace_raises(self):
        with pytest.raises(ValidationError):
            critical_path(TraceModel([]))

    def test_committed_trace_total_matches_root_within_one_percent(self):
        # Acceptance criterion: on the repo's committed trace the critical
        # path total equals the root span duration within 1%.
        model = TraceModel.from_file(COMMITTED_TRACE)
        assert model.spans, "committed trace.ndjson must contain spans"
        path = critical_path(model)
        root_duration = float(path.root["duration"])
        assert root_duration > 0
        assert abs(path.total_seconds - root_duration) <= 0.01 * root_duration


class TestAttribution:
    def test_self_time_subtracts_children(self):
        totals = self_time_by_name(TraceModel(_job_tree()))
        # job: 10 total - (2 queue_wait + 7 worker) = 1 self.
        assert totals["job"] == pytest.approx(1.0)
        # worker: 7 total - 6 solve = 1 self.
        assert totals["worker"] == pytest.approx(1.0)
        assert totals["solve"] == pytest.approx(6.0)

    def test_overlapping_attempt_spans_do_not_double_count(self):
        # A requeued job: two attempt spans overlap on [2, 6].  Subtracting
        # their durations naively (4 + 4 = 8) would push the parent's self
        # time negative; the interval union (6) must be subtracted instead.
        spans = [
            _span("r", "job", 0.0, 8.0),
            _span("a1", "attempt", 0.0, 6.0, parent="r"),
            _span("a2", "attempt", 2.0, 6.0, parent="r"),
        ]
        totals = self_time_by_name(TraceModel(spans))
        assert totals["job"] == pytest.approx(0.0)  # union covers [0, 8]
        assert totals["attempt"] == pytest.approx(12.0)

    def test_child_clipped_to_parent_window(self):
        # A child overhanging its parent (clock skew) only subtracts the
        # overlap.
        spans = [
            _span("r", "job", 0.0, 4.0),
            _span("c", "solve", 3.0, 5.0, parent="r"),
        ]
        totals = self_time_by_name(TraceModel(spans))
        assert totals["job"] == pytest.approx(3.0)

    def test_phase_attribution_counts_and_totals(self):
        attribution = phase_attribution(TraceModel(_job_tree()))
        assert attribution["job"]["count"] == 1
        assert attribution["job"]["total_seconds"] == pytest.approx(10.0)
        assert attribution["job"]["self_seconds"] == pytest.approx(1.0)
        # Sorted by total, descending.
        totals = [row["total_seconds"] for row in attribution.values()]
        assert totals == sorted(totals, reverse=True)

    def test_requeued_preempted_breakdown_on_engine_trace(self):
        # End-to-end shape check: wall_clock_section on a trace that has a
        # requeued (preempted once, then succeeded) job must keep queue_wait
        # totals finite and self-times non-negative.
        spans = [
            _span("r", "job", 0.0, 20.0),
            _span("q1", "queue_wait", 0.0, 1.0, parent="r", attempt=0),
            _span("w1", "worker", 1.0, 6.0, parent="r"),
            _span("q2", "queue_wait", 7.0, 2.0, parent="r", attempt=1),
            _span("w2", "worker", 9.0, 10.0, parent="r"),
            _span("s2", "solve", 9.5, 9.0, parent="w2"),
        ]
        model = TraceModel(spans)
        section = wall_clock_section(model)
        assert section["queue_wait_seconds"] == pytest.approx(3.0)
        assert section["solve_seconds"] == pytest.approx(9.0)
        for value in self_time_by_name(model).values():
            assert value >= 0.0


class TestWorkerAndQueueStats:
    def test_worker_stats(self):
        spans = _job_tree()
        spans[2]["attributes"] = {"pid": 9}
        stats = worker_stats(TraceModel(spans))
        assert stats["n_workers"] == 1
        lane = stats["workers"]["worker-9"]
        assert lane["busy_seconds"] == pytest.approx(7.0)
        assert 0.0 < lane["utilization"] <= 1.0

    def test_queue_wait_stats(self):
        spans = [_span("r", "job", 0.0, 10.0)] + [
            _span(f"q{i}", "queue_wait", i, float(i), parent="r") for i in range(1, 5)
        ]
        stats = queue_wait_stats(TraceModel(spans))
        assert stats["count"] == 4
        assert stats["total_seconds"] == pytest.approx(10.0)
        assert stats["max"] == pytest.approx(4.0)

    def test_queue_wait_stats_empty(self):
        assert queue_wait_stats(TraceModel([]))["count"] == 0


class TestDiff:
    def _scaled(self, factor):
        return [
            _span("r", "job", 0.0, 10.0 * factor),
            _span("c", "solve", 0.0, 8.0 * factor, parent="r"),
        ]

    def test_identical_traces_no_regressions(self):
        diff = diff_traces(self._scaled(1.0), self._scaled(1.0))
        assert diff.regressions() == []
        assert all(row["delta_total"] == 0.0 for row in diff.rows)

    def test_regression_past_tolerance_detected(self):
        diff = diff_traces(self._scaled(1.0), self._scaled(2.0))
        regressions = diff.regressions(tolerance=0.25)
        assert {row["name"] for row in regressions} == {"job", "solve"}

    def test_growth_within_tolerance_passes(self):
        diff = diff_traces(self._scaled(1.0), self._scaled(1.1))
        assert diff.regressions(tolerance=0.25) == []

    def test_min_seconds_floor_ignores_tiny_spans(self):
        baseline = [_span("r", "blip", 0.0, 0.001)]
        candidate = [_span("r", "blip", 0.0, 0.01)]  # 10x but microscopic
        diff = diff_traces(baseline, candidate)
        assert diff.regressions(tolerance=0.25, min_seconds=0.05) == []
        assert diff.regressions(tolerance=0.25, min_seconds=0.0)

    def test_new_span_name_has_inf_ratio(self):
        diff = diff_traces([_span("r", "job", 0.0, 1.0)], self._scaled(1.0))
        row = next(r for r in diff.rows if r["name"] == "solve")
        assert row["ratio"] == float("inf")
        assert row["count_a"] == 0


class TestExporters:
    def test_chrome_trace_shape(self):
        spans = _job_tree()
        spans[2]["attributes"] = {"pid": 5}
        payload = to_chrome_trace(TraceModel(spans))
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 4
        assert any(e["args"].get("name") == "worker-5" for e in metadata)
        # Timestamps are µs relative to the earliest span.
        assert min(e["ts"] for e in complete) == pytest.approx(0.0)
        solve = next(e for e in complete if e["name"] == "solve")
        assert solve["dur"] == pytest.approx(6.0 * 1e6)

    def test_chrome_trace_counter_events_from_resources(self):
        resources = [
            {"event": "resource", "pid": 5, "role": "worker",
             "rss_bytes": 2_000_000, "cpu_seconds": 0.1, "monotonic": 1.0}
        ]
        payload = to_chrome_trace(TraceModel(_job_tree(), resources=resources))
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"]["rss_mb"] == pytest.approx(2.0)

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        out = write_chrome_trace(TraceModel(_job_tree()), tmp_path / "t.json")
        payload = json.loads(out.read_text())
        assert "traceEvents" in payload

    def test_waterfall_renders_and_caps(self):
        text = render_waterfall(TraceModel(_job_tree()), width=32, max_lines=2)
        lines = text.splitlines()
        assert "elided" in lines[-1]
        assert any("job" in line for line in lines)

    def test_waterfall_full(self):
        text = render_waterfall(TraceModel(_job_tree()), width=32)
        assert len(text.splitlines()) == 4


class TestResourceAccounting:
    def test_peak_rss_by_pid(self):
        events = [
            {"event": "resource", "pid": 1, "role": "worker", "rss_bytes": 100,
             "cpu_seconds": 0.1, "monotonic": 0.0},
            {"event": "resource", "pid": 1, "role": "worker", "rss_bytes": 300,
             "cpu_seconds": 0.4, "monotonic": 1.0},
            {"event": "resource", "pid": 1, "role": "worker", "rss_bytes": 200,
             "cpu_seconds": 0.5, "monotonic": 2.0},
            {"event": "span"},
        ]
        peaks = peak_rss_by_pid(events)
        assert peaks["1"]["peak_rss_bytes"] == 300
        assert peaks["1"]["cpu_seconds"] == pytest.approx(0.5)
        assert peaks["1"]["n_samples"] == 3

    def test_wall_clock_section_worker_and_parent_peaks(self):
        resources = [
            {"event": "resource", "pid": 10, "role": "parent", "rss_bytes": 900,
             "cpu_seconds": 1.0, "monotonic": 0.0},
            {"event": "resource", "pid": 11, "role": "worker", "rss_bytes": 500,
             "cpu_seconds": 0.2, "monotonic": 0.0},
            {"event": "resource", "pid": 12, "role": "worker", "rss_bytes": 700,
             "cpu_seconds": 0.3, "monotonic": 0.0},
        ]
        section = wall_clock_section(TraceModel(_job_tree(), resources=resources))
        assert section["n_sampled_processes"] == 3
        assert section["max_worker_peak_rss_bytes"] == 700
        assert section["parent_peak_rss_bytes"] == 900
        assert set(section["peak_rss_per_worker_bytes"]) == {"11", "12"}

    def test_wall_clock_section_stable_schema_without_resources(self):
        section = wall_clock_section(TraceModel(_job_tree()))
        for name in ("worker_spawn", "data_materialize", "solve", "queue_wait",
                     "cache_store", "stitch"):
            assert f"{name}_seconds" in section
        assert section["max_worker_peak_rss_bytes"] == 0
