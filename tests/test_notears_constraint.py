"""Tests for the baseline acyclicity constraints (matrix exponential / polynomial)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.notears_constraint import (
    notears_constraint,
    notears_constraint_gradient,
    notears_constraint_with_gradient,
    polynomial_constraint,
    polynomial_constraint_with_gradient,
)
from repro.graph.generation import random_dag


class TestNotearsConstraint:
    def test_zero_for_dag(self, small_dag):
        assert notears_constraint(small_dag) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_cycles(self, cyclic_matrix):
        assert notears_constraint(cyclic_matrix) > 0

    def test_zero_for_empty_graph(self):
        assert notears_constraint(np.zeros((6, 6))) == pytest.approx(0.0)

    def test_accepts_sparse_input(self, cyclic_matrix):
        dense_value = notears_constraint(cyclic_matrix)
        sparse_value = notears_constraint(sp.csr_matrix(cyclic_matrix))
        assert sparse_value == pytest.approx(dense_value)

    def test_two_cycle_closed_form(self):
        """For a 2-cycle with weights a, b: h = tr(e^S) - d where S has
        off-diagonal a², b²; tr(e^S) = 2·cosh(ab)."""
        a, b = 0.7, 1.3
        matrix = np.array([[0.0, a], [b, 0.0]])
        expected = 2.0 * np.cosh(a * b) - 2.0
        assert notears_constraint(matrix) == pytest.approx(expected, rel=1e-9)

    def test_gradient_matches_finite_differences(self, rng):
        weights = rng.normal(size=(6, 6)) * 0.6
        np.fill_diagonal(weights, 0.0)
        value, gradient = notears_constraint_with_gradient(weights)
        epsilon = 1e-6
        for _ in range(10):
            i, j = rng.integers(0, 6, size=2)
            if i == j:
                continue
            plus = weights.copy()
            plus[i, j] += epsilon
            minus = weights.copy()
            minus[i, j] -= epsilon
            finite_difference = (notears_constraint(plus) - notears_constraint(minus)) / (2 * epsilon)
            assert gradient[i, j] == pytest.approx(finite_difference, rel=1e-4, abs=1e-7)

    def test_gradient_is_zero_on_dags_with_zero_weights_elsewhere(self, small_dag):
        gradient = notears_constraint_gradient(small_dag)
        # ∇h = 2 (e^S)^T ∘ W vanishes where W = 0.
        assert np.all(gradient[small_dag == 0] == 0)


class TestPolynomialConstraint:
    def test_zero_for_dag(self, small_dag):
        assert polynomial_constraint(small_dag) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_cycles(self, cyclic_matrix):
        assert polynomial_constraint(cyclic_matrix) > 0

    def test_scaled_and_unscaled_agree_on_acyclicity(self, cyclic_matrix, small_dag):
        assert polynomial_constraint(cyclic_matrix, scale=1.0) > 0
        assert polynomial_constraint(small_dag, scale=1.0) == pytest.approx(0.0, abs=1e-9)

    def test_gradient_matches_finite_differences(self, rng):
        weights = rng.normal(size=(5, 5)) * 0.5
        np.fill_diagonal(weights, 0.0)
        value, gradient = polynomial_constraint_with_gradient(weights)
        epsilon = 1e-6
        for _ in range(10):
            i, j = rng.integers(0, 5, size=2)
            if i == j:
                continue
            plus = weights.copy()
            plus[i, j] += epsilon
            minus = weights.copy()
            minus[i, j] -= epsilon
            finite_difference = (
                polynomial_constraint(plus) - polynomial_constraint(minus)
            ) / (2 * epsilon)
            assert gradient[i, j] == pytest.approx(finite_difference, rel=1e-4, abs=1e-7)

    def test_random_dags_are_feasible(self):
        for seed in range(5):
            weights = random_dag("ER-2", 20, seed=seed)
            assert polynomial_constraint(weights) == pytest.approx(0.0, abs=1e-6)
            assert notears_constraint(weights) == pytest.approx(0.0, abs=1e-6)
