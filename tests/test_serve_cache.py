"""Tests for repro.serve.cache: fingerprints and the two cache backends."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.serve.cache import (
    DiskCache,
    InMemoryCache,
    fingerprint_array,
    fingerprint_config,
    job_fingerprint,
)
from repro.serve.job import JobResult, LearningJob


class TestFingerprints:
    def test_array_fingerprint_is_stable(self):
        array = np.arange(12.0).reshape(3, 4)
        assert fingerprint_array(array) == fingerprint_array(array.copy())

    def test_array_fingerprint_detects_value_change(self):
        array = np.arange(12.0).reshape(3, 4)
        changed = array.copy()
        changed[1, 2] += 1e-9
        assert fingerprint_array(array) != fingerprint_array(changed)

    def test_array_fingerprint_detects_shape_change(self):
        array = np.arange(12.0)
        assert fingerprint_array(array) != fingerprint_array(array.reshape(3, 4))

    def test_sparse_fingerprint_matches_regardless_of_layout(self):
        dense = np.zeros((4, 4))
        dense[0, 1] = 2.0
        dense[2, 3] = -1.0
        assert fingerprint_array(sp.csr_matrix(dense)) == fingerprint_array(
            sp.coo_matrix(dense)
        )

    def test_sparse_and_dense_fingerprints_are_distinct_spaces(self):
        dense = np.eye(3)
        assert fingerprint_array(dense) != fingerprint_array(sp.csr_matrix(dense))

    def test_config_fingerprint_is_order_insensitive(self):
        assert fingerprint_config({"a": 1, "b": 2.5}) == fingerprint_config(
            {"b": 2.5, "a": 1}
        )
        assert fingerprint_config({"a": 1}) != fingerprint_config({"a": 2})

    def test_job_fingerprint_covers_solver_config_seed_and_data(self):
        data = np.random.default_rng(0).normal(size=(20, 5))
        base = LearningJob(data=data, seed=1)
        assert job_fingerprint(base, data) == job_fingerprint(
            LearningJob(data=data.copy(), seed=1), data.copy()
        )
        assert job_fingerprint(base, data) != job_fingerprint(
            LearningJob(data=data, seed=2), data
        )
        assert job_fingerprint(base, data) != job_fingerprint(
            LearningJob(data=data, seed=1, solver="notears"), data
        )
        assert job_fingerprint(base, data) != job_fingerprint(
            LearningJob(data=data, seed=1, config={"k": 3}), data
        )

    def test_job_fingerprint_distinguishes_warm_starts(self):
        data = np.random.default_rng(0).normal(size=(20, 5))
        init = np.zeros((5, 5))
        init[0, 1] = 0.5
        cold = LearningJob(data=data, seed=1)
        warm = LearningJob(data=data, seed=1, init_weights=init)
        assert job_fingerprint(cold, data) != job_fingerprint(warm, data)


def _result(job_id: str = "job-000") -> JobResult:
    return JobResult(
        job_id=job_id,
        solver="least",
        status="ok",
        weights=np.eye(3),
        constraint_value=1e-5,
        converged=True,
        n_outer_iterations=3,
        n_inner_iterations=42,
        elapsed_seconds=0.5,
    )


KEY_A = "a" * 64
KEY_B = "b" * 64


class TestInMemoryCache:
    def test_miss_then_hit(self):
        cache = InMemoryCache()
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, _result())
        hit = cache.get(KEY_A)
        assert hit is not None and hit.n_inner_iterations == 42
        stats = cache.stats()
        assert stats["hits"] == 1.0 and stats["misses"] == 1.0
        assert stats["hit_rate"] == 0.5
        assert stats["evictions"] == 0.0 and stats["n_entries"] == 1.0

    def test_contains_and_len(self):
        cache = InMemoryCache()
        cache.put(KEY_A, _result())
        assert KEY_A in cache and KEY_B not in cache
        assert len(cache) == 1


class TestDiskCache:
    def test_round_trip_dense(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cache.put(KEY_A, _result())
        loaded = cache.get(KEY_A)
        np.testing.assert_allclose(loaded.weights, np.eye(3))
        assert loaded.converged and loaded.n_outer_iterations == 3

    def test_round_trip_sparse_weights(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = _result()
        result.weights = sp.csr_matrix(np.eye(3))
        cache.put(KEY_B, result)
        loaded = cache.get(KEY_B)
        assert sp.issparse(loaded.weights) and loaded.weights.nnz == 3

    def test_persists_across_instances(self, tmp_path):
        DiskCache(tmp_path).put(KEY_A, _result("persisted"))
        reopened = DiskCache(tmp_path)
        assert reopened.get(KEY_A).job_id == "persisted"

    def test_corrupt_entry_is_a_miss_and_is_deleted(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = tmp_path / f"{KEY_A}.pkl"
        path.write_bytes(b"not a pickle")
        assert cache.get(KEY_A) is None
        stats = cache.stats()
        assert stats["misses"] == 1.0
        assert stats["corrupt_entries"] == 1.0
        # Recovery: the corrupt file is gone, so the entry can be re-stored
        # and served again.
        assert not path.exists()
        cache.put(KEY_A, _result())
        assert cache.get(KEY_A) is not None

    def test_rejects_non_hex_keys(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(ValidationError):
            cache.put("../escape", _result())


def _hex_key(index: int) -> str:
    return format(index, "x").rjust(64, "0")


class TestInMemoryCacheEviction:
    def test_max_entries_evicts_least_recently_used(self):
        cache = InMemoryCache(max_entries=2)
        cache.put(KEY_A, _result("a"))
        cache.put(KEY_B, _result("b"))
        assert cache.get(KEY_A) is not None  # refresh A; B is now LRU
        cache.put(_hex_key(3), _result("c"))
        assert KEY_B not in cache
        assert KEY_A in cache and _hex_key(3) in cache
        assert cache.stats()["evictions"] == 1.0
        assert len(cache) == 2

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValidationError):
            InMemoryCache(max_entries=0)


class TestDiskCacheEviction:
    def _put(self, cache, index, mtime=None):
        key = _hex_key(index)
        cache.put(key, _result(f"job-{index}"))
        if mtime is not None:
            # Stamp an explicit LRU position (mtime is the recency clock).
            import os

            os.utime(cache.directory / f"{key}.pkl", (mtime, mtime))
        return key

    def test_max_entries_keeps_only_the_most_recent(self, tmp_path):
        cache = DiskCache(tmp_path, max_entries=2)
        keys = [self._put(cache, index, mtime=1000.0 + index) for index in range(4)]
        assert len(cache) == 2
        assert keys[0] not in cache and keys[1] not in cache
        assert keys[2] in cache and keys[3] in cache
        assert cache.stats()["evictions"] == 2.0
        assert cache.stats()["n_entries"] == 2.0

    def test_lru_order_respects_get_recency(self, tmp_path):
        cache = DiskCache(tmp_path, max_entries=2)
        first = self._put(cache, 1, mtime=1000.0)
        second = self._put(cache, 2, mtime=2000.0)
        # Touching the older entry via a hit makes the other one the victim.
        assert cache.get(first) is not None
        third = self._put(cache, 3)
        assert second not in cache
        assert first in cache and third in cache

    def test_contains_does_not_promote_in_lru_order(self, tmp_path):
        cache = DiskCache(tmp_path, max_entries=2)
        first = self._put(cache, 1, mtime=1000.0)
        second = self._put(cache, 2, mtime=2000.0)
        # A membership probe is not a use: the probed entry stays LRU...
        assert first in cache
        third = self._put(cache, 3)
        assert first not in cache
        assert second in cache and third in cache
        # ...and probes don't distort the hit/miss counters either.
        assert cache.stats()["hits"] == 0.0 and cache.stats()["misses"] == 0.0

    def test_max_bytes_is_enforced(self, tmp_path):
        cache = DiskCache(tmp_path, max_bytes=1)
        self._put(cache, 1)
        # A 1-byte budget cannot retain any real entry: the store itself is
        # evicted and the cache stays within bounds.
        stats = cache.stats()
        assert stats["total_bytes"] <= 1.0
        assert stats["evictions"] >= 1.0
        assert stats["bytes_evicted"] > 0.0

    def test_max_bytes_keeps_recent_entries_within_budget(self, tmp_path):
        probe = DiskCache(tmp_path / "probe")
        probe_key = _hex_key(1)
        probe.put(probe_key, _result("probe"))
        entry_size = (probe.directory / f"{probe_key}.pkl").stat().st_size

        cache = DiskCache(tmp_path / "bounded", max_bytes=2 * entry_size)
        keys = [self._put(cache, index, mtime=1000.0 + index) for index in range(1, 5)]
        stats = cache.stats()
        assert stats["total_bytes"] <= 2 * entry_size
        assert len(cache) == 2
        assert keys[-1] in cache and keys[-2] in cache

    def test_reopening_an_overgrown_directory_trims_it(self, tmp_path):
        unbounded = DiskCache(tmp_path)
        for index in range(5):
            key = _hex_key(index)
            unbounded.put(key, _result(f"job-{index}"))
            import os

            os.utime(tmp_path / f"{key}.pkl", (1000.0 + index,) * 2)
        # Re-open the same directory with tighter limits: a get-only workload
        # must still see the bound enforced, so __init__ trims immediately.
        reopened = DiskCache(tmp_path, max_entries=2)
        assert len(reopened) == 2
        assert _hex_key(4) in reopened and _hex_key(3) in reopened
        assert reopened.stats()["evictions"] == 3.0

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = DiskCache(tmp_path)
        for index in range(5):
            self._put(cache, index)
        assert len(cache) == 5
        assert cache.stats()["evictions"] == 0.0

    def test_rejects_non_positive_bounds(self, tmp_path):
        with pytest.raises(ValidationError):
            DiskCache(tmp_path, max_entries=0)
        with pytest.raises(ValidationError):
            DiskCache(tmp_path, max_bytes=0)
