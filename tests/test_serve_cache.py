"""Tests for repro.serve.cache: fingerprints and the two cache backends."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.serve.cache import (
    DiskCache,
    InMemoryCache,
    fingerprint_array,
    fingerprint_config,
    job_fingerprint,
)
from repro.serve.job import JobResult, LearningJob


class TestFingerprints:
    def test_array_fingerprint_is_stable(self):
        array = np.arange(12.0).reshape(3, 4)
        assert fingerprint_array(array) == fingerprint_array(array.copy())

    def test_array_fingerprint_detects_value_change(self):
        array = np.arange(12.0).reshape(3, 4)
        changed = array.copy()
        changed[1, 2] += 1e-9
        assert fingerprint_array(array) != fingerprint_array(changed)

    def test_array_fingerprint_detects_shape_change(self):
        array = np.arange(12.0)
        assert fingerprint_array(array) != fingerprint_array(array.reshape(3, 4))

    def test_sparse_fingerprint_matches_regardless_of_layout(self):
        dense = np.zeros((4, 4))
        dense[0, 1] = 2.0
        dense[2, 3] = -1.0
        assert fingerprint_array(sp.csr_matrix(dense)) == fingerprint_array(
            sp.coo_matrix(dense)
        )

    def test_sparse_and_dense_fingerprints_are_distinct_spaces(self):
        dense = np.eye(3)
        assert fingerprint_array(dense) != fingerprint_array(sp.csr_matrix(dense))

    def test_config_fingerprint_is_order_insensitive(self):
        assert fingerprint_config({"a": 1, "b": 2.5}) == fingerprint_config(
            {"b": 2.5, "a": 1}
        )
        assert fingerprint_config({"a": 1}) != fingerprint_config({"a": 2})

    def test_job_fingerprint_covers_solver_config_seed_and_data(self):
        data = np.random.default_rng(0).normal(size=(20, 5))
        base = LearningJob(data=data, seed=1)
        assert job_fingerprint(base, data) == job_fingerprint(
            LearningJob(data=data.copy(), seed=1), data.copy()
        )
        assert job_fingerprint(base, data) != job_fingerprint(
            LearningJob(data=data, seed=2), data
        )
        assert job_fingerprint(base, data) != job_fingerprint(
            LearningJob(data=data, seed=1, solver="notears"), data
        )
        assert job_fingerprint(base, data) != job_fingerprint(
            LearningJob(data=data, seed=1, config={"k": 3}), data
        )

    def test_job_fingerprint_distinguishes_warm_starts(self):
        data = np.random.default_rng(0).normal(size=(20, 5))
        init = np.zeros((5, 5))
        init[0, 1] = 0.5
        cold = LearningJob(data=data, seed=1)
        warm = LearningJob(data=data, seed=1, init_weights=init)
        assert job_fingerprint(cold, data) != job_fingerprint(warm, data)


def _result(job_id: str = "job-000") -> JobResult:
    return JobResult(
        job_id=job_id,
        solver="least",
        status="ok",
        weights=np.eye(3),
        constraint_value=1e-5,
        converged=True,
        n_outer_iterations=3,
        n_inner_iterations=42,
        elapsed_seconds=0.5,
    )


KEY_A = "a" * 64
KEY_B = "b" * 64


class TestInMemoryCache:
    def test_miss_then_hit(self):
        cache = InMemoryCache()
        assert cache.get(KEY_A) is None
        cache.put(KEY_A, _result())
        hit = cache.get(KEY_A)
        assert hit is not None and hit.n_inner_iterations == 42
        assert cache.stats() == {"hits": 1.0, "misses": 1.0, "hit_rate": 0.5}

    def test_contains_and_len(self):
        cache = InMemoryCache()
        cache.put(KEY_A, _result())
        assert KEY_A in cache and KEY_B not in cache
        assert len(cache) == 1


class TestDiskCache:
    def test_round_trip_dense(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        cache.put(KEY_A, _result())
        loaded = cache.get(KEY_A)
        np.testing.assert_allclose(loaded.weights, np.eye(3))
        assert loaded.converged and loaded.n_outer_iterations == 3

    def test_round_trip_sparse_weights(self, tmp_path):
        cache = DiskCache(tmp_path)
        result = _result()
        result.weights = sp.csr_matrix(np.eye(3))
        cache.put(KEY_B, result)
        loaded = cache.get(KEY_B)
        assert sp.issparse(loaded.weights) and loaded.weights.nnz == 3

    def test_persists_across_instances(self, tmp_path):
        DiskCache(tmp_path).put(KEY_A, _result("persisted"))
        reopened = DiskCache(tmp_path)
        assert reopened.get(KEY_A).job_id == "persisted"

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        (tmp_path / f"{KEY_A}.pkl").write_bytes(b"not a pickle")
        assert cache.get(KEY_A) is None
        assert cache.stats()["misses"] == 1.0

    def test_rejects_non_hex_keys(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(ValidationError):
            cache.put("../escape", _result())
