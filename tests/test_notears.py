"""Tests for the NOTEARS baseline solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model_selection import grid_search_threshold
from repro.core.notears import NOTEARS, NOTEARSConfig
from repro.core.notears_constraint import notears_constraint
from repro.exceptions import ValidationError
from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem


class TestNOTEARSConfig:
    def test_defaults_valid(self):
        NOTEARSConfig()

    def test_invalid_solver_rejected(self):
        with pytest.raises(ValidationError):
            NOTEARSConfig(inner_solver="newton")

    def test_invalid_penalty_rejected(self):
        with pytest.raises(ValidationError):
            NOTEARSConfig(l1_penalty=-1.0)


class TestNOTEARSLBFGS:
    def test_recovers_small_er2_graph(self):
        truth = random_dag("ER-2", 15, seed=0)
        data = simulate_linear_sem(truth, 300, seed=1)
        config = NOTEARSConfig(l1_penalty=0.1, max_outer_iterations=12, max_inner_iterations=80)
        result = NOTEARS(config).fit(data, seed=2)
        search = grid_search_threshold(result.weights, truth)
        assert search.best_f1 >= 0.7

    def test_final_constraint_is_small(self, er2_problem):
        config = NOTEARSConfig(max_outer_iterations=12, max_inner_iterations=60, tolerance=1e-6)
        result = NOTEARS(config).fit(er2_problem["data"], seed=0)
        assert notears_constraint(result.weights) <= 1e-4

    def test_diagonal_stays_zero(self, er2_problem):
        config = NOTEARSConfig(max_outer_iterations=4, max_inner_iterations=40)
        result = NOTEARS(config).fit(er2_problem["data"], seed=0)
        np.testing.assert_allclose(np.diag(result.weights), 0.0, atol=1e-10)

    def test_log_records_h_per_outer_iteration(self, er2_problem):
        config = NOTEARSConfig(max_outer_iterations=3, max_inner_iterations=40, tolerance=1e-12)
        result = NOTEARS(config).fit(er2_problem["data"], seed=0)
        assert len(result.log) == result.n_outer_iterations
        assert np.all(np.isfinite(result.log.column("h")))


class TestNOTEARSAdam:
    def test_adam_variant_runs_and_reduces_constraint(self, er2_problem):
        config = NOTEARSConfig(
            inner_solver="adam",
            max_outer_iterations=5,
            max_inner_iterations=150,
            learning_rate=0.02,
            tolerance=1e-3,
        )
        result = NOTEARS(config).fit(er2_problem["data"], seed=0)
        h_trace = result.log.column("h")
        assert h_trace[-1] <= h_trace[0]

    def test_rejects_bad_data(self):
        with pytest.raises(ValidationError):
            NOTEARS().fit(np.zeros(5))
