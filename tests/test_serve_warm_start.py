"""Tests for warm starts: alignment, solver init_weights, and the scheduler."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.least import LEAST, LEASTConfig
from repro.core.least_sparse import SparseLEAST, SparseLEASTConfig
from repro.exceptions import ValidationError
from repro.serve.scheduler import RelearnScheduler
from repro.serve.warm_start import (
    WarmStartState,
    align_weights,
    damp_weights,
    prepare_init,
)


class TestAlignWeights:
    def test_identity_when_vocabularies_match(self):
        weights = np.arange(9.0).reshape(3, 3)
        aligned = align_weights(weights, ["a", "b", "c"], ["a", "b", "c"])
        np.testing.assert_array_equal(aligned, weights)

    def test_permutation(self):
        weights = np.zeros((2, 2))
        weights[0, 1] = 3.0
        aligned = align_weights(weights, ["a", "b"], ["b", "a"])
        assert aligned[1, 0] == 3.0 and aligned[0, 1] == 0.0

    def test_new_nodes_start_at_zero_and_vanished_edges_drop(self):
        weights = np.zeros((2, 2))
        weights[0, 1] = 1.5
        aligned = align_weights(weights, ["a", "b"], ["b", "c"])
        assert aligned.shape == (2, 2)
        np.testing.assert_array_equal(aligned, np.zeros((2, 2)))

    def test_partial_overlap_copies_shared_block(self):
        weights = np.zeros((3, 3))
        weights[0, 1] = 1.0  # a -> b survives
        weights[1, 2] = 2.0  # b -> c drops (c vanishes)
        aligned = align_weights(weights, ["a", "b", "c"], ["b", "d", "a"])
        assert aligned[2, 0] == 1.0  # a -> b at new positions
        assert np.count_nonzero(aligned) == 1

    def test_accepts_sparse_input(self):
        weights = sp.csr_matrix(np.diag([0.0, 0.0]) + np.array([[0, 2.0], [0, 0]]))
        aligned = align_weights(weights, ["a", "b"], ["a", "b"])
        assert aligned[0, 1] == 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            align_weights(np.zeros((2, 2)), ["a", "b", "c"], ["a"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            align_weights(np.zeros((2, 2)), ["a", "a"], ["a", "b"])
        with pytest.raises(ValidationError):
            align_weights(np.zeros((2, 2)), ["a", "b"], ["a", "a"])


class TestDampWeights:
    def test_scales_and_thresholds(self):
        weights = np.array([[0.0, 1.0], [0.05, 0.0]])
        damped = damp_weights(weights, damping=0.5, threshold=0.1)
        assert damped[0, 1] == 0.5
        assert damped[1, 0] == 0.0

    def test_clears_diagonal(self):
        damped = damp_weights(np.eye(3), damping=1.0)
        np.testing.assert_array_equal(damped, np.zeros((3, 3)))

    def test_validates_damping(self):
        with pytest.raises(ValidationError):
            damp_weights(np.zeros((2, 2)), damping=1.5)


class TestPrepareInit:
    def test_none_without_state(self):
        assert prepare_init(None, ["a"]) is None

    def test_none_when_overlap_too_small(self):
        state = WarmStartState(np.zeros((2, 2)), ["a", "b"])
        assert prepare_init(state, ["c", "d"], min_shared=1) is None

    def test_builds_aligned_damped_init(self):
        weights = np.zeros((2, 2))
        weights[0, 1] = 2.0
        state = WarmStartState(weights, ["a", "b"])
        init = prepare_init(state, ["b", "a"], damping=0.5)
        assert init[1, 0] == 1.0


class TestSolverInitWeights:
    def test_least_accepts_and_validates_init(self, er2_problem):
        config = LEASTConfig(max_outer_iterations=2, max_inner_iterations=30)
        data = er2_problem["data"]
        d = data.shape[1]
        cold = LEAST(config).fit(data, seed=0)
        warm = LEAST(config).fit(data, seed=0, init_weights=cold.weights)
        assert warm.weights.shape == (d, d)
        with pytest.raises(ValidationError):
            LEAST(config).fit(data, seed=0, init_weights=np.zeros((d + 1, d + 1)))
        with pytest.raises(ValidationError):
            LEAST(config).fit(data, seed=0, init_weights=np.full((d, d), np.nan))

    def test_least_config_init_weights_field(self, er2_problem):
        data = er2_problem["data"]
        d = data.shape[1]
        init = np.zeros((d, d))
        init[0, 1] = 0.3
        config = LEASTConfig(
            max_outer_iterations=1, max_inner_iterations=1, init_weights=init
        )
        result = LEAST(config).fit(data, seed=0)
        assert result.weights.shape == (d, d)
        with pytest.raises(ValidationError):
            LEASTConfig(init_weights=np.zeros((2, 3)))

    def test_least_warm_start_converges_to_equivalent_solution(self, er2_problem):
        """Warm-starting from a converged solution recovers the same structure."""
        data = er2_problem["data"]
        config = LEASTConfig(max_outer_iterations=6, max_inner_iterations=200)
        cold = LEAST(config).fit(data, seed=0)
        warm = LEAST(config).fit(data, seed=1, init_weights=cold.weights)
        strong = np.abs(cold.weights) > 0.3
        assert strong.sum() > 0
        # Every strong cold edge survives in the warm solution with the same
        # sign and non-negligible magnitude...
        assert np.all(np.sign(warm.weights[strong]) == np.sign(cold.weights[strong]))
        assert np.all(np.abs(warm.weights[strong]) > 0.1)
        # ...and the strong-edge sets of the two solutions largely coincide.
        cold_edges = set(zip(*np.where(strong)))
        warm_edges = set(zip(*np.where(np.abs(warm.weights) > 0.3)))
        jaccard = len(cold_edges & warm_edges) / len(cold_edges | warm_edges)
        assert jaccard >= 0.6

    def test_least_tracks_inner_iterations(self, er2_problem):
        config = LEASTConfig(max_outer_iterations=2, max_inner_iterations=30)
        result = LEAST(config).fit(er2_problem["data"], seed=0)
        assert 1 <= result.n_inner_iterations <= 60
        assert result.n_inner_iterations == int(
            result.log.column("inner_iterations").sum()
        )

    def test_sparse_least_accepts_dense_and_sparse_init(self, er2_problem):
        data = er2_problem["data"]
        d = data.shape[1]
        config = SparseLEASTConfig(
            max_outer_iterations=2, max_inner_iterations=30, init_density=0.05
        )
        dense_init = np.zeros((d, d))
        dense_init[0, 1] = 0.4
        dense_init[2, 3] = -0.2
        result = SparseLEAST(config).fit(data, seed=0, init_weights=dense_init)
        assert sp.issparse(result.weights)
        assert result.n_inner_iterations >= 1
        sparse_init = sp.csr_matrix(dense_init)
        result2 = SparseLEAST(config).fit(data, seed=0, init_weights=sparse_init)
        np.testing.assert_allclose(
            result.weights.toarray(), result2.weights.toarray()
        )

    def test_sparse_least_rejects_both_inits(self, er2_problem):
        data = er2_problem["data"]
        d = data.shape[1]
        init = sp.csr_matrix((d, d))
        with pytest.raises(ValidationError):
            SparseLEAST().fit(data, initial_support=init, init_weights=init)


class TestRelearnScheduler:
    def _window(self, seed: int, d: int = 8, n: int = 120):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(n, d)), [f"x{i}" for i in range(d)]

    def test_first_window_is_cold_then_warm(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=2, max_inner_iterations=30)
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.step(data, names, seed=0)
        assert [s.warm_started for s in scheduler.history] == [False, True]
        assert scheduler.history[1].n_shared_nodes == len(names)

    def test_warm_windows_use_reduced_inner_budget(self):
        config = LEASTConfig(max_outer_iterations=2, max_inner_iterations=40)
        scheduler = RelearnScheduler(config, warm_inner_scale=0.5)
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.step(data, names, seed=0)
        cold, warm = scheduler.history
        assert warm.n_inner_iterations <= cold.n_inner_iterations
        assert warm.n_inner_iterations <= 2 * 20

    def test_vocabulary_change_falls_back_to_cold(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=1, max_inner_iterations=10),
            min_shared_nodes=2,
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        other_data, other_names = self._window(1)
        scheduler.step(other_data, [f"y{i}" for i in range(8)], seed=0)
        assert scheduler.history[1].warm_started is False

    def test_warm_start_disabled(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=1, max_inner_iterations=10),
            warm_start=False,
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.step(data, names, seed=0)
        assert all(not s.warm_started for s in scheduler.history)

    def test_reset_clears_state(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=1, max_inner_iterations=10)
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.reset()
        assert scheduler.state is None and scheduler.history == []
        scheduler.step(data, names, seed=0)
        assert scheduler.history[0].warm_started is False

    def test_stats_summary_totals(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=1, max_inner_iterations=10)
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.step(data, names, seed=0)
        summary = scheduler.stats_summary()
        assert summary["n_windows"] == 2.0
        assert summary["n_warm_windows"] == 1.0
        assert summary["total_inner_iterations"] >= 2.0

    def test_validates_warm_inner_scale(self):
        with pytest.raises(ValidationError):
            RelearnScheduler(warm_inner_scale=0.0)
        with pytest.raises(ValidationError):
            RelearnScheduler(warm_inner_scale=1.5)


class TestPipelineWarmStart:
    def test_pipeline_exposes_window_stats(self):
        from repro.monitoring import BookingSimulator, MonitoringPipeline

        simulator = BookingSimulator(seed=3)
        pipeline = MonitoringPipeline(
            simulator,
            window_seconds=900.0,
            least_config=LEASTConfig(
                max_outer_iterations=2,
                max_inner_iterations=40,
                l1_penalty=0.02,
                tolerance=1e-3,
            ),
        )
        pipeline.run(3, seed=5)
        # Window 0 establishes the baseline without learning; windows 1-2 learn.
        assert len(pipeline.window_stats) == 2
        assert pipeline.window_stats[0].warm_started is False
        assert pipeline.window_stats[1].warm_started is True
        summary = pipeline.solver_summary()
        assert summary["n_windows"] == 2.0
        assert summary["n_warm_windows"] == 1.0
