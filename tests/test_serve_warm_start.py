"""Tests for warm starts: alignment, solver init_weights, and the scheduler."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.least import LEAST, LEASTConfig
from repro.core.least_sparse import SparseLEAST, SparseLEASTConfig
from repro.exceptions import ValidationError
from repro.serve.scheduler import RelearnScheduler
from repro.serve.warm_start import (
    WarmStartState,
    align_weights,
    damp_weights,
    prepare_init,
)


class TestAlignWeights:
    def test_identity_when_vocabularies_match(self):
        weights = np.arange(9.0).reshape(3, 3)
        aligned = align_weights(weights, ["a", "b", "c"], ["a", "b", "c"])
        np.testing.assert_array_equal(aligned, weights)

    def test_permutation(self):
        weights = np.zeros((2, 2))
        weights[0, 1] = 3.0
        aligned = align_weights(weights, ["a", "b"], ["b", "a"])
        assert aligned[1, 0] == 3.0 and aligned[0, 1] == 0.0

    def test_new_nodes_start_at_zero_and_vanished_edges_drop(self):
        weights = np.zeros((2, 2))
        weights[0, 1] = 1.5
        aligned = align_weights(weights, ["a", "b"], ["b", "c"])
        assert aligned.shape == (2, 2)
        np.testing.assert_array_equal(aligned, np.zeros((2, 2)))

    def test_partial_overlap_copies_shared_block(self):
        weights = np.zeros((3, 3))
        weights[0, 1] = 1.0  # a -> b survives
        weights[1, 2] = 2.0  # b -> c drops (c vanishes)
        aligned = align_weights(weights, ["a", "b", "c"], ["b", "d", "a"])
        assert aligned[2, 0] == 1.0  # a -> b at new positions
        assert np.count_nonzero(aligned) == 1

    def test_accepts_sparse_input(self):
        weights = sp.csr_matrix(np.diag([0.0, 0.0]) + np.array([[0, 2.0], [0, 0]]))
        aligned = align_weights(weights, ["a", "b"], ["a", "b"])
        assert aligned[0, 1] == 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            align_weights(np.zeros((2, 2)), ["a", "b", "c"], ["a"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            align_weights(np.zeros((2, 2)), ["a", "a"], ["a", "b"])
        with pytest.raises(ValidationError):
            align_weights(np.zeros((2, 2)), ["a", "b"], ["a", "a"])


class TestDampWeights:
    def test_scales_and_thresholds(self):
        weights = np.array([[0.0, 1.0], [0.05, 0.0]])
        damped = damp_weights(weights, damping=0.5, threshold=0.1)
        assert damped[0, 1] == 0.5
        assert damped[1, 0] == 0.0

    def test_clears_diagonal(self):
        damped = damp_weights(np.eye(3), damping=1.0)
        np.testing.assert_array_equal(damped, np.zeros((3, 3)))

    def test_validates_damping(self):
        with pytest.raises(ValidationError):
            damp_weights(np.zeros((2, 2)), damping=1.5)


class TestPrepareInit:
    def test_none_without_state(self):
        assert prepare_init(None, ["a"]) is None

    def test_none_when_overlap_too_small(self):
        state = WarmStartState(np.zeros((2, 2)), ["a", "b"])
        assert prepare_init(state, ["c", "d"], min_shared=1) is None

    def test_builds_aligned_damped_init(self):
        weights = np.zeros((2, 2))
        weights[0, 1] = 2.0
        state = WarmStartState(weights, ["a", "b"])
        init = prepare_init(state, ["b", "a"], damping=0.5)
        assert init[1, 0] == 1.0


class TestSolverInitWeights:
    def test_least_accepts_and_validates_init(self, er2_problem):
        config = LEASTConfig(max_outer_iterations=2, max_inner_iterations=30)
        data = er2_problem["data"]
        d = data.shape[1]
        cold = LEAST(config).fit(data, seed=0)
        warm = LEAST(config).fit(data, seed=0, init_weights=cold.weights)
        assert warm.weights.shape == (d, d)
        with pytest.raises(ValidationError):
            LEAST(config).fit(data, seed=0, init_weights=np.zeros((d + 1, d + 1)))
        with pytest.raises(ValidationError):
            LEAST(config).fit(data, seed=0, init_weights=np.full((d, d), np.nan))

    def test_least_config_init_weights_field(self, er2_problem):
        data = er2_problem["data"]
        d = data.shape[1]
        init = np.zeros((d, d))
        init[0, 1] = 0.3
        config = LEASTConfig(
            max_outer_iterations=1, max_inner_iterations=1, init_weights=init
        )
        result = LEAST(config).fit(data, seed=0)
        assert result.weights.shape == (d, d)
        with pytest.raises(ValidationError):
            LEASTConfig(init_weights=np.zeros((2, 3)))

    def test_least_warm_start_converges_to_equivalent_solution(self, er2_problem):
        """Warm-starting from a converged solution recovers the same structure."""
        data = er2_problem["data"]
        config = LEASTConfig(max_outer_iterations=6, max_inner_iterations=200)
        cold = LEAST(config).fit(data, seed=0)
        warm = LEAST(config).fit(data, seed=1, init_weights=cold.weights)
        strong = np.abs(cold.weights) > 0.3
        assert strong.sum() > 0
        # Every strong cold edge survives in the warm solution with the same
        # sign and non-negligible magnitude...
        assert np.all(np.sign(warm.weights[strong]) == np.sign(cold.weights[strong]))
        assert np.all(np.abs(warm.weights[strong]) > 0.1)
        # ...and the strong-edge sets of the two solutions largely coincide.
        cold_edges = set(zip(*np.where(strong)))
        warm_edges = set(zip(*np.where(np.abs(warm.weights) > 0.3)))
        jaccard = len(cold_edges & warm_edges) / len(cold_edges | warm_edges)
        assert jaccard >= 0.6

    def test_least_tracks_inner_iterations(self, er2_problem):
        config = LEASTConfig(max_outer_iterations=2, max_inner_iterations=30)
        result = LEAST(config).fit(er2_problem["data"], seed=0)
        assert 1 <= result.n_inner_iterations <= 60
        assert result.n_inner_iterations == int(
            result.log.column("inner_iterations").sum()
        )

    def test_sparse_least_accepts_dense_and_sparse_init(self, er2_problem):
        data = er2_problem["data"]
        d = data.shape[1]
        config = SparseLEASTConfig(
            max_outer_iterations=2, max_inner_iterations=30, init_density=0.05
        )
        dense_init = np.zeros((d, d))
        dense_init[0, 1] = 0.4
        dense_init[2, 3] = -0.2
        result = SparseLEAST(config).fit(data, seed=0, init_weights=dense_init)
        assert sp.issparse(result.weights)
        assert result.n_inner_iterations >= 1
        sparse_init = sp.csr_matrix(dense_init)
        result2 = SparseLEAST(config).fit(data, seed=0, init_weights=sparse_init)
        np.testing.assert_allclose(
            result.weights.toarray(), result2.weights.toarray()
        )

    def test_sparse_least_rejects_both_inits(self, er2_problem):
        data = er2_problem["data"]
        d = data.shape[1]
        init = sp.csr_matrix((d, d))
        with pytest.raises(ValidationError):
            SparseLEAST().fit(data, initial_support=init, init_weights=init)


class TestRelearnScheduler:
    def _window(self, seed: int, d: int = 8, n: int = 120):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(n, d)), [f"x{i}" for i in range(d)]

    def test_first_window_is_cold_then_warm(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=2, max_inner_iterations=30)
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.step(data, names, seed=0)
        assert [s.warm_started for s in scheduler.history] == [False, True]
        assert scheduler.history[1].n_shared_nodes == len(names)

    def test_warm_windows_use_reduced_inner_budget(self):
        config = LEASTConfig(max_outer_iterations=2, max_inner_iterations=40)
        scheduler = RelearnScheduler(config, warm_inner_scale=0.5)
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.step(data, names, seed=0)
        cold, warm = scheduler.history
        assert warm.n_inner_iterations <= cold.n_inner_iterations
        assert warm.n_inner_iterations <= 2 * 20

    def test_vocabulary_change_falls_back_to_cold(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=1, max_inner_iterations=10),
            min_shared_nodes=2,
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        other_data, other_names = self._window(1)
        scheduler.step(other_data, [f"y{i}" for i in range(8)], seed=0)
        assert scheduler.history[1].warm_started is False

    def test_warm_start_disabled(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=1, max_inner_iterations=10),
            warm_start=False,
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.step(data, names, seed=0)
        assert all(not s.warm_started for s in scheduler.history)

    def test_reset_clears_state(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=1, max_inner_iterations=10)
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.reset()
        assert scheduler.state is None and scheduler.history == []
        scheduler.step(data, names, seed=0)
        assert scheduler.history[0].warm_started is False

    def test_stats_summary_totals(self):
        scheduler = RelearnScheduler(
            LEASTConfig(max_outer_iterations=1, max_inner_iterations=10)
        )
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        scheduler.step(data, names, seed=0)
        summary = scheduler.stats_summary()
        assert summary["n_windows"] == 2.0
        assert summary["n_warm_windows"] == 1.0
        assert summary["total_inner_iterations"] >= 2.0

    def test_validates_warm_inner_scale(self):
        with pytest.raises(ValidationError):
            RelearnScheduler(warm_inner_scale=0.0)
        with pytest.raises(ValidationError):
            RelearnScheduler(warm_inner_scale=1.5)


class TestPipelineWarmStart:
    def test_pipeline_exposes_window_stats(self):
        from repro.monitoring import BookingSimulator, MonitoringPipeline

        simulator = BookingSimulator(seed=3)
        pipeline = MonitoringPipeline(
            simulator,
            window_seconds=900.0,
            least_config=LEASTConfig(
                max_outer_iterations=2,
                max_inner_iterations=40,
                l1_penalty=0.02,
                tolerance=1e-3,
            ),
        )
        pipeline.run(3, seed=5)
        # Window 0 establishes the baseline without learning; windows 1-2 learn.
        assert len(pipeline.window_stats) == 2
        assert pipeline.window_stats[0].warm_started is False
        assert pipeline.window_stats[1].warm_started is True
        summary = pipeline.solver_summary()
        assert summary["n_windows"] == 2.0
        assert summary["n_warm_windows"] == 1.0


class TestRepresentationRoundTrips:
    """CSR↔dense warm-start alignment under vocabulary growth/shrinkage."""

    def _weighted(self, d: int, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=(d, d)) * (rng.random((d, d)) < 0.2)
        np.fill_diagonal(weights, 0.0)
        return weights

    def test_sparse_alignment_matches_dense_alignment(self):
        dense = self._weighted(6)
        source = [f"n{i}" for i in range(6)]
        target = ["n4", "n1", "new0", "n2", "new1"]  # shrink + grow + permute
        aligned_dense = align_weights(dense, source, target)
        aligned_sparse = align_weights(sp.csr_matrix(dense), source, target)
        assert sp.issparse(aligned_sparse)
        np.testing.assert_allclose(aligned_sparse.toarray(), aligned_dense)

    def test_damp_weights_sparse_matches_dense(self):
        dense = self._weighted(5, seed=1)
        damped_dense = damp_weights(dense, damping=0.5, threshold=0.2)
        damped_sparse = damp_weights(sp.csr_matrix(dense), damping=0.5, threshold=0.2)
        assert sp.issparse(damped_sparse)
        np.testing.assert_allclose(damped_sparse.toarray(), damped_dense)

    def test_dense_state_to_sparse_init_under_growth(self):
        dense = self._weighted(4, seed=2)
        state = WarmStartState(weights=dense, node_names=["a", "b", "c", "d"])
        target = ["b", "a", "c", "d", "e", "f"]  # two new nodes appear
        init = prepare_init(state, target, damping=1.0, representation="sparse")
        assert sp.issparse(init) and init.shape == (6, 6)
        reference = prepare_init(state, target, damping=1.0, representation="dense")
        np.testing.assert_allclose(init.toarray(), reference)

    def test_sparse_state_to_dense_init_under_shrinkage(self):
        dense = self._weighted(6, seed=3)
        state = WarmStartState(
            weights=sp.csr_matrix(dense), node_names=[f"n{i}" for i in range(6)]
        )
        target = ["n5", "n0", "n3"]  # half the vocabulary vanishes
        init = prepare_init(state, target, damping=0.9, representation="dense")
        assert isinstance(init, np.ndarray) and init.shape == (3, 3)
        # Entries survive at their re-indexed positions, damped.
        assert init[1, 2] == pytest.approx(dense[0, 3] * 0.9)

    def test_round_trip_preserves_values(self):
        """dense → CSR → dense across two vocabulary changes is lossless."""
        dense = self._weighted(5, seed=4)
        names = [f"n{i}" for i in range(5)]
        state = WarmStartState(weights=dense, node_names=names)
        grown = names + ["extra0", "extra1"]
        as_sparse = prepare_init(state, grown, damping=1.0, representation="sparse")
        back = prepare_init(
            WarmStartState(weights=as_sparse, node_names=grown),
            names,
            damping=1.0,
            representation="dense",
        )
        np.testing.assert_allclose(back, dense)

    def test_invalid_representation_rejected(self):
        state = WarmStartState(weights=np.zeros((2, 2)), node_names=["a", "b"])
        with pytest.raises(ValidationError):
            prepare_init(state, ["a", "b"], representation="csr")


class TestSchedulerSparseEscalation:
    """The scheduler's solver knob, auto-escalation, and stitched-seed path."""

    def _window(self, seed: int, d: int = 24, n: int = 150):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(n, d))
        for i in range(1, d):
            data[:, i] += 0.5 * data[:, i - 1]
        return data, [f"x{i}" for i in range(d)]

    def _scheduler(self, **kwargs):
        from repro.core.least_sparse import SparseLEASTConfig

        return RelearnScheduler(
            LEASTConfig(max_outer_iterations=2, max_inner_iterations=30),
            sparse_config=SparseLEASTConfig(
                max_outer_iterations=2,
                max_inner_iterations=30,
                support="correlation",
                support_max_parents=4,
            ),
            **kwargs,
        )

    def test_escalates_above_threshold_and_deescalates_below(self):
        scheduler = self._scheduler(sparse_vocabulary_threshold=20)
        data, names = self._window(0)
        big = scheduler.step(data, names, seed=0)
        assert scheduler.history[-1].solver == "least_sparse"
        assert sp.issparse(big.weights)
        small = scheduler.step(data[:, :8], names[:8], seed=0)
        stats = scheduler.history[-1]
        assert stats.solver == "least"
        assert stats.warm_started  # CSR state seeded the dense re-learn
        assert isinstance(small.weights, np.ndarray)

    def test_dense_state_seeds_sparse_window(self):
        scheduler = self._scheduler(sparse_vocabulary_threshold=20)
        data, names = self._window(1)
        scheduler.step(data[:, :8], names[:8], seed=0)  # dense first
        assert scheduler.history[-1].solver == "least"
        result = scheduler.step(data, names, seed=0)  # grows past threshold
        stats = scheduler.history[-1]
        assert stats.solver == "least_sparse"
        assert stats.warm_started
        assert sp.issparse(result.weights)

    def test_sharded_sparse_window_stitch_seeds_warm_start(self):
        """shard + sparse escalation: the CSR stitched result seeds the next
        (dense, monolithic) window's warm start."""
        scheduler = self._scheduler(
            sparse_vocabulary_threshold=20,
            shard_vocabulary_threshold=20,
            shard_edge_threshold=0.05,
        )
        data, names = self._window(2)
        stitched = scheduler.step(data, names, seed=0)
        stats = scheduler.history[-1]
        assert stats.sharded and stats.solver == "least_sparse"
        assert sp.issparse(stitched.weights)
        assert sp.issparse(scheduler.state.weights)

        follow_up = scheduler.step(data[:, :8], names[:8], seed=0)
        stats = scheduler.history[-1]
        assert not stats.sharded and stats.solver == "least"
        assert stats.warm_started
        assert isinstance(follow_up.weights, np.ndarray)

    def test_solver_knob_accepts_sparse_outright(self):
        scheduler = self._scheduler(solver="least_sparse")
        data, names = self._window(3, d=10)
        result = scheduler.step(data, names, seed=0)
        assert scheduler.history[-1].solver == "least_sparse"
        assert sp.issparse(result.weights)
        assert sp.issparse(scheduler.state.weights)

    def test_unknown_solver_rejected_up_front(self):
        with pytest.raises(ValidationError):
            RelearnScheduler(solver="leest")

    def test_window_stats_record_solver_in_dict(self):
        scheduler = self._scheduler(sparse_vocabulary_threshold=20)
        data, names = self._window(4)
        scheduler.step(data, names, seed=0)
        assert scheduler.history[-1].as_dict()["solver"] == "least_sparse"


class TestSchedulerBackendEdgeCases:
    """Regression tests: non-warm-startable and custom backends in the loop."""

    def _window(self, seed: int, d: int = 6, n: int = 80):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(n, d)), [f"x{i}" for i in range(d)]

    def test_notears_windows_never_receive_init_weights(self):
        scheduler = RelearnScheduler(solver="notears")
        data, names = self._window(0)
        scheduler.step(data, names, seed=0)
        result = scheduler.step(data, names, seed=0)  # used to crash
        assert result.solver == "notears"
        assert all(not s.warm_started for s in scheduler.history)

    def test_custom_backend_without_inner_iteration_field_warm_starts(self):
        """warm_inner_scale must not read fields a custom config lacks."""
        from dataclasses import dataclass

        from repro.core.least import LEASTResult
        from repro.serve.job import register_solver, unregister_solver

        @dataclass(frozen=True)
        class _BareConfig:
            pass

        class _BareSolver:
            def __init__(self, config):
                self.config = config

            def fit(self, data, seed=None, init_weights=None):
                d = data.shape[1]
                return LEASTResult(
                    weights=np.eye(d) * 0.0,
                    constraint_value=0.0,
                    converged=True,
                    n_outer_iterations=1,
                )

        register_solver("bare", _BareSolver, _BareConfig, overwrite=True)
        try:
            scheduler = RelearnScheduler(solver="bare", resume_penalty=True)
            data, names = self._window(1)
            scheduler.step(data, names, seed=0)
            result = scheduler.step(data, names, seed=0)  # used to crash
            assert scheduler.history[-1].warm_started
            assert result.converged
        finally:
            unregister_solver("bare")

    def test_sharded_sparse_default_uses_correlation_support(self, monkeypatch):
        """The dumped sparse defaults must not pin support="random"."""
        from repro.shard.executor import ShardExecutor

        captured = {}
        original = ShardExecutor.run

        def _capture(self, data, plan, seed=0):
            captured["support"] = self.config.get("support")
            return original(self, data, plan, seed=seed)

        monkeypatch.setattr(ShardExecutor, "run", _capture)
        scheduler = RelearnScheduler(
            sparse_vocabulary_threshold=6,
            shard_vocabulary_threshold=6,
        )
        data, names = self._window(2, d=8)
        scheduler.step(data, names, seed=0)
        assert captured["support"] == "correlation"

    def test_align_weights_accepts_array_like(self):
        aligned = align_weights([[0.0, 1.0], [0.0, 0.0]], ["a", "b"], ["b", "a"])
        assert aligned[1, 0] == 1.0
