"""Unit tests for the Stitcher's conflict accounting against hand-built fixtures.

Every counter of :class:`repro.shard.stitcher.StitchReport`
(``n_duplicate_edges``, ``n_direction_conflicts``, ``n_cycle_edges_removed``,
``removed_weight``) is pinned to a small fixture where the expected value can
be read off by hand, mirroring the ``stitch`` section of ``BENCH_shard.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.dag import is_dag
from repro.shard.planner import ShardBlock
from repro.shard.stitcher import Stitcher, StitchReport


def _local(n: int, edges: dict[tuple[int, int], float]) -> np.ndarray:
    """Build an ``n × n`` local weight matrix from ``{(i, j): w}``."""
    matrix = np.zeros((n, n))
    for (i, j), weight in edges.items():
        matrix[i, j] = weight
    return matrix


def test_single_block_maps_local_edges_to_global_indices():
    block = ShardBlock(index=0, core=(3, 1, 4))
    local = _local(3, {(0, 1): 2.0, (1, 2): -0.5})  # 3->1, 1->4 globally
    stitched = Stitcher().stitch([(block, local)], n_nodes=5)
    assert stitched.weights[3, 1] == 2.0
    assert stitched.weights[1, 4] == -0.5
    assert stitched.report.n_edges == 2
    assert stitched.report.n_blocks == 1
    assert stitched.report.n_duplicate_edges == 0
    assert stitched.report.n_direction_conflicts == 0
    assert stitched.report.n_cycle_edges_removed == 0
    assert stitched.report.removed_weight == 0.0


def test_duplicate_halo_edge_counted_and_heavier_estimate_wins():
    # Edge 1 -> 2 is learned by both blocks: once from the core side (weight
    # 0.5) and once from the halo side (weight 0.9).
    block_a = ShardBlock(index=0, core=(0, 1), halo=(2,))
    block_b = ShardBlock(index=1, core=(2,), halo=(1,))
    local_a = _local(3, {(1, 2): 0.5})  # 1 -> 2
    local_b = _local(2, {(1, 0): 0.9})  # nodes (2, 1): local 1->0 is global 1->2
    stitched = Stitcher().stitch([(block_a, local_a), (block_b, local_b)], n_nodes=3)
    assert stitched.report.n_duplicate_edges == 1
    assert stitched.weights[1, 2] == 0.9
    assert stitched.report.n_edges == 1


def test_duplicate_with_equal_magnitude_keeps_first_blocks_estimate():
    block_a = ShardBlock(index=0, core=(0,), halo=(1,))
    block_b = ShardBlock(index=1, core=(1,), halo=(0,))
    local_a = _local(2, {(0, 1): 0.7})
    local_b = _local(2, {(1, 0): -0.7})  # nodes (1, 0): local 1->0 is global 0->1
    stitched = Stitcher().stitch([(block_a, local_a), (block_b, local_b)], n_nodes=2)
    assert stitched.report.n_duplicate_edges == 1
    assert stitched.weights[0, 1] == 0.7


def test_direction_conflict_resolved_by_weight():
    block_a = ShardBlock(index=0, core=(0,), halo=(1,))
    block_b = ShardBlock(index=1, core=(1,), halo=(0,))
    local_a = _local(2, {(0, 1): 1.0})  # 0 -> 1, lighter
    local_b = _local(2, {(0, 1): -2.0})  # nodes (1, 0): global 1 -> 0, heavier
    stitched = Stitcher().stitch([(block_a, local_a), (block_b, local_b)], n_nodes=2)
    assert stitched.report.n_direction_conflicts == 1
    assert stitched.weights[0, 1] == 0.0
    assert stitched.weights[1, 0] == -2.0
    # Direction conflicts are not duplicates (opposite directed edges) and the
    # loser does not count into removed_weight (reserved for cycle breaking).
    assert stitched.report.n_duplicate_edges == 0
    assert stitched.report.removed_weight == 0.0
    assert stitched.report.n_edges == 1


def test_direction_conflict_tie_keeps_lower_index_direction():
    block_a = ShardBlock(index=0, core=(0,), halo=(1,))
    block_b = ShardBlock(index=1, core=(1,), halo=(0,))
    local_a = _local(2, {(0, 1): 1.5})
    local_b = _local(2, {(0, 1): 1.5})
    stitched = Stitcher().stitch([(block_a, local_a), (block_b, local_b)], n_nodes=2)
    assert stitched.report.n_direction_conflicts == 1
    assert stitched.weights[0, 1] == 1.5
    assert stitched.weights[1, 0] == 0.0


def test_cross_block_cycle_broken_at_minimum_weight_edge():
    # Three single-node blocks each contribute one edge of the cycle
    # 0 -> 1 -> 2 -> 0 with weights 1.0, 0.5, 2.0; the stitcher must remove
    # exactly the lightest edge (1 -> 2, weight 0.5).
    blocks = [
        (ShardBlock(index=0, core=(0,), halo=(1,)), _local(2, {(0, 1): 1.0})),
        (ShardBlock(index=1, core=(1,), halo=(2,)), _local(2, {(0, 1): 0.5})),
        (ShardBlock(index=2, core=(2,), halo=(0,)), _local(2, {(0, 1): 2.0})),
    ]
    stitched = Stitcher().stitch(blocks, n_nodes=3)
    assert is_dag(stitched.weights)
    assert stitched.report.n_cycle_edges_removed == 1
    assert stitched.report.removed_weight == pytest.approx(0.5)
    assert stitched.weights[1, 2] == 0.0
    assert stitched.weights[0, 1] == 1.0
    assert stitched.weights[2, 0] == 2.0
    assert stitched.report.n_edges == 2


def test_two_cycles_accumulate_removed_weight():
    # Two independent 2-cycles; each loses its lighter edge.
    blocks = [
        (ShardBlock(index=0, core=(0, 1)), _local(2, {(0, 1): 1.0, (1, 0): 0.0})),
        (ShardBlock(index=1, core=(2, 3)), _local(2, {(0, 1): 3.0, (1, 0): 0.0})),
    ]
    # Build the cycles via a second pair of blocks learning the reverse edges.
    blocks += [
        (ShardBlock(index=2, core=(1,), halo=(0,)), _local(2, {(0, 1): -0.25})),
        (ShardBlock(index=3, core=(3,), halo=(2,)), _local(2, {(0, 1): -0.75})),
    ]
    stitched = Stitcher().stitch(blocks, n_nodes=4)
    assert is_dag(stitched.weights)
    # Opposite directions learned by different blocks are direction conflicts,
    # resolved before cycle breaking ever runs.
    assert stitched.report.n_direction_conflicts == 2
    assert stitched.report.n_cycle_edges_removed == 0
    assert stitched.weights[0, 1] == 1.0
    assert stitched.weights[2, 3] == 3.0


def test_within_block_cycle_is_broken_by_the_stitcher():
    # A single block may hand over a cyclic graph (e.g. an unconverged solve);
    # the stitcher still guarantees a DAG.
    block = ShardBlock(index=0, core=(0, 1, 2))
    local = _local(3, {(0, 1): 1.0, (1, 2): 0.4, (2, 0): 0.9})
    stitched = Stitcher().stitch([(block, local)], n_nodes=3)
    assert is_dag(stitched.weights)
    assert stitched.report.n_cycle_edges_removed == 1
    assert stitched.report.removed_weight == pytest.approx(0.4)


def test_halo_halo_edges_are_dropped_by_default():
    block = ShardBlock(index=0, core=(0,), halo=(1, 2))
    local = _local(3, {(0, 1): 1.0, (1, 2): 5.0})  # core->halo kept, halo->halo dropped
    stitched = Stitcher().stitch([(block, local)], n_nodes=3)
    assert stitched.weights[0, 1] == 1.0
    assert stitched.weights[1, 2] == 0.0
    assert stitched.report.n_edges == 1

    diagnostic = Stitcher(drop_halo_halo_edges=False).stitch([(block, local)], 3)
    assert diagnostic.weights[1, 2] == 5.0
    assert diagnostic.report.n_edges == 2


def test_report_dict_matches_bench_shard_stitch_schema():
    """`as_dict` must carry exactly the keys of BENCH_shard.json's stitch block."""
    blocks = [
        (ShardBlock(index=0, core=(0, 1), halo=(2,)), _local(3, {(0, 1): 1.0, (1, 2): 0.5})),
        (ShardBlock(index=1, core=(2,), halo=(1,)), _local(2, {(1, 0): 0.9})),
    ]
    report = Stitcher().stitch(blocks, n_nodes=3).report
    assert set(report.as_dict()) == {
        "n_blocks",
        "n_cycle_edges_removed",
        "n_direction_conflicts",
        "n_duplicate_edges",
        "n_edges",
        "removed_weight",
    }
    payload = report.as_dict()
    assert payload["n_blocks"] == 2
    assert payload["n_duplicate_edges"] == 1
    assert isinstance(payload["removed_weight"], float)


def test_empty_input_produces_empty_dag():
    stitched = Stitcher().stitch([], n_nodes=4)
    assert stitched.weights.shape == (4, 4)
    assert np.count_nonzero(stitched.weights) == 0
    assert is_dag(stitched.weights)
    assert stitched.report == StitchReport(n_blocks=0)


def test_shape_and_range_validation():
    block = ShardBlock(index=0, core=(0, 1))
    with pytest.raises(ValidationError):
        Stitcher().stitch([(block, np.zeros((3, 3)))], n_nodes=2)
    with pytest.raises(ValidationError):
        Stitcher().stitch([(block, np.zeros((2, 2)))], n_nodes=1)
    with pytest.raises(ValidationError):
        Stitcher().stitch([], n_nodes=0)


def test_self_loops_in_block_results_are_ignored():
    block = ShardBlock(index=0, core=(0, 1))
    local = _local(2, {(0, 0): 9.0, (0, 1): 1.0})
    stitched = Stitcher().stitch([(block, local)], n_nodes=2)
    assert stitched.weights[0, 0] == 0.0
    assert stitched.report.n_edges == 1


def test_plan_rejects_blocks_with_mismatched_indices():
    from repro.shard.planner import ShardPlan

    with pytest.raises(ValidationError):
        ShardPlan(
            n_nodes=4,
            blocks=[
                ShardBlock(index=1, core=(0, 1)),
                ShardBlock(index=0, core=(2, 3)),
            ],
        )


def test_break_cycles_removal_order_matches_rebuild_reference():
    """Incremental adjacency updates must not change which edges are removed.

    The production ``_break_cycles`` builds its sorted adjacency lists once
    and removes entries in place; this pin re-runs the historical
    rebuild-adjacency-every-iteration algorithm on the same edge map and
    requires the *exact same removal sequence*, not just the same final DAG.
    """
    from repro.graph.dag import find_cycle_in_adjacency

    rng = np.random.default_rng(11)
    n = 30
    edges: dict[tuple[int, int], float] = {}
    while len(edges) < 150:
        i, j = (int(v) for v in rng.integers(0, n, size=2))
        if i != j:
            edges[(i, j)] = float(rng.normal())

    def reference_removals(edge_map: dict[tuple[int, int], float]) -> list:
        removed = []
        while True:
            adjacency = [[] for _ in range(n)]
            for i, j in edge_map:
                adjacency[i].append(j)
            for children in adjacency:
                children.sort()
            cycle = find_cycle_in_adjacency(adjacency)
            if cycle is None:
                return removed
            lightest = None
            lightest_weight = np.inf
            for u, v in zip(cycle, cycle[1:]):
                if abs(edge_map[u, v]) < lightest_weight:
                    lightest_weight = abs(edge_map[u, v])
                    lightest = (u, v)
            removed.append(lightest)
            del edge_map[lightest]

    reference_map = dict(edges)
    expected = reference_removals(reference_map)
    assert expected, "fixture must actually contain cycles"

    class RecordingDict(dict):
        removals: list = []

        def __delitem__(self, key):
            self.removals.append(key)
            super().__delitem__(key)

    actual_map = RecordingDict(edges)
    actual_map.removals = []
    report = StitchReport()
    Stitcher._break_cycles(actual_map, n, report)

    assert actual_map.removals == expected
    assert set(actual_map) == set(reference_map)
    assert report.n_cycle_edges_removed == len(expected)
    assert report.removed_weight == pytest.approx(
        sum(abs(edges[key]) for key in expected)
    )
