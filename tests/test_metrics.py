"""Tests for repro.metrics (structural metrics, ROC, correlation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.correlation import pearson_correlation, trace_correlation
from repro.metrics.roc import auc_roc, roc_curve
from repro.metrics.structural import (
    confusion_counts,
    evaluate_structure,
    f1_score,
    false_discovery_rate,
    false_positive_rate,
    precision,
    recall,
    structural_hamming_distance,
    true_positive_rate,
)
from repro.utils.logging import RunLog


@pytest.fixture
def truth() -> np.ndarray:
    matrix = np.zeros((4, 4))
    matrix[0, 1] = 1.0
    matrix[1, 2] = 1.0
    matrix[2, 3] = 1.0
    return matrix


class TestConfusionCounts:
    def test_perfect_prediction(self, truth):
        counts = confusion_counts(truth, truth)
        assert counts["true_positives"] == 3
        assert counts["reversed"] == 0
        assert counts["false_positives"] == 0
        assert counts["false_negatives"] == 0

    def test_reversed_edge(self, truth):
        predicted = truth.copy()
        predicted[0, 1] = 0.0
        predicted[1, 0] = 1.0
        counts = confusion_counts(predicted, truth)
        assert counts["true_positives"] == 2
        assert counts["reversed"] == 1
        assert counts["false_negatives"] == 0

    def test_extra_and_missing(self, truth):
        predicted = truth.copy()
        predicted[2, 3] = 0.0  # missing
        predicted[0, 3] = 1.0  # extra
        counts = confusion_counts(predicted, truth)
        assert counts["false_positives"] == 1
        assert counts["false_negatives"] == 1

    def test_weights_are_binarized(self, truth):
        predicted = truth * 0.37
        counts = confusion_counts(predicted, truth)
        assert counts["true_positives"] == 3


class TestSHD:
    def test_identical_graphs(self, truth):
        assert structural_hamming_distance(truth, truth) == 0

    def test_missing_edge_costs_one(self, truth):
        predicted = truth.copy()
        predicted[2, 3] = 0.0
        assert structural_hamming_distance(predicted, truth) == 1

    def test_extra_edge_costs_one(self, truth):
        predicted = truth.copy()
        predicted[0, 2] = 1.0
        assert structural_hamming_distance(predicted, truth) == 1

    def test_reversal_costs_one(self, truth):
        predicted = truth.copy()
        predicted[0, 1] = 0.0
        predicted[1, 0] = 1.0
        assert structural_hamming_distance(predicted, truth) == 1

    def test_empty_prediction(self, truth):
        assert structural_hamming_distance(np.zeros_like(truth), truth) == 3

    def test_symmetry_of_total_disagreement(self, truth):
        other = np.zeros_like(truth)
        other[3, 0] = 1.0
        assert structural_hamming_distance(other, truth) == structural_hamming_distance(truth, other)


class TestRates:
    def test_perfect_scores(self, truth):
        assert f1_score(truth, truth) == 1.0
        assert precision(truth, truth) == 1.0
        assert recall(truth, truth) == 1.0
        assert false_discovery_rate(truth, truth) == 0.0
        assert false_positive_rate(truth, truth) == 0.0
        assert true_positive_rate(truth, truth) == 1.0

    def test_empty_prediction_scores(self, truth):
        empty = np.zeros_like(truth)
        assert f1_score(empty, truth) == 0.0
        assert precision(empty, truth) == 0.0
        assert false_discovery_rate(empty, truth) == 0.0

    def test_fdr_counts_reversed_edges(self, truth):
        predicted = truth.copy()
        predicted[0, 1] = 0.0
        predicted[1, 0] = 1.0
        assert false_discovery_rate(predicted, truth) == pytest.approx(1.0 / 3.0)

    def test_evaluate_structure_bundle(self, truth):
        predicted = truth.copy()
        predicted[0, 3] = 1.0
        metrics = evaluate_structure(predicted, truth)
        assert metrics.n_true_edges == 3
        assert metrics.n_predicted_edges == 4
        assert metrics.true_positives == 3
        assert metrics.false_positives == 1
        assert metrics.shd == 1
        assert 0.0 < metrics.f1 < 1.0
        assert metrics.to_dict()["f1"] == metrics.f1

    def test_shape_mismatch_rejected(self, truth):
        with pytest.raises(Exception):
            evaluate_structure(np.zeros((3, 3)), truth)


class TestROC:
    def test_perfect_ranking_has_auc_one(self, truth):
        scores = truth * 2.0 + 0.0
        assert auc_roc(scores, truth) == pytest.approx(1.0)

    def test_random_scores_near_half(self, truth):
        rng = np.random.default_rng(0)
        aucs = []
        for _ in range(30):
            scores = rng.random((4, 4))
            np.fill_diagonal(scores, 0.0)
            aucs.append(auc_roc(scores, truth))
        assert abs(np.mean(aucs) - 0.5) < 0.1

    def test_degenerate_truth_returns_half(self):
        assert auc_roc(np.ones((3, 3)), np.zeros((3, 3))) == 0.5

    def test_roc_curve_endpoints(self, truth):
        fpr, tpr, thresholds = roc_curve(np.abs(np.random.default_rng(1).random((4, 4))), truth)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)
        assert thresholds[0] == np.inf

    def test_auc_monotone_in_ranking_quality(self, truth):
        good = truth * 1.0
        good[0, 2] = 0.4  # one false edge scored below true edges
        bad = np.ones_like(truth) * 0.5
        assert auc_roc(good, truth) > auc_roc(bad, truth)


class TestCorrelation:
    def test_perfectly_correlated(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [2.0, 4.0, 6.0, 8.0]
        assert pearson_correlation(x, y) == pytest.approx(1.0)

    def test_anticorrelated(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_sequence_gives_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            pearson_correlation([1.0], [2.0])

    def test_trace_correlation_from_runlog(self):
        log = RunLog()
        for step in range(1, 8):
            value = 10.0 ** (-step)
            log.append(delta=value, h=value * 3.0)
        assert trace_correlation(log) == pytest.approx(1.0)

    def test_trace_correlation_handles_missing_h(self):
        log = RunLog()
        log.append(delta=1.0)
        log.append(delta=0.1)
        assert trace_correlation(log) == 0.0
