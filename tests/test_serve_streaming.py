"""Tests for repro.serve.streaming: streamed results, hard preemption, policies."""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.serve.cache import DiskCache, InMemoryCache
from repro.serve.job import LearningJob, register_solver, unregister_solver
from repro.serve.scheduler import RelearnScheduler
from repro.serve.streaming import (
    PreemptedError,
    StreamingRunner,
    WorkerCrashError,
    call_with_deadline,
)

# Concurrency suite: a deadlock here (a worker that never reports, a poll
# loop that never drains) must abort with tracebacks, not hang the CI job.
pytestmark = pytest.mark.timeout(120)

FAST_CONFIG = {"max_outer_iterations": 3, "max_inner_iterations": 40}


def _boom():
    """Module-level (hence spawn-picklable) always-raising callable."""
    raise ValueError("inner failure")


def _inline_job(seed: int = 0, **overrides) -> LearningJob:
    rng = np.random.default_rng(99)
    data = rng.normal(size=(40, 6))
    options = {"data": data, "seed": seed, "config": dict(FAST_CONFIG)}
    options.update(overrides)
    return LearningJob(**options)


@dataclass(frozen=True)
class _HangConfig:
    duration: float = 60.0


class _HangSolver:
    """A solver that sleeps far past any reasonable deadline."""

    def __init__(self, config: _HangConfig):
        self.config = config

    def fit(self, data, seed=None):
        time.sleep(self.config.duration)
        from repro.core.least import LEASTResult

        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


@dataclass(frozen=True)
class _MarkerConfig:
    """Hang until ``marker_path`` exists (creating it first), then succeed."""

    marker_path: str = ""
    duration: float = 60.0


class _MarkerSolver:
    """Hangs on the first attempt, succeeds once its marker file exists."""

    def __init__(self, config: _MarkerConfig):
        self.config = config

    def fit(self, data, seed=None):
        from pathlib import Path

        marker = Path(self.config.marker_path)
        if not marker.exists():
            marker.touch()
            time.sleep(self.config.duration)
        from repro.core.least import LEASTResult

        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


@pytest.fixture
def marker_solver():
    register_solver("marker", _MarkerSolver, _MarkerConfig, overwrite=True)
    yield
    unregister_solver("marker")


@dataclass(frozen=True)
class _CrashConfig:
    exit_code: int = 3


class _CrashSolver:
    """A solver whose worker dies without ever reporting back."""

    def __init__(self, config: _CrashConfig):
        self.config = config

    def fit(self, data, seed=None):
        os._exit(self.config.exit_code)


@pytest.fixture
def hang_solver():
    register_solver("hang", _HangSolver, _HangConfig, overwrite=True)
    yield
    unregister_solver("hang")


@pytest.fixture
def crash_solver():
    register_solver("crash", _CrashSolver, _CrashConfig, overwrite=True)
    yield
    unregister_solver("crash")


class TestStreamingOrder:
    def test_stream_yields_every_job(self):
        jobs = [_inline_job(seed=s) for s in range(4)]
        runner = StreamingRunner(n_workers=2)
        results = list(runner.stream(jobs))
        assert sorted(r.job_id for r in results) == [f"job-00{i}" for i in range(4)]
        assert all(r.status == "ok" for r in results)
        assert runner.telemetry.n_yielded == 4

    def test_time_to_first_result_precedes_total(self):
        jobs = [_inline_job(seed=s) for s in range(4)]
        runner = StreamingRunner(n_workers=2)
        list(runner.stream(jobs))
        telemetry = runner.telemetry
        assert telemetry.time_to_first_result is not None
        assert 0 < telemetry.time_to_first_result <= telemetry.total_seconds

    def test_run_preserves_manifest_order_and_reports_completion_order(self):
        jobs = [_inline_job(seed=s) for s in range(3)]
        arrival: list[str] = []
        report = StreamingRunner(n_workers=2).run(
            jobs, on_result=lambda r: arrival.append(r.job_id)
        )
        assert [r.job_id for r in report.results] == ["job-000", "job-001", "job-002"]
        assert sorted(arrival) == ["job-000", "job-001", "job-002"]
        assert report.time_to_first_result is not None

    def test_matches_inline_serial_results(self):
        serial = StreamingRunner(n_workers=1).run([_inline_job(seed=7)])
        streamed = StreamingRunner(n_workers=2).run([_inline_job(seed=7)])
        np.testing.assert_allclose(
            serial.results[0].weights, streamed.results[0].weights
        )


class TestPreemption:
    def test_hanging_job_is_killed_and_survivors_stream_out(self, hang_solver):
        """The acceptance scenario: 1 hanging + N normal jobs under a deadline."""
        deadline = 8.0  # generous: workers may pay interpreter boot under spawn
        hanging = LearningJob(
            solver="hang", data=np.zeros((4, 3)), config={"duration": 60.0}
        )
        normal = [_inline_job(seed=s) for s in range(3)]
        runner = StreamingRunner(n_workers=2, timeout=deadline)

        started = time.monotonic()
        arrivals: list[tuple[str, str, float]] = []
        for result in runner.stream([hanging] + normal):
            arrivals.append((result.job_id, result.status, time.monotonic() - started))

        by_id = {job_id: status for job_id, status, _ in arrivals}
        assert by_id["job-000"] == "preempted"
        assert all(by_id[f"job-00{i}"] == "ok" for i in (1, 2, 3))
        # Every normal result streamed out before the hanging job's deadline
        # expired; the preempted record is the last to arrive.
        normal_arrivals = [t for job_id, _, t in arrivals if job_id != "job-000"]
        assert max(normal_arrivals) < deadline
        assert arrivals[-1][0] == "job-000"
        # The whole batch finished shortly after the deadline, not after 60s.
        assert time.monotonic() - started < 2 * deadline
        assert runner.telemetry.n_killed == 1

    def test_killed_worker_leaves_no_orphan_process(self, hang_solver):
        import multiprocessing as mp

        job = LearningJob(solver="hang", data=np.zeros((4, 3)), config={"duration": 60.0})
        runner = StreamingRunner(n_workers=1, timeout=0.5)
        report = runner.run([job])
        assert report.results[0].status == "preempted"
        assert runner.telemetry.killed_pids
        for pid in runner.telemetry.killed_pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        assert not any(
            child.pid in runner.telemetry.killed_pids
            for child in mp.active_children()
        )

    def test_preempted_error_mentions_deadline(self, hang_solver):
        job = LearningJob(solver="hang", data=np.zeros((4, 3)), config={"duration": 60.0})
        report = StreamingRunner(timeout=0.3).run([job])
        result = report.results[0]
        assert result.status == "preempted"
        assert "deadline" in result.error

    def test_requeue_policy_grants_fresh_attempts(self, hang_solver):
        job = LearningJob(solver="hang", data=np.zeros((4, 3)), config={"duration": 60.0})
        runner = StreamingRunner(
            timeout=0.3, preempt_policy="requeue", preempt_retries=2
        )
        started = time.monotonic()
        report = runner.run([job])
        elapsed = time.monotonic() - started
        result = report.results[0]
        assert result.status == "preempted"
        assert runner.telemetry.n_requeued == 2
        assert runner.telemetry.n_killed == 3  # initial attempt + 2 requeues
        assert result.attempts == 3
        assert elapsed >= 0.9  # three full deadlines were actually granted

    def test_success_after_requeue_accounts_killed_attempts(
        self, marker_solver, tmp_path
    ):
        """A job killed once then succeeding on the requeue reports both
        attempts, matching the accounting of finally-preempted jobs."""
        job = LearningJob(
            solver="marker",
            data=np.zeros((4, 3)),
            config={"marker_path": str(tmp_path / "marker"), "duration": 60.0},
        )
        runner = StreamingRunner(
            timeout=1.0, preempt_policy="requeue", preempt_retries=2
        )
        report = runner.run([job])
        result = report.results[0]
        assert result.status == "ok"
        assert runner.telemetry.n_killed == 1
        assert runner.telemetry.n_requeued == 1
        assert result.attempts == 2  # the killed attempt + the successful one

    def test_fast_jobs_finish_under_generous_deadline(self):
        report = StreamingRunner(n_workers=2, timeout=60.0).run(
            [_inline_job(seed=s) for s in range(3)]
        )
        assert report.n_ok == 3 and report.n_preempted == 0
        assert report.preemption_stats["n_killed"] == 0.0


@dataclass(frozen=True)
class _SigkillConfig:
    pass


class _SigkillSolver:
    """A solver whose worker is SIGKILLed externally (simulated OOM kill)."""

    def __init__(self, config: _SigkillConfig):
        self.config = config

    def fit(self, data, seed=None):
        import signal as _signal

        os.kill(os.getpid(), _signal.SIGKILL)


@pytest.fixture
def sigkill_solver():
    register_solver("sigkill", _SigkillSolver, _SigkillConfig, overwrite=True)
    yield
    unregister_solver("sigkill")


class TestWorkerCrashes:
    def test_crashed_worker_is_reported_failed(self, crash_solver):
        job = LearningJob(solver="crash", data=np.zeros((4, 3)), config={"exit_code": 3})
        report = StreamingRunner(n_workers=2, timeout=30.0).run([job, _inline_job(seed=1)])
        statuses = {r.job_id: r.status for r in report.results}
        assert statuses["job-000"] == "failed"
        assert statuses["job-001"] == "ok"
        assert "exit code 3" in report.results[0].error

    def test_external_sigkill_without_deadline_is_failed_not_preempted(
        self, sigkill_solver
    ):
        """A kill that cannot have come from the engine (no timeout set) is a
        plain failure — it must not be requeued as 'preempted' work."""
        job = LearningJob(solver="sigkill", data=np.zeros((4, 3)))
        runner = StreamingRunner(n_workers=2, preempt_policy="requeue")
        report = runner.run([job])
        assert report.results[0].status == "failed"
        assert report.n_preempted == 0
        assert runner.telemetry.n_requeued == 0

    def test_external_sigkill_long_before_deadline_is_failed(self, sigkill_solver):
        """Even with a deadline set, a SIGKILL the parent did not send (the
        worker dies immediately, way before the budget) is a crash: the
        engine's own kills are recorded at the kill site, not inferred from
        exit codes."""
        job = LearningJob(solver="sigkill", data=np.zeros((4, 3)))
        runner = StreamingRunner(timeout=30.0, preempt_policy="requeue")
        started = time.monotonic()
        report = runner.run([job])
        assert time.monotonic() - started < 10.0  # did not wait out the deadline
        assert report.results[0].status == "failed"
        assert runner.telemetry.n_killed == 0
        assert runner.telemetry.n_requeued == 0

    def test_abandoning_the_stream_does_not_count_phantom_kills(self):
        jobs = [_inline_job(seed=s) for s in range(4)]
        runner = StreamingRunner(n_workers=2, timeout=60.0)
        stream = runner.stream(jobs)
        next(stream)  # take one result, abandon the rest
        stream.close()
        assert runner.telemetry.n_killed == 0
        assert runner.telemetry.killed_pids == []

    def test_cache_hits_are_not_written_back(self, tmp_path):
        cache = DiskCache(tmp_path)
        job = _inline_job(seed=0)
        StreamingRunner(cache=cache).run([job])
        fingerprint = next(iter(tmp_path.glob("*.pkl"))).stem
        stored_before = cache.get(fingerprint)
        assert stored_before.elapsed_seconds > 0
        # Two more fully-cached runs: the stored entry must keep its original
        # solver provenance (a hit re-written would zero elapsed_seconds and
        # make solver_seconds_saved vanish on the next run).
        StreamingRunner(cache=cache).run([_inline_job(seed=0)])
        third = StreamingRunner(cache=cache).run([_inline_job(seed=0)])
        assert third.n_cache_hits == 1
        assert third.solver_seconds_saved > 0
        stored_after = cache.get(fingerprint)
        assert stored_after.elapsed_seconds == stored_before.elapsed_seconds
        assert stored_after.cache_hit is False


class TestCacheIntegration:
    def test_stream_serves_and_fills_the_cache(self, tmp_path):
        cache = DiskCache(tmp_path)
        jobs = [_inline_job(seed=s) for s in range(2)]
        first = StreamingRunner(n_workers=2, timeout=60.0, cache=cache).run(jobs)
        assert first.n_cache_hits == 0
        second = StreamingRunner(cache=cache).run(
            [_inline_job(seed=s) for s in range(2)]
        )
        assert second.n_cache_hits == 2
        assert second.solver_seconds_saved > 0

    def test_preempted_jobs_are_not_cached(self, hang_solver):
        cache = InMemoryCache()
        job = LearningJob(solver="hang", data=np.zeros((4, 3)), config={"duration": 60.0})
        StreamingRunner(timeout=0.3, cache=cache).run([job])
        assert len(cache) == 0


class TestCallWithDeadline:
    def test_inline_when_no_deadline(self):
        assert call_with_deadline(sum, [1, 2, 3]) == 6

    def test_returns_value_within_deadline(self):
        assert call_with_deadline(sum, [1, 2, 3], deadline=30.0) == 6

    def test_kills_overrunning_call(self):
        started = time.monotonic()
        with pytest.raises(PreemptedError):
            call_with_deadline(time.sleep, 60.0, deadline=0.3)
        assert time.monotonic() - started < 5.0

    def test_propagates_worker_exceptions(self):
        with pytest.raises(RuntimeError, match="inner failure"):
            call_with_deadline(_boom, deadline=30.0)

    def test_crash_raises_worker_crash_error(self):
        with pytest.raises(WorkerCrashError):
            call_with_deadline(os._exit, 5, deadline=30.0)

    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValidationError):
            call_with_deadline(sum, [1], deadline=0.0)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            StreamingRunner(n_workers=0)
        with pytest.raises(ValidationError):
            StreamingRunner(timeout=-1.0)
        with pytest.raises(ValidationError):
            StreamingRunner(max_retries=-1)
        with pytest.raises(ValidationError):
            StreamingRunner(preempt_policy="abandon")
        with pytest.raises(ValidationError):
            StreamingRunner(preempt_retries=-1)


class TestSchedulerDeadline:
    def test_preempted_window_degrades_gracefully(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(60, 5))
        names = [f"n{i}" for i in range(5)]
        # A budget far too small for even one inner iteration batch: the solve
        # is killed and the scheduler records a preempted window.
        scheduler = RelearnScheduler(window_deadline=30.0)
        first = scheduler.step(data, names, seed=1)
        assert scheduler.history[-1].preempted is False
        assert first.weights.shape == (5, 5)

        from repro.core.least import LEASTConfig

        slow = RelearnScheduler(
            least_config=LEASTConfig(
                max_outer_iterations=50, max_inner_iterations=100000,
                inner_convergence_tol=0.0, tolerance=1e-300,
            ),
            window_deadline=0.2,
        )
        result = slow.step(data, names, seed=1)
        stats = slow.history[-1]
        assert stats.preempted is True and stats.converged is False
        assert result.converged is False
        # The carried warm-start state is untouched by the preempted window.
        assert slow.state is None
        assert slow.stats_summary()["n_preempted_windows"] == 1.0


class TestCliStream:
    def test_stream_mode_emits_one_ndjson_line_per_job(self, tmp_path, capsys):
        from repro.serve.cli import main

        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "dataset": "er2",
                            "seed": seed,
                            "dataset_options": {"n_nodes": 10},
                            "config": {
                                "max_outer_iterations": 2,
                                "max_inner_iterations": 30,
                            },
                        }
                        for seed in range(3)
                    ]
                }
            )
        )
        output = tmp_path / "report.json"
        code = main([str(manifest), "--stream", "--quiet", "--output", str(output)])
        assert code == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert len(lines) == 3
        parsed = [json.loads(line) for line in lines]
        assert sorted(p["job_id"] for p in parsed) == ["job-000", "job-001", "job-002"]
        assert all(p["status"] == "ok" for p in parsed)
        report = json.loads(output.read_text())
        assert report["summary"]["n_ok"] == 3
        assert report["summary"]["time_to_first_result"] is not None
        assert "preemption" in report["summary"]

    def test_stream_mode_reports_preempted_jobs(self, tmp_path, capsys, hang_solver):
        from repro.serve.cli import main

        # The hang solver is registered in this process; fork workers inherit
        # it, and the registry snapshot covers spawn workers too.
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps(
                {
                    "jobs": [
                        {
                            "solver": "hang",
                            "data": [[0.0, 0.0], [0.0, 0.0]],
                            "config": {"duration": 60.0},
                        }
                    ]
                }
            )
        )
        code = main([str(manifest), "--stream", "--quiet", "--timeout", "0.3"])
        assert code == 1
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert len(lines) == 1
        assert json.loads(lines[0])["status"] == "preempted"


@dataclass(frozen=True)
class _SigalrmConfig:
    pass


class _SigalrmSolver:
    """A solver that trips the worker's own SIGALRM suicide disposition.

    With a deadline set, ``_arm_suicide_timer`` leaves SIGALRM at its default
    (process-terminating) disposition — raising the signal immediately makes
    the worker die exactly as if its suicide timer had fired, without waiting
    out a real deadline.
    """

    def __init__(self, config: _SigalrmConfig):
        self.config = config

    def fit(self, data, seed=None):
        import signal as _signal

        os.kill(os.getpid(), _signal.SIGALRM)


@pytest.fixture
def sigalrm_solver():
    register_solver("sigalrm", _SigalrmSolver, _SigalrmConfig, overwrite=True)
    yield
    unregister_solver("sigalrm")


class TestTelemetryEdgeCases:
    def test_time_to_first_result_spans_requeued_attempts(self, hang_solver):
        """With a single job that is killed once and requeued, the first (and
        only) yielded result arrives after BOTH attempts — the telemetry must
        report that, not the first attempt's deadline."""
        deadline = 0.6
        job = LearningJob(
            solver="hang", data=np.zeros((4, 3)), config={"duration": 60.0}
        )
        runner = StreamingRunner(
            timeout=deadline, preempt_policy="requeue", preempt_retries=1
        )
        results = list(runner.stream([job]))
        assert [r.status for r in results] == ["preempted"]
        telemetry = runner.telemetry
        assert telemetry.n_yielded == 1
        assert telemetry.n_requeued == 1
        # Two full deadlines were granted before the only result appeared.
        assert telemetry.time_to_first_result >= 2 * deadline
        assert telemetry.time_to_first_result <= telemetry.total_seconds

    def test_preemption_summary_separates_kills_from_suicides(
        self, hang_solver, sigalrm_solver
    ):
        """One worker killed by the parent at its deadline, one dead from its
        own SIGALRM: the summary must attribute each to its own counter."""
        jobs = [
            LearningJob(
                solver="hang",
                data=np.zeros((4, 3)),
                config={"duration": 60.0},
                job_id="hang",
            ),
            LearningJob(solver="sigalrm", data=np.zeros((4, 3)), job_id="alrm"),
        ]
        runner = StreamingRunner(n_workers=2, timeout=1.5)
        statuses = {r.job_id: r.status for r in runner.stream(jobs)}
        assert statuses == {"hang": "preempted", "alrm": "preempted"}
        summary = runner.telemetry.preemption_summary()
        assert summary == {
            "n_killed": 1.0,
            "n_suicide_exits": 1.0,
            "n_soft_preempted": 0.0,
            "n_requeued": 0.0,
        }

    def test_suicide_exit_counts_in_traced_metrics(self, sigalrm_solver):
        from repro.obs import Tracer, validate_trace

        tracer = Tracer()
        job = LearningJob(solver="sigalrm", data=np.zeros((4, 3)))
        runner = StreamingRunner(timeout=5.0, tracer=tracer)
        results = list(runner.stream([job]))
        assert results[0].status == "preempted"
        assert runner.telemetry.n_suicide_exits == 1
        suicides = tracer.metrics.counter("serve_preemptions_total", kind="suicide")
        assert suicides.value == 1.0
        assert validate_trace(tracer.sink.spans())["n_orphans"] == 0

    def test_worker_dead_before_flushing_spool_merges_cleanly(self, crash_solver):
        """A worker that dies mid-flight leaves a spool whose flushed spans
        reference never-flushed parents — the merge must adopt them onto the
        job span and keep the trace orphan-free."""
        from repro.obs import Tracer, validate_trace

        tracer = Tracer()
        job = LearningJob(solver="crash", data=np.zeros((4, 3)), config={"exit_code": 3})
        runner = StreamingRunner(n_workers=2, timeout=30.0, tracer=tracer)
        results = list(runner.stream([job]))
        assert results[0].status == "failed"

        spans = tracer.sink.spans()
        assert validate_trace(spans)["n_orphans"] == 0
        names = [s["name"] for s in spans]
        # The worker's root span and its "solve" span were still open at the
        # crash, so neither flushed.  The pool's worker_spawn span survives —
        # it is recorded parent-side at the ready handshake, before the job
        # ever reached the worker.
        assert "worker" not in names and "solve" not in names
        assert "worker_spawn" in names
        # The parent-side lifecycle is complete regardless.
        for name in ("job", "queue_wait", "data_materialize"):
            assert name in names, name
        job_span = next(s for s in spans if s["name"] == "job")
        assert job_span["status"] == "failed"
        # The one span the worker DID flush before dying (the pre-solve hook
        # slice) pointed at the never-flushed solve span: it must have been
        # adopted by the job span, not left dangling.
        adopted = [s for s in spans if s.get("attributes", {}).get("adopted")]
        assert [s["name"] for s in adopted] == ["outer_iter"]
        assert adopted[0]["parent_id"] == job_span["span_id"]
        # The spool directory is gone despite the crash.
        assert runner._spool_dir is None
