"""Tests for repro.obs.sampler — /proc-based per-worker resource sampling."""

from __future__ import annotations

import os
import time

import pytest

from repro.obs import ResourceSampler
from repro.obs.sampler import (
    DEFAULT_INTERVAL,
    is_supported,
    read_proc_sample,
)

requires_proc = pytest.mark.skipif(
    not is_supported(), reason="/proc sampling only available on Linux"
)


class _ListSink:
    """Collects emitted events in memory."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(dict(event))


class TestReadProcSample:
    @requires_proc
    def test_self_pid_has_positive_rss(self):
        sample = read_proc_sample(os.getpid())
        assert sample is not None
        assert sample["rss_bytes"] > 0
        assert sample["cpu_seconds"] >= 0.0

    def test_dead_pid_returns_none(self):
        # pid 2**22 is above the default pid_max; never a live process.
        assert read_proc_sample(2**22) is None


class TestResourceSampler:
    @requires_proc
    def test_samples_tracked_pid_and_reports_peak(self):
        sink = _ListSink()
        sampler = ResourceSampler(sink=sink, interval=0.01)
        assert sampler.start()
        try:
            sampler.track(os.getpid(), role="parent")
            time.sleep(0.08)
        finally:
            sampler.stop()
        assert sampler.peak_rss_bytes(os.getpid()) > 0
        parent_events = [e for e in sink.events if e["pid"] == os.getpid()]
        assert parent_events
        event = parent_events[0]
        assert event["event"] == "resource"
        assert event["role"] == "parent"
        assert event["rss_bytes"] > 0
        assert "monotonic" in event and "wall" in event

    @requires_proc
    def test_untrack_returns_peak_record(self):
        sampler = ResourceSampler(sink=_ListSink(), interval=0.01)
        sampler.start()
        try:
            sampler.track(os.getpid(), role="worker", job_id="job-1")
            time.sleep(0.05)
        finally:
            peak = sampler.untrack(os.getpid())
            sampler.stop()
        assert peak["role"] == "worker"
        assert peak["job_id"] == "job-1"
        assert peak["peak_rss_bytes"] > 0
        assert peak["n_samples"] >= 1
        assert sampler.worker_peaks()  # retained after untrack

    @requires_proc
    def test_untrack_never_sampled_pid_returns_zeros(self):
        sampler = ResourceSampler(sink=_ListSink(), interval=10.0)
        sampler.track(123456789, role="worker")
        peak = sampler.untrack(123456789)
        assert peak["peak_rss_bytes"] == 0
        assert peak["n_samples"] == 0

    def test_env_kill_switch_disables_start(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "0")
        sampler = ResourceSampler(sink=_ListSink())
        assert sampler.start() is False

    def test_env_interval_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SAMPLE_INTERVAL", "0.5")
        assert ResourceSampler(sink=_ListSink()).interval == pytest.approx(0.5)
        monkeypatch.setenv("REPRO_OBS_SAMPLE_INTERVAL", "garbage")
        assert ResourceSampler(sink=_ListSink()).interval == pytest.approx(
            DEFAULT_INTERVAL
        )

    @requires_proc
    def test_double_start_is_idempotent(self):
        sampler = ResourceSampler(sink=_ListSink(), interval=0.01)
        assert sampler.start()
        thread = sampler._thread
        try:
            # Second start keeps the existing thread and stays enabled.
            assert sampler.start() is True
            assert sampler._thread is thread
        finally:
            sampler.stop()

    @requires_proc
    def test_stop_without_start_is_noop(self):
        ResourceSampler(sink=_ListSink()).stop()

    @requires_proc
    def test_sample_once_emits_for_all_tracked(self):
        sink = _ListSink()
        # Interval far beyond the test runtime: only explicit sweeps sample.
        sampler = ResourceSampler(sink=sink, interval=60.0)
        sampler.track(os.getpid(), role="parent")
        assert sampler.sample_once() == 0  # not started yet: no-op
        assert sampler.start()
        try:
            assert sampler.sample_once() == 1
            assert sink.events[0]["pid"] == os.getpid()
        finally:
            sampler.stop()


@requires_proc
class TestStreamingRunnerIntegration:
    def _job(self, seed=0):
        import numpy as np

        from repro.serve.job import LearningJob

        rng = np.random.default_rng(7)
        return LearningJob(
            data=rng.normal(size=(40, 6)),
            seed=seed,
            config={"max_outer_iterations": 3, "max_inner_iterations": 40},
        )

    def test_traced_run_emits_resource_events_and_worker_peaks(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_SAMPLE_INTERVAL", "0.01")
        from repro.obs import Tracer
        from repro.serve.streaming import StreamingRunner

        tracer = Tracer()
        runner = StreamingRunner(n_workers=2, timeout=60.0, tracer=tracer)
        results = list(runner.stream([self._job(seed=s) for s in range(2)]))
        assert all(r.status == "ok" for r in results)

        resources = [
            e for e in tracer.sink.events if e.get("event") == "resource"
        ]
        assert resources, "sampler should emit resource events during the run"
        roles = {e["role"] for e in resources}
        assert "parent" in roles
        # Worker sampling is timing-dependent (jobs may finish within one
        # interval), but when workers were sampled their job spans must carry
        # the sampled peak.
        job_spans = [
            s for s in tracer.sink.spans() if s["name"] == "job"
        ]
        stamped = [
            s for s in job_spans if "worker_peak_rss_bytes" in s["attributes"]
        ]
        if "worker" in roles:
            assert stamped
            assert all(
                s["attributes"]["worker_peak_rss_bytes"] > 0 for s in stamped
            )
        gauge = tracer.metrics.gauge("serve_peak_rss_bytes", role="parent")
        assert gauge.value > 0

    def test_sample_resources_false_disables_sampler(self):
        from repro.obs import Tracer
        from repro.serve.streaming import StreamingRunner

        tracer = Tracer()
        runner = StreamingRunner(
            n_workers=1, tracer=tracer, sample_resources=False
        )
        list(runner.stream([self._job()]))
        assert runner.sampler is None
        assert not [
            e for e in tracer.sink.events if e.get("event") == "resource"
        ]
