"""Tests for the dense LEAST solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.least import LEAST, LEASTConfig, glorot_sparse_init
from repro.core.model_selection import grid_search_epsilon_tau, grid_search_threshold
from repro.core.notears_constraint import notears_constraint
from repro.exceptions import ValidationError
from repro.graph.dag import is_dag
from repro.core.thresholding import threshold_to_dag


FAST = LEASTConfig(max_outer_iterations=6, max_inner_iterations=200, tolerance=1e-3)


class TestGlorotInit:
    def test_density_controls_edge_count(self, rng):
        dense = glorot_sparse_init(50, 0.5, rng)
        sparse = glorot_sparse_init(50, 0.05, rng)
        assert np.count_nonzero(dense) > np.count_nonzero(sparse)

    def test_diagonal_is_zero(self, rng):
        weights = glorot_sparse_init(20, 0.8, rng)
        np.testing.assert_array_equal(np.diag(weights), 0.0)

    def test_values_within_glorot_limit(self, rng):
        weights = glorot_sparse_init(30, 0.5, rng)
        limit = np.sqrt(3.0 / 30)
        assert np.abs(weights).max() <= limit

    def test_large_graph_path_samples_coordinates(self, rng):
        from repro.core.least import SPARSE_INIT_CUTOFF

        d = SPARSE_INIT_CUTOFF
        density = 1e-4
        weights = glorot_sparse_init(d, density, rng)
        n_active = np.count_nonzero(weights)
        expected = d * (d - 1) * density
        # Binomial draw: stay within ±6 standard deviations of the mean.
        margin = 6 * np.sqrt(expected)
        assert abs(n_active - expected) <= margin
        np.testing.assert_array_equal(np.diag(weights), 0.0)
        limit = np.sqrt(3.0 / d)
        assert np.abs(weights).max() <= limit

    def test_large_graph_init_memory_is_o_nnz(self):
        """The d=4096 pin: transient allocations beyond the returned d × d
        array must be O(nnz), not the O(d²) mask + uniform draw of the old
        dense path (~150 MB at this size)."""
        import tracemalloc

        rng = np.random.default_rng(0)
        glorot_sparse_init(4096, 1e-4, rng)  # warm numpy internals
        tracemalloc.start()
        weights = glorot_sparse_init(4096, 1e-4, np.random.default_rng(1))
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        overhead = peak - weights.nbytes
        assert overhead < 4 * 1024 * 1024, (
            f"init allocated {overhead / 1e6:.1f} MB beyond the result matrix"
        )

    def test_small_graph_dense_stream_unchanged(self):
        """Below the cutoff the historical RNG stream must be preserved —
        seeded runs (and every test pinned to them) may not shift."""
        rng = np.random.default_rng(42)
        weights = glorot_sparse_init(12, 0.3, rng)
        expected_rng = np.random.default_rng(42)
        mask = expected_rng.random((12, 12)) < 0.3
        np.fill_diagonal(mask, False)
        expected = np.zeros((12, 12))
        limit = np.sqrt(3.0 / 12)
        expected[mask] = expected_rng.uniform(-limit, limit, size=int(mask.sum()))
        np.testing.assert_array_equal(weights, expected)


class TestLEASTConfig:
    def test_defaults_are_valid(self):
        LEASTConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": -1},
            {"alpha": 2.0},
            {"l1_penalty": -0.1},
            {"learning_rate": 0.0},
            {"init_density": 1.5},
            {"tolerance": 0.0},
            {"max_outer_iterations": 0},
            {"rho_growth": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            LEASTConfig(**kwargs)


class TestLEASTFit:
    def test_output_shape_and_diagonal(self, er2_problem):
        result = LEAST(FAST).fit(er2_problem["data"], seed=0)
        d = er2_problem["truth"].shape[0]
        assert result.weights.shape == (d, d)
        np.testing.assert_array_equal(np.diag(result.weights), 0.0)

    def test_constraint_decreases_over_outer_iterations(self, er2_problem):
        result = LEAST(FAST).fit(er2_problem["data"], seed=0)
        deltas = result.log.column("delta")
        assert deltas[-1] <= deltas[0]

    def test_reproducible_given_seed(self, er2_problem):
        first = LEAST(FAST).fit(er2_problem["data"], seed=3)
        second = LEAST(FAST).fit(er2_problem["data"], seed=3)
        np.testing.assert_allclose(first.weights, second.weights)

    def test_history_recorded_when_requested(self, er2_problem):
        config = LEASTConfig(
            max_outer_iterations=4, max_inner_iterations=100, tolerance=1e-6, keep_history=True
        )
        result = LEAST(config).fit(er2_problem["data"], seed=0)
        assert len(result.history) == result.n_outer_iterations
        assert all(w.shape == result.weights.shape for w in result.history)

    def test_track_h_records_notears_constraint(self, er2_problem):
        config = LEASTConfig(
            max_outer_iterations=3, max_inner_iterations=100, tolerance=1e-6, track_h=True
        )
        result = LEAST(config).fit(er2_problem["data"], seed=0)
        h_trace = result.log.column("h")
        assert np.all(np.isfinite(h_trace))
        assert h_trace[-1] == pytest.approx(notears_constraint(result.weights), rel=1e-6, abs=1e-9)

    def test_thresholding_keeps_weights_sparse(self, er2_problem):
        config = LEASTConfig(
            max_outer_iterations=3,
            max_inner_iterations=100,
            threshold=0.005,
            learning_rate=0.02,
            tolerance=1e-6,
        )
        result = LEAST(config).fit(er2_problem["data"], seed=0)
        density = np.count_nonzero(result.weights) / result.weights.size
        assert density < 1.0

    def test_batching_runs(self, er2_problem):
        config = LEASTConfig(
            max_outer_iterations=3, max_inner_iterations=100, batch_size=64, tolerance=1e-6
        )
        result = LEAST(config).fit(er2_problem["data"], seed=0)
        assert np.all(np.isfinite(result.weights))

    def test_learned_structure_is_reasonably_accurate(self, er2_problem):
        """Accuracy smoke test: F1 of the learned graph on ER-2 d=20 must be
        well above chance (the paper reports ~0.8-0.9 at this size)."""
        config = LEASTConfig(keep_history=True, track_h=True)
        result = LEAST(config).fit(er2_problem["data"], seed=1)
        search = grid_search_epsilon_tau(result, er2_problem["truth"])
        assert search.best_f1 >= 0.6

    def test_final_graph_can_be_pruned_to_dag(self, er2_problem):
        result = LEAST(FAST).fit(er2_problem["data"], seed=0)
        pruned, _ = threshold_to_dag(result.weights, initial_threshold=0.05)
        assert is_dag(pruned)

    def test_rejects_non_2d_data(self):
        with pytest.raises(ValidationError):
            LEAST(FAST).fit(np.zeros(10))

    def test_no_warm_start_still_runs(self, er2_problem):
        config = LEASTConfig(
            max_outer_iterations=2, max_inner_iterations=50, warm_start=False, tolerance=1e-6
        )
        result = LEAST(config).fit(er2_problem["data"], seed=0)
        assert result.n_outer_iterations == 2
