"""Wave scheduling, hierarchical planning, and boundary re-solve.

The wave-scheduled executor must be an *optimization*, not a semantic change:
a wave-shipped pass produces the same stitched graph as one job per block,
a hard-killed wave loses exactly its own members, and contract violations
(an "ok" result with no weights) surface as anomalies instead of silently
shrinking the graph.  Hierarchical planning must assemble the same kind of
plan partition by partition, and a boundary re-solve round must recover
cross-partition edges the partitioned first pass cannot see.

Like the other shard concurrency suites, the preemption tests run the real
engine with worker processes and are written to pass under both ``fork`` and
``spawn`` start methods (module-level solver classes, picklable configs).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.least import LEASTResult
from repro.exceptions import ValidationError
from repro.graph.dag import is_dag
from repro.metrics.structural import recall
from repro.serve.job import register_solver, unregister_solver
from repro.shard.executor import (
    MISSING_NODES_REPORT_CAP,
    ShardExecutor,
    ShardResult,
    solve_sharded,
)
from repro.shard.planner import ShardBlock, ShardPlan, ShardPlanner, _core_affinities
from repro.shard.stitcher import StitchedGraph, Stitcher, StitchReport

# Concurrency suite: abort with tracebacks instead of hanging CI on deadlock.
pytestmark = pytest.mark.timeout(180)

#: Hard deadline generous enough for a spawn-started worker to import numpy
#: and solve the instant blocks, yet short against the hanging solver's sleep.
DEADLINE = 4.0


# -- helper solvers (module level so spawn can pickle them) --------------------


@dataclass(frozen=True)
class _SizeHangConfig:
    """Config of the size-triggered hanging solver (picklable for spawn)."""

    hang_at_least: int = 10_000
    duration: float = 60.0


class _SizeHangSolver:
    """Hangs on blocks with >= ``hang_at_least`` columns, else solves a chain."""

    def __init__(self, config: _SizeHangConfig):
        self.config = config

    def fit(self, data, seed=None):
        """Return a chain graph instantly, or sleep far past any deadline."""
        d = data.shape[1]
        if d >= self.config.hang_at_least:
            time.sleep(self.config.duration)
        weights = np.zeros((d, d))
        for i in range(d - 1):
            weights[i, i + 1] = 1.0
        return LEASTResult(
            weights=weights, constraint_value=0.0, converged=True, n_outer_iterations=1
        )


@dataclass(frozen=True)
class _AlwaysBoomConfig:
    """Config of the always-crashing solver."""

    message: str = "block solver exploded"


class _AlwaysBoomSolver:
    """Raises on every fit call — the all-blocks-failed scenario."""

    def __init__(self, config: _AlwaysBoomConfig):
        self.config = config

    def fit(self, data, seed=None):
        raise ValueError(self.config.message)


@dataclass(frozen=True)
class _NoWeightsConfig:
    """Config of the contract-violating solver."""

    pass


class _NoWeightsSolver:
    """Reports a successful solve but returns no weight matrix."""

    def __init__(self, config: _NoWeightsConfig):
        self.config = config

    def fit(self, data, seed=None):
        return LEASTResult(
            weights=None, constraint_value=0.0, converged=True, n_outer_iterations=1
        )


@pytest.fixture
def hang_solver():
    register_solver("wave-hang", _SizeHangSolver, _SizeHangConfig, overwrite=True)
    yield "wave-hang"
    unregister_solver("wave-hang")


@pytest.fixture
def boom_solver():
    register_solver("wave-boom", _AlwaysBoomSolver, _AlwaysBoomConfig, overwrite=True)
    yield "wave-boom"
    unregister_solver("wave-boom")


@pytest.fixture
def no_weights_solver():
    register_solver(
        "wave-noweights", _NoWeightsSolver, _NoWeightsConfig, overwrite=True
    )
    yield "wave-noweights"
    unregister_solver("wave-noweights")


def _chain_data(d: int, n: int = 300, seed: int = 1) -> np.ndarray:
    """Samples of a coefficient-0.7 chain over ``d`` nodes."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    for j in range(1, d):
        data[:, j] += 0.7 * data[:, j - 1]
    return data


def _dense(weights) -> np.ndarray:
    return weights.toarray() if sp.issparse(weights) else np.asarray(weights)


# -- wave scheduling -----------------------------------------------------------


def test_wave_pass_matches_per_block_pass():
    """Waves are pure batching: same blocks, same seeds, same stitched graph."""
    data = _chain_data(30)
    planner = ShardPlanner(skeleton_threshold=0.2, max_block_size=8)
    config = {"max_outer_iterations": 3, "max_inner_iterations": 30}
    plain = solve_sharded(data, planner, ShardExecutor(config=config), seed=0)
    waved = solve_sharded(
        data, planner, ShardExecutor(config=config, wave_blocks=3), seed=0
    )

    assert waved.n_waves >= 1
    assert plain.n_waves == 0
    assert waved.complete and plain.complete
    np.testing.assert_allclose(_dense(waved.weights), _dense(plain.weights))
    # Member results keep per-block identities for the report.
    assert [r.job_id for r in waved.block_results] == [
        r.job_id for r in plain.block_results
    ]


def test_wave_executor_rejects_bad_parameters():
    with pytest.raises(ValidationError):
        ShardExecutor(wave_blocks=0)
    with pytest.raises(ValidationError):
        ShardExecutor(boundary_rounds=-1)


def test_crashed_wave_loses_only_its_own_blocks(hang_solver):
    """A hard-killed wave costs its members; other waves' blocks survive."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(40, 16))
    plan = ShardPlan(
        n_nodes=16,
        blocks=[
            ShardBlock(index=0, core=(0, 1, 2)),
            ShardBlock(index=1, core=(3, 4, 5)),
            ShardBlock(index=2, core=tuple(range(6, 14))),  # 8 cols -> hangs
            ShardBlock(index=3, core=(14, 15)),
        ],
    )
    executor = ShardExecutor(
        solver=hang_solver,
        config={"hang_at_least": 8, "duration": 60.0},
        wave_blocks=2,
        n_workers=2,
        timeout=DEADLINE,
        preempt_policy="fail",
    )
    result = executor.run(data, plan, seed=0)

    # Wave 1 (blocks 2 and 3) was SIGKILLed; wave 0 (blocks 0 and 1) is fine.
    assert [r.status for r in result.block_results] == [
        "ok",
        "ok",
        "preempted",
        "preempted",
    ]
    assert result.missing_nodes == list(range(6, 16))
    assert not result.complete
    assert is_dag(result.weights)
    dense = _dense(result.weights)
    assert np.count_nonzero(dense[:, 6:]) == 0
    assert np.count_nonzero(dense[6:, :]) == 0
    # The synthesized member results carry the wave-level preemption reason.
    preempted = result.block_results[2]
    assert preempted.job_id == "block-002"
    assert preempted.error is not None


def test_all_blocks_failed_yields_empty_dag_and_complete_gap_report(boom_solver):
    """Total failure still produces a valid (empty) DAG and exact gap record."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(30, 12))
    plan = ShardPlan(
        n_nodes=12,
        blocks=[
            ShardBlock(index=i, core=tuple(range(3 * i, 3 * i + 3)))
            for i in range(4)
        ],
    )
    executor = ShardExecutor(solver=boom_solver, wave_blocks=2)
    result = executor.run(data, plan, seed=0)

    assert result.n_blocks_ok == 0
    assert result.n_blocks_failed == 4
    assert not result.complete
    assert is_dag(result.weights)
    assert np.count_nonzero(_dense(result.weights)) == 0
    assert result.missing_nodes == list(range(12))
    report = result.report()
    assert report["gaps"]["n_blocks_ok"] == 0
    assert report["gaps"]["n_blocks_failed"] == 4
    assert report["gaps"]["n_missing_nodes"] == 12
    assert report["gaps"]["missing_nodes"] == list(range(12))
    assert report["gaps"]["missing_nodes_truncated"] is False
    assert all(entry["status"] == "failed" for entry in report["blocks"])
    assert all("exploded" in (entry["error"] or "") for entry in report["blocks"])


def test_ok_without_weights_is_anomaly_and_counts_as_missing(no_weights_solver):
    """status=="ok" with no weights must not silently shrink the graph."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(30, 6))
    plan = ShardPlan(
        n_nodes=6,
        blocks=[
            ShardBlock(index=0, core=(0, 1, 2)),
            ShardBlock(index=1, core=(3, 4, 5)),
        ],
    )
    executor = ShardExecutor(solver=no_weights_solver)
    result = executor.run(data, plan, seed=0)

    # Both blocks claim success, yet nothing usable came back.
    assert result.n_blocks_ok == 2
    assert result.missing_nodes == list(range(6))
    assert not result.complete
    assert len(result.anomalies) == 2
    report = result.report()
    assert report["gaps"]["n_anomalies"] == 2
    assert report["gaps"]["n_missing_nodes"] == 6
    assert all(entry["anomaly"] for entry in report["blocks"])


def test_missing_nodes_report_is_truncated_but_counted_exactly():
    """The report embeds a bounded prefix, never the full 100k-node list."""
    n_missing = MISSING_NODES_REPORT_CAP + 37
    stitched = StitchedGraph(
        weights=np.zeros((n_missing, n_missing)), report=StitchReport()
    )
    result = ShardResult(
        weights=stitched.weights,
        plan=ShardPlan(
            n_nodes=n_missing,
            blocks=[ShardBlock(index=0, core=tuple(range(n_missing)))],
        ),
        stitched=stitched,
        block_results=[],
        missing_nodes=list(range(n_missing)),
    )
    gaps = result.report()["gaps"]
    assert gaps["n_missing_nodes"] == n_missing
    assert gaps["missing_nodes"] == list(range(MISSING_NODES_REPORT_CAP))
    assert gaps["missing_nodes_truncated"] is True


# -- hierarchical planning -----------------------------------------------------


def test_hierarchical_plan_partitions_nodes_and_matches_batches():
    data = _chain_data(40)
    planner = ShardPlanner(
        skeleton_threshold=0.2, max_block_size=8, partition_columns=20
    )
    plan = planner.plan(data)

    cores = sorted(node for block in plan.blocks for node in block.core)
    assert cores == list(range(40))
    assert [block.index for block in plan.blocks] == list(range(plan.n_blocks))
    # Every block (core and halo) stays inside its own column partition.
    for block in plan.blocks:
        partition = min(block.core) // 20
        lo, hi = partition * 20, partition * 20 + 20
        assert all(lo <= node < hi for node in block.core + block.halo)
    # The incremental generator and the one-shot plan agree exactly.
    batches = list(planner.iter_block_batches(data))
    flat = [block for batch, _ in batches for block in batch]
    assert [block.core for block in flat] == [block.core for block in plan.blocks]
    assert [block.halo for block in flat] == [block.halo for block in plan.blocks]
    assert sum(edges for _, edges in batches) == plan.n_skeleton_edges


def test_partition_columns_must_fit_a_block():
    with pytest.raises(ValidationError):
        ShardPlanner(max_block_size=64, partition_columns=32)


def test_overlapped_run_stream_matches_plan_first_run():
    data = _chain_data(36)
    planner = ShardPlanner(
        skeleton_threshold=0.2, max_block_size=6, partition_columns=18
    )
    config = {"max_outer_iterations": 3, "max_inner_iterations": 30}
    executor = ShardExecutor(config=config, wave_blocks=2)
    streamed = executor.run_stream(data, planner, seed=0)
    plan = planner.plan(data)
    planned = ShardExecutor(config=config, wave_blocks=2).run(data, plan, seed=0)

    assert streamed.complete and planned.complete
    assert streamed.plan.n_blocks == planned.plan.n_blocks
    np.testing.assert_allclose(_dense(streamed.weights), _dense(planned.weights))


def test_solve_sharded_routes_partitioned_planners_through_run_stream():
    data = _chain_data(24)
    planner = ShardPlanner(
        skeleton_threshold=0.2, max_block_size=6, partition_columns=12
    )
    executor = ShardExecutor(
        config={"max_outer_iterations": 3, "max_inner_iterations": 30},
        wave_blocks=2,
    )
    result = solve_sharded(data, planner, executor, seed=0)
    assert result.complete
    assert result.plan.n_nodes == 24
    assert result.n_waves >= 1


# -- vectorized halo ranking ---------------------------------------------------


def test_core_affinities_match_naive_loop_dense_and_sparse():
    rng = np.random.default_rng(5)
    affinity = np.abs(rng.normal(size=(30, 30)))
    affinity = (affinity + affinity.T) / 2
    np.fill_diagonal(affinity, 0.0)
    core = np.asarray([2, 7, 11], dtype=int)
    candidates = np.asarray([0, 4, 9, 15, 22, 29], dtype=int)

    expected = np.asarray(
        [max(affinity[candidate, c] for c in core) for candidate in candidates]
    )
    dense_scores = _core_affinities(affinity, candidates, core)
    np.testing.assert_allclose(dense_scores, expected)
    sparse_scores = _core_affinities(sp.csr_matrix(affinity), candidates, core)
    np.testing.assert_allclose(sparse_scores, expected)


def test_halo_ranking_unchanged_by_vectorization():
    """max_halo_size keeps the strongest-affinity candidates, ties ascending."""
    data = _chain_data(20, seed=3)
    capped = ShardPlanner(
        skeleton_threshold=0.15, max_block_size=5, max_halo_size=2
    ).plan(data)
    uncapped = ShardPlanner(skeleton_threshold=0.15, max_block_size=5).plan(data)
    for block_capped, block_full in zip(capped.blocks, uncapped.blocks):
        assert set(block_capped.halo) <= set(block_full.halo)
        assert len(block_capped.halo) <= 2


# -- boundary re-solve ---------------------------------------------------------


def _two_component_problem() -> tuple[np.ndarray, np.ndarray]:
    """Two chain components plus cross-component edges only a global view sees."""
    d, half = 40, 20
    truth = np.zeros((d, d))
    for part in (0, half):
        for j in range(part + 1, part + half):
            truth[j - 1, j] = 0.8
    for a, b in ((5, 25), (10, 30), (15, 35)):
        truth[a, b] = 0.9
    rng = np.random.default_rng(7)
    n = 600
    data = np.zeros((n, d))
    for j in range(d):  # truth is upper-triangular: 0..d-1 is topological
        data[:, j] = truth[:, j] @ data.T + rng.normal(size=n)
    return data, truth


def test_boundary_resolve_strictly_increases_recall():
    """A re-solve round recovers cross-partition edges the first pass misses."""
    data, truth = _two_component_problem()
    planner = ShardPlanner(
        skeleton_threshold=0.25, max_block_size=5, partition_columns=20
    )
    executor = ShardExecutor(
        config={"max_outer_iterations": 4, "max_inner_iterations": 40},
        edge_threshold=0.15,
        wave_blocks=3,
        boundary_rounds=1,
    )
    result = solve_sharded(data, planner, executor, seed=0)

    assert result.initial_weights is not None
    before = recall(result.initial_weights, truth)
    after = recall(result.weights, truth)
    assert after > before
    assert is_dag(result.weights)
    # The partitioned first pass cannot produce cross-partition edges at all.
    initial = _dense(result.initial_weights)
    assert np.count_nonzero(initial[:20, 20:]) == 0
    assert np.count_nonzero(initial[20:, :20]) == 0
    # The round is accounted in the report.
    assert len(result.rounds) == 1
    entry = result.rounds[0]
    assert entry["round"] == 1
    assert entry["n_blocks_ok"] >= 1
    assert entry["n_edges_after"] > entry["n_edges_before"]
    report = result.report()
    assert report["resolve"]["n_rounds"] == 1
    assert report["resolve"]["rounds"][0]["n_boundary_nodes"] == entry[
        "n_boundary_nodes"
    ]


def test_boundary_resolve_noop_without_boundary():
    """No halos and no gaps -> the round loop exits without doing anything."""
    rng = np.random.default_rng(2)
    data = rng.normal(size=(60, 6))
    planner = ShardPlanner(skeleton_threshold=0.99, max_block_size=6, halo_depth=0)
    executor = ShardExecutor(
        config={"max_outer_iterations": 2, "max_inner_iterations": 20},
        boundary_rounds=2,
    )
    result = solve_sharded(data, planner, executor, seed=0)
    assert result.rounds == []
    assert result.initial_weights is not None


def test_wave_stitcher_default() -> None:
    """A default Stitcher instance is shared state-free across runs."""
    stitcher = Stitcher()
    graph = stitcher.stitch([], 4)
    assert is_dag(graph.weights)
    assert graph.report.n_blocks == 0
