"""Tests for the spectral acyclicity bound (the paper's core contribution)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.acyclicity import (
    SpectralAcyclicityBound,
    spectral_bound,
    spectral_bound_gradient,
    spectral_bound_with_gradient,
    spectral_radius,
)
from repro.core.notears_constraint import notears_constraint
from repro.exceptions import ValidationError
from repro.graph.generation import random_dag


class TestSpectralRadius:
    def test_dag_has_zero_radius(self, small_dag):
        assert spectral_radius(small_dag @ small_dag.T * 0 + small_dag**2) == pytest.approx(0.0, abs=1e-9)

    def test_cycle_has_positive_radius(self, cyclic_matrix):
        assert spectral_radius(cyclic_matrix**2) > 0

    def test_identity(self):
        assert spectral_radius(np.eye(3)) == pytest.approx(1.0)


class TestBoundValue:
    def test_upper_bounds_the_radius(self, rng):
        bound = SpectralAcyclicityBound(k=5, alpha=0.9)
        for _ in range(10):
            weights = rng.normal(size=(12, 12)) * (rng.random((12, 12)) < 0.3)
            np.fill_diagonal(weights, 0.0)
            assert bound.value(weights) >= spectral_radius(weights**2) - 1e-9

    def test_zero_for_shallow_dag(self, small_dag):
        # The fixture DAG has depth 2 < k, so the iterated bound reaches 0.
        assert spectral_bound(small_dag, k=5) == pytest.approx(0.0, abs=1e-12)

    def test_positive_for_cycles(self, cyclic_matrix):
        assert spectral_bound(cyclic_matrix) > 0

    def test_every_k_gives_a_valid_upper_bound(self, rng):
        weights = rng.normal(size=(15, 15)) * (rng.random((15, 15)) < 0.3)
        np.fill_diagonal(weights, 0.0)
        radius = spectral_radius(weights**2)
        values = [spectral_bound(weights, k=k) for k in (0, 1, 3, 5, 10)]
        # Lemma 1: every iterate of the diagonal transformation yields an upper
        # bound on the spectral radius (the iteration is not strictly monotone
        # for every matrix, but it never dips below the radius).
        assert all(value >= radius - 1e-9 for value in values)

    def test_alpha_limits_match_row_and_column_sums(self, rng):
        weights = np.abs(rng.normal(size=(6, 6)))
        np.fill_diagonal(weights, 0.0)
        s = weights**2
        assert spectral_bound(weights, k=0, alpha=1.0) == pytest.approx(s.sum())
        assert spectral_bound(weights, k=0, alpha=0.0) == pytest.approx(s.sum())

    def test_empty_matrix(self):
        assert spectral_bound(np.zeros((4, 4))) == 0.0

    def test_sparse_matches_dense(self, rng):
        weights = rng.normal(size=(20, 20)) * (rng.random((20, 20)) < 0.2)
        np.fill_diagonal(weights, 0.0)
        dense_value = spectral_bound(weights)
        sparse_value = spectral_bound(sp.csr_matrix(weights))
        assert sparse_value == pytest.approx(dense_value, rel=1e-12)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            SpectralAcyclicityBound(k=-1)
        with pytest.raises(ValidationError):
            SpectralAcyclicityBound(alpha=1.5)

    def test_callable_interface(self, small_dag):
        bound = SpectralAcyclicityBound()
        assert bound(small_dag) == bound.value(small_dag)

    def test_consistency_with_notears_h(self, rng):
        """Driving the bound to ~0 implies h(W) ~ 0 (Lemma 2 direction)."""
        for _ in range(5):
            weights = random_dag("ER-2", 15, seed=int(rng.integers(1000)))
            assert spectral_bound(weights, k=15) <= 1e-6
            assert notears_constraint(weights) <= 1e-6


class TestBoundGradient:
    @pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_finite_differences_dense(self, rng, k, alpha):
        # Use a strictly positive matrix so the bound is differentiable everywhere.
        weights = rng.uniform(0.2, 1.0, size=(7, 7))
        np.fill_diagonal(weights, 0.0)
        bound = SpectralAcyclicityBound(k=k, alpha=alpha)
        _, gradient = bound.value_and_gradient(weights)
        epsilon = 1e-6
        for _ in range(15):
            i, j = rng.integers(0, 7, size=2)
            if i == j:
                continue
            plus = weights.copy()
            plus[i, j] += epsilon
            minus = weights.copy()
            minus[i, j] -= epsilon
            finite_difference = (bound.value(plus) - bound.value(minus)) / (2 * epsilon)
            assert gradient[i, j] == pytest.approx(finite_difference, rel=1e-4, abs=1e-6)

    def test_sparse_gradient_matches_dense(self, rng):
        weights = rng.normal(size=(15, 15)) * (rng.random((15, 15)) < 0.3)
        np.fill_diagonal(weights, 0.0)
        dense_value, dense_gradient = spectral_bound_with_gradient(weights)
        sparse_value, sparse_gradient = spectral_bound_with_gradient(sp.csr_matrix(weights))
        assert sparse_value == pytest.approx(dense_value)
        np.testing.assert_allclose(sparse_gradient.toarray(), dense_gradient, atol=1e-9)

    def test_gradient_support_matches_weights(self, rng):
        weights = rng.normal(size=(10, 10)) * (rng.random((10, 10)) < 0.3)
        np.fill_diagonal(weights, 0.0)
        gradient = spectral_bound_gradient(weights)
        assert np.all(gradient[weights == 0] == 0)

    def test_gradient_zero_for_zero_matrix(self):
        gradient = spectral_bound_gradient(np.zeros((5, 5)))
        np.testing.assert_array_equal(gradient, 0.0)

    def test_gradient_descent_reduces_bound(self, rng):
        weights = rng.normal(size=(8, 8)) * 0.8
        np.fill_diagonal(weights, 0.0)
        bound = SpectralAcyclicityBound()
        value = bound.value(weights)
        for _ in range(200):
            current, gradient = bound.value_and_gradient(weights)
            weights = weights - 0.05 * gradient
        assert bound.value(weights) < value
