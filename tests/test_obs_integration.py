"""End-to-end tracing tests: spans and metrics across serve, shard, re-learn.

These tests drive the instrumented layers with a real :class:`~repro.obs.Tracer`
and assert the structural contract of the merged traces: every job decomposes
into ``queue_wait → worker_spawn → data_materialize → solve (outer_iter × N) →
cache_store`` with no orphan spans, across the inline path, real worker
processes, preemption kills, the re-learn scheduler, and sharded solves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.least import LEASTConfig
from repro.obs import InMemorySink, Tracer, validate_trace, wall_clock_breakdown
from repro.serve.cache import InMemoryCache
from repro.serve.job import LearningJob, register_solver, unregister_solver
from repro.serve.runner import BatchRunner
from repro.serve.scheduler import RelearnScheduler
from repro.serve.streaming import StreamingRunner
from repro.shard.executor import ShardExecutor, solve_sharded
from repro.shard.planner import ShardPlanner

FAST_CONFIG = {"max_outer_iterations": 3, "max_inner_iterations": 40}


def _job(seed: int = 0, **overrides) -> LearningJob:
    rng = np.random.default_rng(7)
    data = rng.normal(size=(40, 6))
    options = {"data": data, "seed": seed, "config": dict(FAST_CONFIG)}
    options.update(overrides)
    return LearningJob(**options)


def _by_name(tracer: Tracer) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for span in tracer.sink.spans():
        grouped.setdefault(span["name"], []).append(span)
    return grouped


def _ids(spans: list[dict]) -> set[str]:
    return {span["span_id"] for span in spans}


@dataclass(frozen=True)
class _HangConfig:
    duration: float = 60.0


class _HangSolver:
    """A solver that sleeps far past any reasonable deadline."""

    def __init__(self, config: _HangConfig):
        self.config = config

    def fit(self, data, seed=None):
        time.sleep(self.config.duration)
        from repro.core.least import LEASTResult

        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


@pytest.fixture
def hang_solver():
    register_solver("obs-hang", _HangSolver, _HangConfig, overwrite=True)
    yield
    unregister_solver("obs-hang")


class TestTracedInlinePath:
    def test_job_span_tree_and_metrics(self):
        tracer = Tracer()
        runner = StreamingRunner(n_workers=1, tracer=tracer)
        results = list(runner.stream([_job(seed=s) for s in range(2)]))
        assert [r.status for r in results] == ["ok", "ok"]

        spans = tracer.sink.spans()
        assert validate_trace(spans)["n_orphans"] == 0
        by_name = _by_name(tracer)
        assert len(by_name["job"]) == 2
        assert len(by_name["queue_wait"]) == 2
        assert len(by_name["data_materialize"]) == 2
        assert len(by_name["solve"]) == 2
        assert len(by_name["outer_iter"]) >= 2
        # No subprocess on the inline path: no spawn, no worker root.
        assert "worker_spawn" not in by_name and "worker" not in by_name
        # Every non-job span hangs off a job span.
        job_ids = _ids(by_name["job"])
        for name in ("queue_wait", "data_materialize", "solve"):
            assert all(s["parent_id"] in job_ids for s in by_name[name])
        solve_ids = _ids(by_name["solve"])
        assert all(s["parent_id"] in solve_ids for s in by_name["outer_iter"])

        counter = tracer.metrics.counter("serve_jobs_total", status="ok")
        assert counter.value == 2.0
        assert tracer.metrics.histogram("serve_job_seconds").count == 2
        assert tracer.metrics.histogram("serve_queue_wait_seconds").count == 2

    def test_job_span_attributes_and_solver_context(self):
        tracer = Tracer()
        runner = StreamingRunner(n_workers=1, tracer=tracer)
        list(runner.stream([_job()]))
        job = _by_name(tracer)["job"][0]
        assert job["attributes"]["job_id"] == "job-000"
        assert job["attributes"]["solver"] == "least"
        assert job["attributes"]["attempts"] == 1
        assert job["attributes"]["cache_hit"] is False
        solve = _by_name(tracer)["solve"][0]
        assert solve["attributes"]["n_outer_iterations"] >= 1
        assert "converged" in solve["attributes"]

    def test_cache_hit_and_store_spans(self):
        tracer = Tracer()
        cache = InMemoryCache()
        manifest = [_job()]
        list(StreamingRunner(cache=cache, tracer=tracer).stream(manifest))
        by_name = _by_name(tracer)
        assert len(by_name["cache_store"]) == 1
        assert by_name["cache_store"][0]["parent_id"] in _ids(by_name["job"])

        # A second pass over the same manifest is a pure cache hit: no solve,
        # no second store, and the hit counter moves.
        list(StreamingRunner(cache=cache, tracer=tracer).stream(manifest))
        by_name = _by_name(tracer)
        assert len(by_name["cache_store"]) == 1
        assert len(by_name["solve"]) == 1
        assert len(by_name["job"]) == 2
        assert tracer.metrics.counter("serve_cache_hits_total").value == 1.0
        hit_job = by_name["job"][1]
        assert hit_job["attributes"]["cache_hit"] is True

    def test_failed_materialization_marks_spans(self):
        tracer = Tracer()
        bad = LearningJob(dataset="no-such-dataset", config=dict(FAST_CONFIG))
        results = list(StreamingRunner(tracer=tracer).stream([bad]))
        assert results[0].status == "failed"
        by_name = _by_name(tracer)
        assert by_name["data_materialize"][0]["status"] == "error"
        assert by_name["job"][0]["status"] == "failed"
        assert tracer.metrics.counter("serve_jobs_total", status="failed").value == 1.0
        assert validate_trace(tracer.sink.spans())["n_orphans"] == 0

    def test_untraced_runner_emits_nothing(self):
        runner = StreamingRunner(n_workers=1)
        assert [r.status for r in runner.stream([_job()])] == ["ok"]
        assert runner.tracer is None


class TestTracedWorkerPath:
    def test_worker_spans_merge_into_one_tree(self):
        tracer = Tracer()
        runner = StreamingRunner(n_workers=2, timeout=60.0, tracer=tracer)
        results = list(runner.stream([_job(seed=s) for s in range(3)]))
        assert [r.status for r in results] == ["ok"] * 3

        spans = tracer.sink.spans()
        assert validate_trace(spans)["n_orphans"] == 0
        by_name = _by_name(tracer)
        assert len(by_name["job"]) == 3
        assert len(by_name["worker"]) == 3
        # Two pool workers serve three jobs: spawn is paid per worker now,
        # not per job — that is the whole point of the pool.
        assert len(by_name["worker_spawn"]) == 2
        assert len(by_name["solve"]) == 3
        job_ids = _ids(by_name["job"])
        assert all(s["parent_id"] in job_ids for s in by_name["worker"])
        # worker_spawn spans are root-level pool lifecycle, recorded at the
        # ready handshake — they belong to the worker, not to any one job.
        assert all(s["parent_id"] is None for s in by_name["worker_spawn"])
        worker_ids = _ids(by_name["worker"])
        assert all(s["parent_id"] in worker_ids for s in by_name["solve"])
        # The spawn gap is the launch→ready interval, a real positive
        # duration — the number the throughput benchmark pins.
        for spawn in by_name["worker_spawn"]:
            assert spawn["duration"] > 0.0
            assert spawn["attributes"]["pid"]
        breakdown = wall_clock_breakdown(spans)
        assert breakdown["worker_spawn"] > 0.0 and breakdown["solve"] > 0.0

    def test_spool_dir_is_cleaned_up(self):
        tracer = Tracer()
        runner = StreamingRunner(n_workers=2, timeout=60.0, tracer=tracer)
        list(runner.stream([_job()]))
        assert runner._spool_dir is None

    def test_preempted_job_trace_has_no_orphans(self, hang_solver):
        tracer = Tracer()
        runner = StreamingRunner(n_workers=1, timeout=1.0, tracer=tracer)
        hanging = LearningJob(
            solver="obs-hang", data=np.zeros((4, 3)), config={"duration": 60.0}
        )
        results = list(runner.stream([hanging]))
        assert results[0].status == "preempted"

        spans = tracer.sink.spans()
        assert validate_trace(spans)["n_orphans"] == 0
        job = _by_name(tracer)["job"][0]
        assert job["status"] == "preempted"
        kills = tracer.metrics.counter("serve_preemptions_total", kind="parent_kill")
        assert kills.value == 1.0

    def test_requeue_counts_and_single_job_span(self, hang_solver):
        tracer = Tracer()
        runner = StreamingRunner(
            n_workers=1,
            timeout=0.8,
            preempt_policy="requeue",
            preempt_retries=1,
            tracer=tracer,
        )
        hanging = LearningJob(
            solver="obs-hang", data=np.zeros((4, 3)), config={"duration": 60.0}
        )
        results = list(runner.stream([hanging]))
        assert results[0].status == "preempted"
        assert runner.telemetry.n_requeued == 1
        assert tracer.metrics.counter("serve_requeues_total").value == 1.0

        by_name = _by_name(tracer)
        # One job span covers the whole lifecycle; each attempt adds its own
        # queue_wait child.
        assert len(by_name["job"]) == 1
        assert len(by_name["queue_wait"]) == 2
        assert validate_trace(tracer.sink.spans())["n_orphans"] == 0


class TestTracedBatchAndScheduler:
    def test_batch_runner_forwards_tracer(self):
        tracer = Tracer()
        report = BatchRunner(n_workers=1, tracer=tracer).run([_job()])
        assert report.n_ok == 1
        assert len(_by_name(tracer)["job"]) == 1

    def test_scheduler_window_spans(self):
        tracer = Tracer()
        scheduler = RelearnScheduler(
            least_config=LEASTConfig(**FAST_CONFIG), tracer=tracer
        )
        rng = np.random.default_rng(3)
        names = [f"n{i}" for i in range(5)]
        for _ in range(2):
            scheduler.step(rng.normal(size=(60, 5)), names, seed=0)

        by_name = _by_name(tracer)
        assert len(by_name["window"]) == 2
        first, second = by_name["window"]
        assert first["attributes"]["window_index"] == 0
        assert first["attributes"]["warm_started"] is False
        assert second["attributes"]["warm_started"] is True
        # Solver spans nest under their window.
        window_ids = _ids(by_name["window"])
        assert all(s["parent_id"] in window_ids for s in by_name["solve"])
        warm = tracer.metrics.counter("relearn_windows_total", mode="warm")
        cold = tracer.metrics.counter("relearn_windows_total", mode="cold")
        assert cold.value == 1.0 and warm.value == 1.0
        assert validate_trace(tracer.sink.spans())["n_orphans"] == 0


class TestTracedShardPath:
    def test_shard_spans_nest_under_shard_solve(self):
        tracer = Tracer()
        rng = np.random.default_rng(11)
        data = rng.normal(size=(80, 12))
        planner = ShardPlanner(max_block_size=5, min_block_size=2)
        executor = ShardExecutor(config=dict(FAST_CONFIG), tracer=tracer)
        plan = planner.plan(data, tracer=tracer)
        result = executor.run(data, plan, seed=0)
        assert result.n_blocks_ok == plan.n_blocks

        spans = tracer.sink.spans()
        assert validate_trace(spans)["n_orphans"] == 0
        by_name = _by_name(tracer)
        assert len(by_name["shard_plan"]) == 1
        assert len(by_name["shard_solve"]) == 1
        assert len(by_name["stitch"]) == 1
        assert len(by_name["job"]) == plan.n_blocks
        shard_id = by_name["shard_solve"][0]["span_id"]
        assert by_name["stitch"][0]["parent_id"] == shard_id
        assert all(s["parent_id"] == shard_id for s in by_name["job"])
        assert by_name["shard_plan"][0]["attributes"]["n_blocks"] == plan.n_blocks
        ok_blocks = tracer.metrics.counter("shard_blocks_total", status="ok")
        assert ok_blocks.value == float(plan.n_blocks)

    def test_solve_sharded_uses_executor_tracer(self):
        tracer = Tracer(sink=InMemorySink())
        rng = np.random.default_rng(5)
        data = rng.normal(size=(60, 8))
        result = solve_sharded(
            data,
            planner=ShardPlanner(max_block_size=4, min_block_size=2),
            executor=ShardExecutor(config=dict(FAST_CONFIG), tracer=tracer),
        )
        assert result.block_results
        names = {span["name"] for span in tracer.sink.spans()}
        assert {"shard_plan", "shard_solve", "stitch", "job", "solve"} <= names
