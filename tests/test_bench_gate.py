"""Tests for tools/bench_gate.py — the benchmark regression gate."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

_spec = importlib.util.spec_from_file_location(
    "bench_gate", REPO_ROOT / "tools" / "bench_gate.py"
)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


class TestResolvePath:
    def test_nested_lookup(self):
        payload = {"a": {"b": {"c": 3}}}
        assert bench_gate.resolve_path(payload, "a.b.c") == 3

    def test_missing_key_returns_none(self):
        assert bench_gate.resolve_path({"a": {}}, "a.b") is None
        assert bench_gate.resolve_path({"a": 1}, "a.b") is None


class TestCheckMetric:
    def test_max_rule(self):
        assert bench_gate.check_metric("m", 1.0, {"max": 2.0}) is None
        assert "exceeds max" in bench_gate.check_metric("m", 3.0, {"max": 2.0})

    def test_min_rule(self):
        assert bench_gate.check_metric("m", 5.0, {"min": 2.0}) is None
        assert "below min" in bench_gate.check_metric("m", 1.0, {"min": 2.0})

    def test_baseline_lower_is_better(self):
        rule = {"baseline": 10.0, "tolerance_pct": 50, "direction": "lower"}
        assert bench_gate.check_metric("m", 14.0, rule) is None
        assert "regressed" in bench_gate.check_metric("m", 16.0, rule)

    def test_baseline_higher_is_better(self):
        rule = {"baseline": 1.0, "tolerance_pct": 20, "direction": "higher"}
        assert bench_gate.check_metric("m", 0.9, rule) is None
        assert "regressed" in bench_gate.check_metric("m", 0.7, rule)

    def test_bool_coerced(self):
        assert bench_gate.check_metric("m", True, {"min": 1}) is None
        assert "below min" in bench_gate.check_metric("m", False, {"min": 1})

    def test_non_numeric_fails(self):
        assert "not numeric" in bench_gate.check_metric("m", "fast", {"max": 1})

    def test_unknown_direction_fails(self):
        rule = {"baseline": 1.0, "direction": "sideways"}
        assert "unknown direction" in bench_gate.check_metric("m", 1.0, rule)


class TestCheckBenchFile:
    def test_missing_file_is_failure(self, tmp_path):
        failures, n = bench_gate.check_bench_file(
            tmp_path / "BENCH_x.json", {"metrics": {"a": {"max": 1}}}
        )
        assert failures and "missing" in failures[0]

    def test_missing_metric_is_failure(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"a": 1.0}))
        failures, n = bench_gate.check_bench_file(
            path, {"metrics": {"a": {"max": 2}, "b.c": {"max": 2}}}
        )
        assert n == 2
        assert len(failures) == 1 and "metric missing" in failures[0]

    def test_invalid_json_is_failure(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{not json")
        failures, _ = bench_gate.check_bench_file(path, {"metrics": {}})
        assert failures and "not valid JSON" in failures[0]

    def test_conditional_rule_skipped_when_guard_falsy(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"numba_available": False, "speedup": 1.2}))
        spec = {"metrics": {"speedup": {"min": 3.0, "when": "numba_available"}}}
        failures, n = bench_gate.check_bench_file(path, spec)
        assert failures == [] and n == 1

    def test_conditional_rule_enforced_when_guard_truthy(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"numba_available": True, "speedup": 1.2}))
        spec = {"metrics": {"speedup": {"min": 3.0, "when": "numba_available"}}}
        failures, _ = bench_gate.check_bench_file(path, spec)
        assert len(failures) == 1 and "below min 3" in failures[0]

    def test_conditional_rule_skipped_when_guard_missing(self, tmp_path):
        # An absent guard path counts as falsy: the strict rule stays off.
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"speedup": 1.2}))
        spec = {"metrics": {"speedup": {"min": 3.0, "when": "numba_available"}}}
        failures, _ = bench_gate.check_bench_file(path, spec)
        assert failures == []

    def test_rule_list_checks_every_applicable_rule(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"numba_available": False, "speedup": 0.5}))
        spec = {
            "metrics": {
                "speedup": [
                    {"min": 3.0, "when": "numba_available"},
                    {"min": 0.8},
                ]
            }
        }
        failures, n = bench_gate.check_bench_file(path, spec)
        assert n == 1
        assert len(failures) == 1 and "below min 0.8" in failures[0]

    def test_rule_list_can_fail_multiple_rules(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"numba_available": True, "speedup": 0.5}))
        spec = {
            "metrics": {
                "speedup": [
                    {"min": 3.0, "when": "numba_available"},
                    {"min": 0.8},
                ]
            }
        }
        failures, _ = bench_gate.check_bench_file(path, spec)
        assert len(failures) == 2

    def test_non_object_rule_is_failure(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"speedup": 1.0}))
        failures, _ = bench_gate.check_bench_file(
            path, {"metrics": {"speedup": ["min 3"]}}
        )
        assert len(failures) == 1 and "is not an object" in failures[0]


class TestCheckHistory:
    def _row(self, **overrides):
        row = {
            "schema": bench_gate.HISTORY_SCHEMA_VERSION,
            "bench": "serve",
            "written_at": "2026-08-08T00:00:00+00:00",
            "run_id": "local",
            "metrics": {"throughput.speedup": 1.2},
        }
        row.update(overrides)
        return row

    def test_valid_history_passes(self, tmp_path):
        path = tmp_path / "BENCH_history.ndjson"
        path.write_text(json.dumps(self._row()) + "\n")
        assert bench_gate.check_history(path) == []

    def test_empty_history_fails(self, tmp_path):
        path = tmp_path / "BENCH_history.ndjson"
        path.write_text("")
        assert any("no history rows" in f for f in bench_gate.check_history(path))

    def test_wrong_schema_version_fails(self, tmp_path):
        path = tmp_path / "BENCH_history.ndjson"
        path.write_text(json.dumps(self._row(schema=99)) + "\n")
        assert any("schema" in f for f in bench_gate.check_history(path))

    def test_missing_key_fails(self, tmp_path):
        row = self._row()
        del row["run_id"]
        path = tmp_path / "BENCH_history.ndjson"
        path.write_text(json.dumps(row) + "\n")
        assert any("run_id" in f for f in bench_gate.check_history(path))

    def test_non_numeric_metric_fails(self, tmp_path):
        path = tmp_path / "BENCH_history.ndjson"
        path.write_text(
            json.dumps(self._row(metrics={"m": "fast"})) + "\n"
        )
        assert any("non-numeric" in f for f in bench_gate.check_history(path))


class TestMainAgainstCommittedArtifacts:
    """The gate must pass against the repo's committed BENCH files."""

    def test_gate_passes_on_committed_baselines(self, capsys):
        code = bench_gate.main(
            [
                "--baselines", str(REPO_ROOT / "benchmarks" / "baselines.json"),
                "--bench-dir", str(REPO_ROOT),
                "--history", str(REPO_ROOT / "BENCH_history.ndjson"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "within tolerance" in out

    def test_gate_fails_on_degraded_copy(self, tmp_path, capsys):
        # Degrade one gated metric in a copy of the committed artifact and
        # check the gate turns red.
        payload = json.loads((REPO_ROOT / "BENCH_serve.json").read_text())
        payload["cache"]["hits"] = 0
        (tmp_path / "BENCH_serve.json").write_text(json.dumps(payload))
        baselines = {
            "BENCH_serve.json": {"metrics": {"cache.hits": {"min": 16}}}
        }
        (tmp_path / "baselines.json").write_text(json.dumps(baselines))
        code = bench_gate.main(
            [
                "--baselines", str(tmp_path / "baselines.json"),
                "--bench-dir", str(tmp_path),
            ]
        )
        assert code == 1
        assert "cache.hits" in capsys.readouterr().err

    def test_missing_baselines_file_exits_two(self, tmp_path):
        assert bench_gate.main(["--baselines", str(tmp_path / "nope.json")]) == 2


class TestHistoryAppend:
    """benchmarks/helpers.append_bench_history + flatten_metrics."""

    def test_flatten_skips_pid_keyed_dicts_and_strings(self):
        from benchmarks.helpers import flatten_metrics

        flat = flatten_metrics(
            {
                "speedup": 1.5,
                "ok": True,
                "label": "fast",
                "nested": {"seconds": 2.0},
                "per_worker": {"1234": 9.9, "5678": 8.8},
            }
        )
        assert flat == {"speedup": 1.5, "ok": 1.0, "nested.seconds": 2.0}

    def test_append_bench_history_row_schema(self, tmp_path):
        from benchmarks.helpers import HISTORY_SCHEMA_VERSION, append_bench_history

        path = tmp_path / "history.ndjson"
        append_bench_history("serve", {"speedup": 1.5}, path=path)
        append_bench_history("shard", {"f1": 0.6}, path=path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["bench"] for r in rows] == ["serve", "shard"]
        for row in rows:
            assert row["schema"] == HISTORY_SCHEMA_VERSION
            assert row["run_id"] == "local" or row["run_id"]
            assert "written_at" in row
        assert rows[0]["metrics"] == {"speedup": 1.5}

    def test_history_rows_validate_against_gate(self, tmp_path):
        from benchmarks.helpers import append_bench_history

        path = tmp_path / "history.ndjson"
        append_bench_history("serve", {"speedup": 1.5, "flag": True}, path=path)
        assert bench_gate.check_history(path) == []

    def test_schema_versions_agree(self):
        from benchmarks.helpers import HISTORY_SCHEMA_VERSION

        assert HISTORY_SCHEMA_VERSION == bench_gate.HISTORY_SCHEMA_VERSION
