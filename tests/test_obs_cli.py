"""Tests for the ``repro-obs`` command line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[1]
COMMITTED_TRACE = REPO_ROOT / "trace.ndjson"


def _span(span_id, name, start, duration, parent=None):
    return {
        "event": "span",
        "trace_id": "t0",
        "span_id": span_id,
        "parent_id": parent,
        "name": name,
        "start": float(start),
        "wall": 1000.0 + float(start),
        "duration": float(duration),
        "status": "ok",
        "attributes": {},
    }


def _write_trace(path, spans):
    path.write_text("".join(json.dumps(s) + "\n" for s in spans))
    return path


@pytest.fixture
def small_trace(tmp_path):
    return _write_trace(
        tmp_path / "trace.ndjson",
        [
            _span("r", "job", 0.0, 10.0),
            _span("q", "queue_wait", 0.0, 2.0, parent="r"),
            _span("s", "solve", 2.0, 8.0, parent="r"),
        ],
    )


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert set(subparsers.choices) == {
            "summarize", "critical-path", "diff", "export", "check"
        }


class TestSummarize:
    def test_text_output(self, small_trace, capsys):
        assert main(["summarize", str(small_trace)]) == 0
        out = capsys.readouterr().out
        assert "solve" in out and "queue_wait" in out

    def test_json_output(self, small_trace, capsys):
        assert main(["summarize", str(small_trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["wall_clock"]["n_spans"] == 3
        assert "phases" in payload

    def test_waterfall(self, small_trace, capsys):
        assert main(["summarize", str(small_trace), "--waterfall"]) == 0
        assert "job" in capsys.readouterr().out


class TestCriticalPath:
    def test_committed_trace_tiles_root_within_one_percent(self, capsys):
        # Acceptance criterion, CLI flavor: running the critical-path command
        # on the repo's committed trace prints a path whose total equals the
        # root span duration within 1%.
        assert main(["critical-path", str(COMMITTED_TRACE), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        total = payload["total_seconds"]
        root_duration = payload["root_duration"]
        assert root_duration > 0
        assert abs(total - root_duration) <= 0.01 * root_duration
        assert payload["segments"]

    def test_text_output_mentions_total(self, small_trace, capsys):
        assert main(["critical-path", str(small_trace)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "10.0" in out

    def test_explicit_root(self, small_trace, capsys):
        assert main(["critical-path", str(small_trace), "--root", "s"]) == 0
        assert "solve" in capsys.readouterr().out

    def test_unknown_root_fails(self, small_trace, capsys):
        assert main(["critical-path", str(small_trace), "--root", "zz"]) == 2


class TestDiff:
    def _traces(self, tmp_path, factor):
        baseline = _write_trace(
            tmp_path / "a.ndjson",
            [
                _span("r", "job", 0.0, 10.0),
                _span("s", "solve", 0.0, 8.0, parent="r"),
            ],
        )
        candidate = _write_trace(
            tmp_path / "b.ndjson",
            [
                _span("r", "job", 0.0, 10.0 * factor),
                _span("s", "solve", 0.0, 8.0 * factor, parent="r"),
            ],
        )
        return baseline, candidate

    def test_no_regression_exits_zero(self, tmp_path, capsys):
        baseline, candidate = self._traces(tmp_path, 1.0)
        assert main(["diff", str(baseline), str(candidate)]) == 0
        assert "ok: no span-name" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        # Acceptance criterion: diff exits nonzero when a span-name total
        # regresses past the tolerance.
        baseline, candidate = self._traces(tmp_path, 2.0)
        code = main(["diff", str(baseline), str(candidate), "--tolerance", "0.25"])
        assert code == 1
        out = capsys.readouterr().out
        assert "solve" in out

    def test_tolerance_flag_loosens_gate(self, tmp_path):
        baseline, candidate = self._traces(tmp_path, 1.5)
        assert main(["diff", str(baseline), str(candidate),
                     "--tolerance", "2.0"]) == 0
        assert main(["diff", str(baseline), str(candidate),
                     "--tolerance", "0.1"]) == 1

    def test_json_mode_still_exits_nonzero(self, tmp_path, capsys):
        baseline, candidate = self._traces(tmp_path, 2.0)
        assert main(["diff", str(baseline), str(candidate), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"]


class TestExport:
    def test_chrome_export_default_output(self, small_trace, capsys):
        assert main(["export", str(small_trace), "--format", "chrome"]) == 0
        out_path = Path(str(small_trace) + ".chrome.json")
        assert out_path.exists()
        payload = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_explicit_output_path(self, small_trace, tmp_path):
        target = tmp_path / "out.json"
        assert main(["export", str(small_trace), "-o", str(target)]) == 0
        assert json.loads(target.read_text())["traceEvents"]


class TestCheck:
    def test_clean_trace_passes(self, small_trace, capsys):
        code = main([
            "check", str(small_trace),
            "--require-span", "job", "--require-span", "solve",
        ])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_missing_required_span_fails(self, small_trace, capsys):
        assert main(["check", str(small_trace),
                     "--require-span", "stitch"]) == 1
        assert "stitch" in capsys.readouterr().err

    def test_orphans_fail(self, tmp_path):
        trace = _write_trace(
            tmp_path / "orphan.ndjson",
            [
                _span("r", "job", 0.0, 1.0),
                _span("x", "lost", 0.0, 1.0, parent="missing"),
            ],
        )
        assert main(["check", str(trace)]) == 1

    def test_committed_trace_passes_check(self):
        code = main([
            "check", str(COMMITTED_TRACE),
            "--require-span", "job",
            "--require-span", "solve",
            "--require-span", "stitch",
        ])
        assert code == 0

    def test_check_json(self, small_trace, capsys):
        assert main(["check", str(small_trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True


class TestErrors:
    def test_missing_file_exits_two(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["summarize", str(tmp_path / "nope.ndjson")])
        assert excinfo.value.code == 2
        assert "not found" in capsys.readouterr().err

    def test_empty_trace_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty.ndjson"
        empty.write_text("")
        with pytest.raises(SystemExit) as excinfo:
            main(["summarize", str(empty)])
        assert excinfo.value.code == 2