"""Tests for repro.graph.generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.graph.dag import is_dag
from repro.graph.generation import (
    DEFAULT_WEIGHT_RANGES,
    GraphSpec,
    random_dag,
    random_erdos_renyi_dag,
    random_scale_free_dag,
    random_weight_matrix,
)


class TestGraphSpec:
    def test_parse_er(self):
        spec = GraphSpec.parse("ER-2", 50)
        assert spec.model == "er" and spec.average_degree == 2.0 and spec.n_nodes == 50

    def test_parse_sf(self):
        spec = GraphSpec.parse("SF-4", 30)
        assert spec.model == "sf" and spec.average_degree == 4.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValidationError):
            GraphSpec.parse("banana", 10)

    def test_invalid_model_rejected(self):
        with pytest.raises(ValidationError):
            GraphSpec(n_nodes=10, model="ba")  # type: ignore[arg-type]

    def test_expected_edges(self):
        assert GraphSpec(n_nodes=50, model="er", average_degree=2.0).expected_edges == 50


class TestErdosRenyi:
    def test_result_is_a_dag(self):
        for seed in range(5):
            assert is_dag(random_erdos_renyi_dag(30, 2.0, seed=seed))

    def test_edge_count_near_expected(self):
        counts = [
            np.count_nonzero(random_erdos_renyi_dag(60, 2.0, seed=seed)) for seed in range(10)
        ]
        # Expected number of edges is d * degree / 2 = 60.
        assert 30 <= np.mean(counts) <= 90

    def test_single_node(self):
        assert random_erdos_renyi_dag(1, 2.0, seed=0).shape == (1, 1)

    def test_determinism(self):
        a = random_erdos_renyi_dag(20, 2.0, seed=5)
        b = random_erdos_renyi_dag(20, 2.0, seed=5)
        np.testing.assert_array_equal(a, b)


class TestScaleFree:
    def test_result_is_a_dag(self):
        for seed in range(5):
            assert is_dag(random_scale_free_dag(30, 4.0, seed=seed))

    def test_degree_distribution_is_skewed(self):
        graph = random_scale_free_dag(200, 4.0, seed=1)
        total_degree = graph.sum(axis=0) + graph.sum(axis=1)
        # Scale-free graphs have hubs: the max degree is several times the mean.
        assert total_degree.max() >= 3 * total_degree.mean()

    def test_edge_count_scales_with_degree(self):
        sparse = np.count_nonzero(random_scale_free_dag(100, 2.0, seed=2))
        dense = np.count_nonzero(random_scale_free_dag(100, 6.0, seed=2))
        assert dense > sparse


class TestWeights:
    def test_weights_respect_ranges(self):
        binary = random_erdos_renyi_dag(40, 2.0, seed=0)
        weights = random_weight_matrix(binary, seed=1)
        values = weights[binary != 0]
        assert np.all((np.abs(values) >= 0.5) & (np.abs(values) <= 2.0))

    def test_support_is_preserved(self):
        binary = random_erdos_renyi_dag(40, 2.0, seed=0)
        weights = random_weight_matrix(binary, seed=1)
        np.testing.assert_array_equal(weights != 0, binary != 0)

    def test_empty_ranges_rejected(self):
        with pytest.raises(ValidationError):
            random_weight_matrix(np.zeros((2, 2)), weight_ranges=())

    def test_default_ranges_have_positive_and_negative_bands(self):
        signs = {np.sign(low) for low, _ in DEFAULT_WEIGHT_RANGES}
        assert signs == {-1.0, 1.0}


class TestRandomDag:
    def test_string_spec(self):
        graph = random_dag("ER-2", 25, seed=0)
        assert graph.shape == (25, 25) and is_dag(graph)

    def test_string_spec_requires_n_nodes(self):
        with pytest.raises(ValidationError):
            random_dag("ER-2")

    def test_unweighted_output_is_binary(self):
        graph = random_dag("SF-4", 25, weighted=False, seed=0)
        assert set(np.unique(graph)) <= {0.0, 1.0}

    def test_spec_object(self):
        graph = random_dag(GraphSpec(n_nodes=15, model="er", average_degree=2.0), seed=3)
        assert is_dag(graph)
