"""Concurrency stress suite for the persistent worker pool.

One hundred-plus tiny jobs — a seeded random mix of instant successes,
worker-crashing jobs, and deadline-blowing hangs — are pushed through a
4-worker pool under BOTH start methods (``fork`` and ``spawn`` via
``REPRO_SERVE_START_METHOD``), with recycling enabled so worker turnover
happens *while* kills and crashes are in flight.  The invariants:

* **no lost or duplicated results** — exactly one ``JobResult`` per
  submitted job id, with the status its kind demands;
* **no orphan processes** — every worker pid ever spawned is dead once the
  stream drains, and the test process has no new children left behind
  (checked against a pre-run ``/proc`` snapshot);
* **kill containment** — only hang jobs cost kills, and each kill costs
  exactly one process;
* **recycling under fire** — ``max_jobs_per_worker`` retirements interleave
  with preemptions without dropping a result.

The mix is seeded: failures reproduce, they don't flake.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np
import pytest

from repro.serve.job import LearningJob, register_solver, unregister_solver
from repro.serve.streaming import StreamingRunner

pytestmark = pytest.mark.timeout(300)

N_JOBS = 104
N_CRASH = 6
N_HANG = 6
N_WORKERS = 4
DEADLINE = 1.5


@dataclass(frozen=True)
class _StressConfig:
    mode: str = "fast"  # "fast" | "crash" | "hang"
    duration: float = 0.01


class _StressSolver:
    """Succeed instantly, kill its worker, or hang far past any deadline."""

    def __init__(self, config: _StressConfig):
        self.config = config

    def fit(self, data, seed=None):
        from repro.core.least import LEASTResult

        if self.config.mode == "crash":
            os._exit(17)
        if self.config.mode == "hang":
            time.sleep(60.0)
        time.sleep(self.config.duration)
        d = data.shape[1]
        return LEASTResult(
            weights=np.zeros((d, d)),
            constraint_value=0.0,
            converged=True,
            n_outer_iterations=1,
        )


@pytest.fixture
def stress_solver():
    register_solver("stress", _StressSolver, _StressConfig, overwrite=True)
    yield
    unregister_solver("stress")


def _children_of_self() -> set[int]:
    """Direct child pids of this process, straight from ``/proc``."""
    pid = os.getpid()
    children: set[int] = set()
    try:
        for task in os.listdir(f"/proc/{pid}/task"):
            path = f"/proc/{pid}/task/{task}/children"
            try:
                with open(path) as handle:
                    children.update(int(p) for p in handle.read().split())
            except OSError:
                continue
    except OSError:
        pass  # /proc unavailable (non-Linux); the pid liveness check remains
    return children


def _build_manifest(seed: int = 20210414) -> list[LearningJob]:
    """The seeded job mix, shuffled so failure kinds interleave."""
    kinds = (
        ["crash"] * N_CRASH
        + ["hang"] * N_HANG
        + ["fast"] * (N_JOBS - N_CRASH - N_HANG)
    )
    rng = np.random.default_rng(seed)
    rng.shuffle(kinds)
    jobs = []
    for index, kind in enumerate(kinds):
        duration = float(rng.uniform(0.0, 0.03)) if kind == "fast" else 0.0
        jobs.append(
            LearningJob(
                solver="stress",
                data=np.zeros((4, 3)),
                config={"mode": kind, "duration": duration},
                job_id=f"{kind}-{index:03d}",
            )
        )
    return jobs


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_stress_no_lost_results_no_orphans(
    stress_solver, monkeypatch, wait_until, start_method
):
    monkeypatch.setenv("REPRO_SERVE_START_METHOD", start_method)
    children_before = _children_of_self()
    jobs = _build_manifest()
    expected = {job.job_id for job in jobs}

    # max_jobs_per_worker=6 makes recycling a pigeonhole certainty, not a
    # scheduling accident: without recycles at most 4 + 6 + 6 = 16 workers
    # ever exist (initial fleet + one replacement per crash/kill), and
    # 16 workers * 5 jobs < 92 fast jobs.
    runner = StreamingRunner(
        n_workers=N_WORKERS,
        timeout=DEADLINE,
        max_jobs_per_worker=6,
    )
    results = list(runner.stream(jobs))

    # Exactly one result per submitted job — none lost, none duplicated.
    yielded = [result.job_id for result in results]
    assert len(yielded) == N_JOBS
    assert len(set(yielded)) == N_JOBS
    assert set(yielded) == expected

    # Every kind resolved to the status its failure mode demands.
    by_status: dict[str, set[str]] = {}
    for result in results:
        by_status.setdefault(result.status, set()).add(
            result.job_id.split("-")[0]
        )
    assert by_status["ok"] == {"fast"}
    assert by_status["failed"] == {"crash"}
    assert by_status["preempted"] == {"hang"}
    assert sum(1 for r in results if r.status == "ok") == N_JOBS - N_CRASH - N_HANG

    telemetry = runner.telemetry
    # Kill containment: one kill per hang job, nothing else SIGKILLed, and
    # crashes never counted as engine kills.
    assert telemetry.n_killed == N_HANG
    assert len(telemetry.killed_pids) == N_HANG
    assert telemetry.n_requeued == 0
    # Recycling actually happened mid-stress.
    assert telemetry.n_recycled >= 1
    # Worker turnover stayed bounded: the initial fleet plus one replacement
    # per crash/kill/recycle, not one process per job.
    assert telemetry.n_workers_spawned <= N_WORKERS + N_CRASH + N_HANG + telemetry.n_recycled + 2
    assert telemetry.n_workers_spawned < N_JOBS // 2

    # Orphan sweep #1: every worker pid ever spawned is dead.
    def _all_workers_dead():
        for pid in telemetry.worker_pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            return False
        return True

    wait_until(_all_workers_dead, timeout=15.0, message="all workers to exit")

    # Orphan sweep #2: no new children of the test process survived the run.
    # multiprocessing's resource tracker is a deliberate long-lived child
    # (one per interpreter, started lazily on first use) — not an orphan.
    def _no_new_children():
        from multiprocessing import resource_tracker

        allowed = {getattr(resource_tracker._resource_tracker, "_pid", None)}
        return (_children_of_self() - children_before) <= allowed

    wait_until(_no_new_children, timeout=15.0, message="children to be reaped")


def test_stress_requeue_policy_converges(stress_solver, monkeypatch):
    """A smaller mix under ``requeue``: killed hangs burn their retry budget
    and still drain — requeues never duplicate or wedge the stream."""
    monkeypatch.setenv("REPRO_SERVE_START_METHOD", "fork")
    rng = np.random.default_rng(7)
    kinds = ["hang"] * 3 + ["fast"] * 21
    rng.shuffle(kinds)
    jobs = [
        LearningJob(
            solver="stress",
            data=np.zeros((4, 3)),
            config={"mode": kind, "duration": 0.01},
            job_id=f"{kind}-{index:02d}",
        )
        for index, kind in enumerate(kinds)
    ]
    runner = StreamingRunner(
        n_workers=2,
        timeout=1.0,
        preempt_policy="requeue",
        preempt_retries=1,
    )
    results = list(runner.stream(jobs))
    assert len(results) == len(jobs)
    assert len({r.job_id for r in results}) == len(jobs)
    statuses = {r.job_id: r.status for r in results}
    assert all(statuses[j.job_id] == "preempted" for j in jobs if "hang" in j.job_id)
    assert all(statuses[j.job_id] == "ok" for j in jobs if "fast" in j.job_id)
    assert runner.telemetry.n_requeued == 3
    assert runner.telemetry.n_killed == 6  # 3 first attempts + 3 requeues
