"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    ConvergenceError,
    DataGenerationError,
    DimensionMismatchError,
    NotADAGError,
    ReproError,
    ValidationError,
)


@pytest.mark.parametrize(
    "exception_class",
    [ValidationError, NotADAGError, ConvergenceError, DataGenerationError, DimensionMismatchError],
)
def test_all_exceptions_derive_from_repro_error(exception_class):
    assert issubclass(exception_class, ReproError)


def test_validation_error_is_a_value_error():
    assert issubclass(ValidationError, ValueError)


def test_dimension_mismatch_is_a_value_error():
    assert issubclass(DimensionMismatchError, ValueError)


def test_exceptions_carry_messages():
    error = ValidationError("alpha must be in [0, 1]")
    assert "alpha" in str(error)
