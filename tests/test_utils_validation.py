"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import DimensionMismatchError, ValidationError
from repro.utils.validation import (
    check_in_choices,
    check_non_negative,
    check_positive,
    check_probability,
    check_same_shape,
    check_square_matrix,
    check_unit_interval,
    ensure_2d,
    ensure_array,
    is_sparse,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValidationError, match="x"):
            check_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0, "x")

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            check_positive(float("nan"), "x")
        with pytest.raises(ValidationError):
            check_positive(float("inf"), "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, float("nan")])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValidationError):
            check_probability(value, "p")

    def test_unit_interval_alias(self):
        assert check_unit_interval(0.9, "alpha") == 0.9


class TestCheckInChoices:
    def test_accepts_member(self):
        assert check_in_choices("er", "model", ("er", "sf")) == "er"

    def test_rejects_non_member(self):
        with pytest.raises(ValidationError, match="model"):
            check_in_choices("ba", "model", ("er", "sf"))


class TestEnsureArray:
    def test_converts_lists(self):
        result = ensure_array([1, 2, 3])
        assert isinstance(result, np.ndarray)
        assert result.dtype == float

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            ensure_array([1.0, float("nan")])

    def test_ensure_2d_rejects_vectors(self):
        with pytest.raises(ValidationError):
            ensure_2d([1.0, 2.0])

    def test_ensure_2d_accepts_matrix(self):
        assert ensure_2d([[1.0, 2.0]]).shape == (1, 2)


class TestCheckSquareMatrix:
    def test_accepts_square_dense(self):
        matrix = check_square_matrix(np.eye(3))
        assert matrix.shape == (3, 3)

    def test_accepts_square_sparse(self):
        matrix = check_square_matrix(sp.eye(4, format="csr"))
        assert matrix.shape == (4, 4)

    def test_rejects_rectangular(self):
        with pytest.raises(ValidationError):
            check_square_matrix(np.ones((2, 3)))

    def test_rejects_rectangular_sparse(self):
        with pytest.raises(ValidationError):
            check_square_matrix(sp.csr_matrix(np.ones((2, 3))))


class TestCheckSameShape:
    def test_accepts_matching(self):
        check_same_shape(np.zeros((2, 2)), np.ones((2, 2)))

    def test_rejects_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            check_same_shape(np.zeros((2, 2)), np.ones((3, 2)))


def test_is_sparse():
    assert is_sparse(sp.eye(2, format="csr"))
    assert not is_sparse(np.eye(2))
