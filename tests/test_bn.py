"""Tests for the linear-Gaussian Bayesian-network layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bn.fit import fit_linear_gaussian, refit_weights
from repro.bn.inference import conditional_distribution, marginal_distribution
from repro.bn.network import GaussianBayesianNetwork
from repro.exceptions import NotADAGError, ValidationError
from repro.sem.linear_sem import simulate_linear_sem


class TestNetworkConstruction:
    def test_requires_dag(self, cyclic_matrix):
        with pytest.raises(NotADAGError):
            GaussianBayesianNetwork(weights=cyclic_matrix)

    def test_defaults(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        assert network.n_nodes == 4
        assert network.n_edges() == 4
        np.testing.assert_array_equal(network.intercepts, 0.0)
        np.testing.assert_array_equal(network.noise_variances, 1.0)

    def test_invalid_variances_rejected(self, small_dag):
        with pytest.raises(ValidationError):
            GaussianBayesianNetwork(weights=small_dag, noise_variances=np.zeros(4))

    def test_invalid_shapes_rejected(self, small_dag):
        with pytest.raises(ValidationError):
            GaussianBayesianNetwork(weights=small_dag, intercepts=np.zeros(3))
        with pytest.raises(ValidationError):
            GaussianBayesianNetwork(weights=small_dag, node_names=["a"])

    def test_parents_of(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        assert network.parents_of(3) == [1, 2]

    def test_edge_list_with_names(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag, node_names=["a", "b", "c", "d"])
        edges = network.edge_list()
        assert edges[0][2] == 1.5 and edges[0][0] == "a"


class TestJointGaussian:
    def test_joint_moments_match_sampling(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        samples = network.sample(100000, seed=0)
        np.testing.assert_allclose(samples.mean(axis=0), network.joint_mean(), atol=0.05)
        np.testing.assert_allclose(np.cov(samples.T), network.joint_covariance(), atol=0.15)

    def test_intercepts_shift_the_mean(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag, intercepts=np.array([1.0, 0, 0, 0]))
        mean = network.joint_mean()
        assert mean[0] == pytest.approx(1.0)
        assert mean[1] == pytest.approx(1.5)  # 1.5 * X0

    def test_log_likelihood_is_higher_for_generating_model(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        data = network.sample(500, seed=1)
        wrong = GaussianBayesianNetwork(weights=np.zeros_like(small_dag))
        assert network.log_likelihood(data) > wrong.log_likelihood(data)

    def test_bic_penalizes_parameters(self, small_dag):
        data = GaussianBayesianNetwork(weights=small_dag).sample(200, seed=2)
        full = fit_linear_gaussian(np.triu(np.ones((4, 4)), k=1), data)
        true = fit_linear_gaussian(small_dag, data)
        assert true.bic(data) < full.bic(data) + 50  # sanity: not wildly worse

    def test_log_likelihood_shape_check(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        with pytest.raises(ValidationError):
            network.log_likelihood(np.zeros((5, 3)))


class TestFitting:
    def test_refit_recovers_true_weights(self, small_dag):
        data = simulate_linear_sem(small_dag, 20000, seed=0)
        refitted = refit_weights(small_dag, data)
        np.testing.assert_allclose(refitted[small_dag != 0], small_dag[small_dag != 0], atol=0.05)

    def test_refit_respects_support(self, small_dag):
        data = simulate_linear_sem(small_dag, 500, seed=0)
        refitted = refit_weights(small_dag, data)
        assert np.all(refitted[small_dag == 0] == 0)

    def test_fit_estimates_noise_variance(self, small_dag):
        data = simulate_linear_sem(small_dag, 20000, seed=1)
        network = fit_linear_gaussian(small_dag, data)
        np.testing.assert_allclose(network.noise_variances, 1.0, atol=0.1)

    def test_ridge_handles_collinear_parents(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 1))
        data = np.hstack([x, x, x @ np.array([[2.0]]) + rng.normal(size=(100, 1))])
        structure = np.zeros((3, 3))
        structure[0, 2] = 1.0
        structure[1, 2] = 1.0
        refitted = refit_weights(structure, data, ridge=1e-3)
        assert np.all(np.isfinite(refitted))

    def test_fit_rejects_mismatched_data(self, small_dag):
        with pytest.raises(ValidationError):
            fit_linear_gaussian(small_dag, np.zeros((10, 3)))


class TestInference:
    def test_marginal_of_root_node(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        marginal = marginal_distribution(network, [0])
        assert marginal.mean[0] == pytest.approx(0.0)
        assert marginal.variance()[0] == pytest.approx(1.0)

    def test_conditioning_on_parent_shifts_child(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        conditional = conditional_distribution(network, [1], {0: 2.0})
        assert conditional.mean[0] == pytest.approx(3.0)  # 1.5 * 2.0
        assert conditional.variance()[0] == pytest.approx(1.0, rel=1e-6)

    def test_conditioning_reduces_variance(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        prior = marginal_distribution(network, [3])
        posterior = conditional_distribution(network, [3], {1: 1.0, 2: -1.0})
        assert posterior.variance()[0] < prior.variance()[0]

    def test_empty_evidence_equals_marginal(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        a = conditional_distribution(network, [2], {})
        b = marginal_distribution(network, [2])
        np.testing.assert_allclose(a.mean, b.mean)

    def test_overlapping_query_and_evidence_rejected(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        with pytest.raises(ValidationError):
            conditional_distribution(network, [1], {1: 0.0})

    def test_out_of_range_index_rejected(self, small_dag):
        network = GaussianBayesianNetwork(weights=small_dag)
        with pytest.raises(ValidationError):
            marginal_distribution(network, [10])
