"""Parity and integration tests for repro.core.least_fast.

The fused backend's contract is that it is *numerically interchangeable*
with the reference ``"least"`` backend: on the pure-numpy fallback the two
are bitwise identical, and under numba the kernels may drift by ulps, so
every parity assertion here uses tolerances that hold for both — these
tests run on CI matrix legs with and without numba installed, under both
fork and spawn start methods.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import FastLEAST, FastLEASTConfig, numba_available
from repro.core.backend import LEASTFastBackend, get_spec, make_solver, solver_names
from repro.core.least import LEAST, LEASTConfig
from repro.core.least_fast import resolve_jit, warmup_jit
from repro.exceptions import SoftDeadlineExceeded, ValidationError
from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem

FAST = {"max_outer_iterations": 2, "max_inner_iterations": 25}
#: Weight tolerance that holds for both kernel sets: exact on the numpy
#: fallback, ulp-amplification headroom for the reordered numba loops.
ATOL = 1e-6


def make_problem(spec: str, n_nodes: int, seed: int) -> np.ndarray:
    truth = random_dag(spec, n_nodes, seed=seed)
    return simulate_linear_sem(truth, 10 * n_nodes, seed=seed + 1)


@pytest.fixture
def data() -> np.ndarray:
    return make_problem("ER-2", 20, seed=3)


class TestJitResolution:
    def test_auto_resolves_to_an_available_backend(self):
        expected = "numba" if numba_available() else "numpy"
        assert resolve_jit("auto") == expected

    def test_numpy_always_available(self):
        assert resolve_jit("numpy") == "numpy"

    def test_explicit_numba_without_the_package_raises(self):
        if numba_available():
            assert resolve_jit("numba") == "numba"
        else:
            with pytest.raises(ValidationError):
                resolve_jit("numba")

    def test_invalid_jit_value_rejected(self):
        with pytest.raises(ValidationError):
            FastLEASTConfig(jit="cython")

    def test_warmup_reports_compilation(self):
        assert warmup_jit() is numba_available()

    def test_solver_upgrades_plain_least_config(self):
        solver = FastLEAST(LEASTConfig(max_outer_iterations=4))
        assert isinstance(solver.config, FastLEASTConfig)
        assert solver.config.max_outer_iterations == 4
        assert solver.jit_backend in ("numba", "numpy")


class TestRegistry:
    def test_registered_with_expected_spec(self):
        assert "least_fast" in solver_names()
        spec = get_spec("least_fast")
        assert spec.sparse is False
        assert spec.supports_init_weights is True
        assert LEASTFastBackend.name == "least_fast"

    def test_telemetry_names_the_kernel_set(self, data):
        result = make_solver("least_fast", **FAST).fit(data, rng=0)
        expected = "numba" if numba_available() else "numpy"
        assert result.telemetry["jit_backend"] == expected


class TestParity:
    """least_fast ≡ least on seeded ER/SF problems (the tentpole contract)."""

    @pytest.mark.parametrize("spec", ["ER-2", "SF-4"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_edge_sets_and_objectives_match(self, spec, seed):
        data = make_problem(spec, 25, seed=10 + seed)
        config = dict(
            max_outer_iterations=3, max_inner_iterations=60, threshold=0.05
        )
        ref = make_solver("least", **config).fit(data, rng=seed)
        fast = make_solver("least_fast", **config).fit(data, rng=seed)
        assert ref.n_outer_iterations == fast.n_outer_iterations
        assert ref.n_inner_iterations == fast.n_inner_iterations
        np.testing.assert_allclose(ref.weights, fast.weights, atol=ATOL)
        # The in-loop threshold snaps small entries to exact zero, so the
        # learned edge *sets* must be identical, not merely close.
        assert np.array_equal(ref.weights != 0.0, fast.weights != 0.0)
        ref_loss = ref.log.last("loss", None)
        fast_loss = fast.log.last("loss", None)
        assert ref_loss is not None
        assert fast_loss == pytest.approx(ref_loss, rel=1e-8, abs=1e-10)

    def test_batched_runs_share_the_rng_stream(self):
        data = make_problem("ER-2", 18, seed=40)
        config = dict(max_outer_iterations=2, max_inner_iterations=30, batch_size=64)
        ref = make_solver("least", **config).fit(data, rng=5)
        fast = make_solver("least_fast", **config).fit(data, rng=5)
        np.testing.assert_allclose(ref.weights, fast.weights, atol=ATOL)

    def test_warm_start_parity_dense_and_csr(self, data):
        cold = make_solver("least", **FAST).fit(data, rng=0)
        ref = make_solver("least", **FAST).fit(
            data, rng=1, init_weights=cold.weights
        )
        fast_dense = make_solver("least_fast", **FAST).fit(
            data, rng=1, init_weights=cold.weights
        )
        fast_csr = make_solver("least_fast", **FAST).fit(
            data, rng=1, init_weights=sp.csr_matrix(cold.weights)
        )
        np.testing.assert_allclose(ref.weights, fast_dense.weights, atol=ATOL)
        np.testing.assert_allclose(ref.weights, fast_csr.weights, atol=ATOL)

    def test_fallback_is_bitwise_identical(self, data):
        """The numpy kernels reproduce the reference exactly, bit for bit."""
        config = dict(max_outer_iterations=3, max_inner_iterations=50, threshold=0.05)
        ref = make_solver("least", **config).fit(data, rng=2)
        fast = make_solver("least_fast", jit="numpy", **config).fit(data, rng=2)
        assert np.array_equal(ref.weights, fast.weights)

    def test_run_log_records_same_trace_shape(self, data):
        ref = make_solver("least", **FAST).fit(data, rng=0)
        fast = make_solver("least_fast", **FAST).fit(data, rng=0)
        for key in ("loss", "delta", "rho", "eta", "n_edges"):
            ref_trace = [r[key] for r in ref.log]
            fast_trace = [r[key] for r in fast.log]
            assert len(ref_trace) == len(fast_trace)
            np.testing.assert_allclose(ref_trace, fast_trace, rtol=1e-6, atol=1e-8)


class TestDeadlinePaths:
    def test_hooks_fire_each_outer_iteration(self, data):
        calls: list[int] = []
        result = make_solver("least_fast", **FAST).fit(
            data, rng=0, deadline_hooks=[lambda: calls.append(1)]
        )
        assert len(calls) == result.n_outer_iterations

    def test_soft_deadline_raises_at_outer_boundary(self, data):
        seen: list[int] = []

        def hook():
            seen.append(1)
            if len(seen) == 1:
                raise SoftDeadlineExceeded("budget spent")

        with pytest.raises(SoftDeadlineExceeded):
            make_solver("least_fast", **FAST).fit(data, rng=0, deadline_hooks=[hook])
        assert len(seen) == 1  # aborted at the first boundary, not later

    def test_soft_deadline_preempts_job(self, data):
        from repro.serve.job import LearningJob, execute_job

        def hook():
            raise SoftDeadlineExceeded("budget spent")

        job = LearningJob(solver="least_fast", data=data, config=dict(FAST))
        with pytest.raises(SoftDeadlineExceeded):
            execute_job(job, deadline_hooks=[hook])

    def test_wave_job_marks_members_preempted(self, data):
        from repro.serve.job import LearningJob, execute_job

        def hook():
            raise SoftDeadlineExceeded("budget spent")

        stacked = np.hstack([data, data])
        wave = [
            {"job_id": "a", "n_columns": data.shape[1], "seed": 0},
            {"job_id": "b", "n_columns": data.shape[1], "seed": 0},
        ]
        job = LearningJob(
            solver="least_fast", data=stacked, config=dict(FAST), wave=wave
        )
        result = execute_job(job, deadline_hooks=[hook])
        assert result.status == "preempted"
        assert [part.status for part in result.parts] == ["preempted", "preempted"]


class TestServeFlow:
    def test_execute_job_runs_fast_backend(self, data):
        from repro.serve.job import LearningJob, execute_job

        result = execute_job(
            LearningJob(solver="least_fast", data=data, config=dict(FAST))
        )
        assert result.status == "ok"
        assert result.weights.shape == data.shape[1:] * 2


class TestSchedulerPreferFast:
    def _window(self, seed: int, d: int = 15) -> np.ndarray:
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(150, d))
        x[:, 1] += 0.8 * x[:, 0]
        return x

    def test_prefer_fast_selects_fused_backend(self):
        from repro.serve.scheduler import RelearnScheduler

        config = LEASTConfig(**FAST)
        scheduler = RelearnScheduler(least_config=config, prefer_fast=True)
        names = [f"n{i}" for i in range(15)]
        scheduler.step(self._window(0), names, seed=0)
        scheduler.step(self._window(1), names, seed=1)
        assert [s.solver for s in scheduler.history] == ["least_fast", "least_fast"]
        assert scheduler.history[1].warm_started

    def test_prefer_fast_windows_match_reference(self):
        from repro.serve.scheduler import RelearnScheduler

        config = LEASTConfig(**FAST)
        names = [f"n{i}" for i in range(15)]
        fast = RelearnScheduler(least_config=config, prefer_fast=True)
        ref = RelearnScheduler(least_config=config, prefer_fast=False)
        for index in range(2):
            fast_result = fast.step(self._window(index), names, seed=index)
            ref_result = ref.step(self._window(index), names, seed=index)
            np.testing.assert_allclose(
                ref_result.weights, fast_result.weights, atol=ATOL
            )

    def test_sparse_escalation_still_wins(self):
        from repro.serve.scheduler import RelearnScheduler

        scheduler = RelearnScheduler(
            prefer_fast=True, sparse_vocabulary_threshold=100
        )
        assert scheduler._effective_solver(500) == "least_sparse"
        assert scheduler._effective_solver(50) == "least_fast"

    def test_prefer_fast_leaves_explicit_solver_choice_alone(self):
        from repro.serve.scheduler import RelearnScheduler

        scheduler = RelearnScheduler(solver="notears", prefer_fast=True)
        assert scheduler._effective_solver(50) == "notears"
