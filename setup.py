"""Setup shim for environments whose pip cannot do PEP 517 editable installs offline."""
from setuptools import setup

setup()
