"""Conversions between adjacency-matrix representations.

The core algorithms manipulate weighted adjacency matrices; the application
layers (monitoring, recommendation) prefer edge lists with node labels.  These
helpers translate between the two and between dense and sparse storage.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.utils.validation import check_square_matrix

__all__ = [
    "adjacency_to_edge_list",
    "edge_list_to_adjacency",
    "binarize",
    "to_dense",
    "to_sparse",
    "threshold_matrix",
]

Edge = tuple[int, int, float]


def to_dense(matrix) -> np.ndarray:
    """Return ``matrix`` as a dense float numpy array."""
    if sp.issparse(matrix):
        return np.asarray(matrix.todense(), dtype=float)
    return np.asarray(matrix, dtype=float)


def to_sparse(matrix, fmt: str = "csr") -> sp.spmatrix:
    """Return ``matrix`` as a scipy sparse matrix in the requested format."""
    if sp.issparse(matrix):
        return matrix.asformat(fmt)
    return sp.csr_matrix(np.asarray(matrix, dtype=float)).asformat(fmt)


def binarize(matrix, threshold: float = 0.0):
    """Return a 0/1 matrix marking entries with ``|value| > threshold``.

    Works for dense and sparse inputs; the result has the same storage type.
    """
    if threshold < 0:
        raise ValidationError(f"threshold must be >= 0, got {threshold}")
    if sp.issparse(matrix):
        result = matrix.copy().tocsr()
        result.data = (np.abs(result.data) > threshold).astype(float)
        result.eliminate_zeros()
        return result
    array = np.asarray(matrix, dtype=float)
    return (np.abs(array) > threshold).astype(float)


def threshold_matrix(matrix, threshold: float):
    """Zero out entries with absolute value below ``threshold`` (keep weights)."""
    if threshold < 0:
        raise ValidationError(f"threshold must be >= 0, got {threshold}")
    if sp.issparse(matrix):
        result = matrix.copy().tocsr()
        result.data[np.abs(result.data) < threshold] = 0.0
        result.eliminate_zeros()
        return result
    array = np.array(matrix, dtype=float, copy=True)
    array[np.abs(array) < threshold] = 0.0
    return array


def adjacency_to_edge_list(
    matrix,
    labels: Sequence[str] | None = None,
    *,
    sort_by_weight: bool = False,
) -> list[tuple]:
    """Convert an adjacency matrix into an edge list.

    Returns tuples ``(source, target, weight)`` where source/target are node
    labels when ``labels`` is given and integer indices otherwise.

    Parameters
    ----------
    sort_by_weight:
        If True, edges are sorted by decreasing absolute weight — convenient
        for "top learned edges" tables such as Table IV of the paper.
    """
    matrix = check_square_matrix(matrix)
    if sp.issparse(matrix):
        coo = matrix.tocoo()
        triples = [
            (int(i), int(j), float(v)) for i, j, v in zip(coo.row, coo.col, coo.data) if v != 0
        ]
    else:
        array = np.asarray(matrix, dtype=float)
        rows, cols = np.nonzero(array)
        triples = [(int(i), int(j), float(array[i, j])) for i, j in zip(rows, cols)]
    if labels is not None:
        d = matrix.shape[0]
        if len(labels) != d:
            raise ValidationError(
                f"labels has length {len(labels)} but the matrix has {d} nodes"
            )
        triples = [(labels[i], labels[j], w) for i, j, w in triples]
    if sort_by_weight:
        triples.sort(key=lambda edge: abs(edge[2]), reverse=True)
    return triples


def edge_list_to_adjacency(
    edges: Iterable[tuple],
    n_nodes: int | None = None,
    labels: Sequence[str] | None = None,
) -> np.ndarray:
    """Build a dense adjacency matrix from an edge list.

    Edges may be ``(i, j)`` pairs (weight defaults to 1.0) or ``(i, j, w)``
    triples.  Node references may be integer indices or labels; in the latter
    case ``labels`` provides the index mapping.
    """
    edges = list(edges)
    if labels is not None:
        index = {label: i for i, label in enumerate(labels)}
        n_nodes = len(labels)
    else:
        index = None
        if n_nodes is None:
            max_index = -1
            for edge in edges:
                max_index = max(max_index, int(edge[0]), int(edge[1]))
            n_nodes = max_index + 1
    matrix = np.zeros((n_nodes, n_nodes))
    for edge in edges:
        if len(edge) == 2:
            source, target = edge
            weight = 1.0
        elif len(edge) == 3:
            source, target, weight = edge
        else:
            raise ValidationError(f"edges must be 2- or 3-tuples, got {edge!r}")
        if index is not None:
            source, target = index[source], index[target]
        matrix[int(source), int(target)] = float(weight)
    return matrix
