"""Saving and loading learned graphs.

Two formats are supported:

* a plain-text tab-separated edge list (``source<TAB>target<TAB>weight``),
  convenient for inspection and for feeding downstream tools, and
* a compressed ``.npz`` bundle holding the weighted adjacency matrix together
  with optional node labels, convenient for round-tripping full matrices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graph.adjacency import adjacency_to_edge_list, edge_list_to_adjacency, to_dense

__all__ = ["save_edge_list", "load_edge_list", "save_graph_npz", "load_graph_npz"]


def save_edge_list(matrix, path: str | Path, labels: Sequence[str] | None = None) -> Path:
    """Write the edges of ``matrix`` to ``path`` as a TSV edge list."""
    path = Path(path)
    edges = adjacency_to_edge_list(matrix, labels=labels)
    lines = [f"{source}\t{target}\t{weight:.10g}" for source, target, weight in edges]
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path


def load_edge_list(
    path: str | Path,
    n_nodes: int | None = None,
    labels: Sequence[str] | None = None,
) -> np.ndarray:
    """Read a TSV edge list written by :func:`save_edge_list`."""
    path = Path(path)
    edges: list[tuple] = []
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("\t")
        if len(parts) != 3:
            raise ValidationError(
                f"{path}:{line_number}: expected 3 tab-separated fields, got {len(parts)}"
            )
        source, target, weight = parts
        if labels is None:
            edges.append((int(source), int(target), float(weight)))
        else:
            edges.append((source, target, float(weight)))
    return edge_list_to_adjacency(edges, n_nodes=n_nodes, labels=labels)


def save_graph_npz(matrix, path: str | Path, labels: Sequence[str] | None = None) -> Path:
    """Save an adjacency matrix (dense or sparse) and optional labels to ``.npz``."""
    path = Path(path)
    dense = to_dense(matrix)
    payload = {"adjacency": dense}
    if labels is not None:
        if len(labels) != dense.shape[0]:
            raise ValidationError(
                f"labels has length {len(labels)} but the matrix has {dense.shape[0]} nodes"
            )
        payload["labels"] = np.asarray(json.dumps(list(labels)))
    np.savez_compressed(path, **payload)
    return path


def load_graph_npz(path: str | Path) -> tuple[np.ndarray, list[str] | None]:
    """Load a graph saved with :func:`save_graph_npz`.

    Returns the dense adjacency matrix and the label list (or None).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        adjacency = np.asarray(data["adjacency"], dtype=float)
        labels = None
        if "labels" in data:
            labels = list(json.loads(str(data["labels"])))
    return adjacency, labels
