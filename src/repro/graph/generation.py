"""Random DAG generation.

Reproduces the benchmark graph generator used in the paper (inherited from the
NOTEARS evaluation of Zheng et al.): the topology is drawn from either an
Erdős–Rényi (ER) or a scale-free (SF, Barabási–Albert style) model, the
resulting undirected skeleton is oriented according to a random permutation to
make it acyclic, and each edge receives a weight drawn uniformly from
``[-2.0, -0.5] ∪ [0.5, 2.0]``.

The paper's experiments use ``ER-2`` (average node degree 2) and ``SF-4``
(average degree 4) graphs; :func:`random_dag` accepts those names directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import RandomState, as_generator
from repro.utils.validation import check_positive

__all__ = [
    "GraphSpec",
    "random_erdos_renyi_dag",
    "random_scale_free_dag",
    "random_weight_matrix",
    "random_dag",
    "DEFAULT_WEIGHT_RANGES",
]

GraphModel = Literal["er", "sf"]

#: Edge-weight ranges used by the paper's generator (negative and positive band).
DEFAULT_WEIGHT_RANGES: tuple[tuple[float, float], ...] = ((-2.0, -0.5), (0.5, 2.0))


@dataclass(frozen=True)
class GraphSpec:
    """Specification of a random benchmark graph.

    Attributes
    ----------
    n_nodes:
        Number of nodes ``d``.
    model:
        ``"er"`` for Erdős–Rényi or ``"sf"`` for scale-free topology.
    average_degree:
        Expected number of edges per node (the paper uses 2 for ER, 4 for SF).
    """

    n_nodes: int
    model: GraphModel = "er"
    average_degree: float = 2.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValidationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.model not in ("er", "sf"):
            raise ValidationError(f"model must be 'er' or 'sf', got {self.model!r}")
        check_positive(self.average_degree, "average_degree")

    @property
    def expected_edges(self) -> int:
        """Expected number of edges, ``d * degree / 2`` rounded to an int."""
        return int(round(self.n_nodes * self.average_degree / 2.0))

    @classmethod
    def parse(cls, name: str, n_nodes: int) -> "GraphSpec":
        """Parse paper-style names such as ``"ER-2"`` or ``"SF-4"``."""
        try:
            model, degree = name.lower().split("-")
            return cls(n_nodes=n_nodes, model=model, average_degree=float(degree))  # type: ignore[arg-type]
        except (ValueError, TypeError) as exc:
            raise ValidationError(
                f"cannot parse graph spec {name!r}; expected e.g. 'ER-2' or 'SF-4'"
            ) from exc


def _orient_acyclic(binary: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Orient an adjacency matrix acyclically via a random permutation.

    The lower triangle of ``binary`` (in permuted order) is kept, which makes
    the graph acyclic by construction: edges only point from earlier to later
    nodes of the permutation.
    """
    d = binary.shape[0]
    permutation = rng.permutation(d)
    permuted = binary[np.ix_(permutation, permutation)]
    lower = np.tril(permuted, k=-1)
    # Undo the permutation so node identities are uniformly random.
    inverse = np.empty(d, dtype=int)
    inverse[permutation] = np.arange(d)
    oriented = lower[np.ix_(inverse, inverse)]
    # Edges point parent -> child; transpose the lower-triangular convention so
    # that early permutation positions are parents.
    return oriented.T


def random_erdos_renyi_dag(
    n_nodes: int,
    average_degree: float = 2.0,
    seed: RandomState = None,
) -> np.ndarray:
    """Generate a binary ER DAG adjacency matrix with the given average degree."""
    if n_nodes < 1:
        raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
    check_positive(average_degree, "average_degree")
    rng = as_generator(seed)
    if n_nodes == 1:
        return np.zeros((1, 1))
    # Edge probability chosen so the expected number of (undirected) edges is
    # d * degree / 2, matching the ER-k naming convention of the paper.
    probability = min(1.0, average_degree / (n_nodes - 1))
    undirected = (rng.random((n_nodes, n_nodes)) < probability).astype(float)
    np.fill_diagonal(undirected, 0.0)
    return _orient_acyclic(undirected, rng)


def random_scale_free_dag(
    n_nodes: int,
    average_degree: float = 4.0,
    seed: RandomState = None,
) -> np.ndarray:
    """Generate a binary scale-free DAG via Barabási–Albert preferential attachment.

    Each new node attaches to ``m = round(average_degree / 2)`` existing nodes
    chosen with probability proportional to their current degree.  Edges are
    then oriented from earlier nodes to later nodes, which yields a DAG where
    hub nodes accumulate many connections — the SF-4 setting of the paper.
    """
    if n_nodes < 1:
        raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
    check_positive(average_degree, "average_degree")
    rng = as_generator(seed)
    if n_nodes == 1:
        return np.zeros((1, 1))

    m = max(1, int(round(average_degree / 2.0)))
    m = min(m, n_nodes - 1)
    adjacency = np.zeros((n_nodes, n_nodes))
    degrees = np.zeros(n_nodes)

    # Seed the process with a small fully-connected core of m + 1 nodes.
    core = min(m + 1, n_nodes)
    for i in range(core):
        for j in range(i + 1, core):
            adjacency[i, j] = 1.0
            degrees[i] += 1
            degrees[j] += 1

    for new_node in range(core, n_nodes):
        existing = np.arange(new_node)
        weights = degrees[:new_node] + 1e-12
        probabilities = weights / weights.sum()
        n_targets = min(m, new_node)
        targets = rng.choice(existing, size=n_targets, replace=False, p=probabilities)
        for target in targets:
            # Older (hub) node is the parent of the newcomer.
            adjacency[target, new_node] = 1.0
            degrees[target] += 1
            degrees[new_node] += 1

    # Randomly relabel nodes so hubs are not always the lowest indices.
    permutation = rng.permutation(n_nodes)
    return _relabel(adjacency, permutation)


def _relabel(adjacency: np.ndarray, permutation: np.ndarray) -> np.ndarray:
    """Relabel the nodes of ``adjacency``: node ``i`` becomes ``permutation[i]``."""
    relabeled = np.zeros_like(adjacency)
    rows, cols = np.nonzero(adjacency)
    relabeled[permutation[rows], permutation[cols]] = adjacency[rows, cols]
    return relabeled


def random_weight_matrix(
    binary_adjacency: np.ndarray,
    weight_ranges: tuple[tuple[float, float], ...] = DEFAULT_WEIGHT_RANGES,
    seed: RandomState = None,
) -> np.ndarray:
    """Assign uniformly random weights to the edges of a binary adjacency matrix.

    Each edge independently picks one of ``weight_ranges`` (uniformly) and then
    a uniform value inside that range — matching the ±[0.5, 2.0] scheme used by
    the paper's benchmark generator.
    """
    binary = np.asarray(binary_adjacency, dtype=float)
    if binary.ndim != 2 or binary.shape[0] != binary.shape[1]:
        raise ValidationError("binary_adjacency must be a square matrix")
    if not weight_ranges:
        raise ValidationError("weight_ranges must not be empty")
    rng = as_generator(seed)
    weights = np.zeros_like(binary)
    rows, cols = np.nonzero(binary)
    for i, j in zip(rows, cols):
        low, high = weight_ranges[rng.integers(len(weight_ranges))]
        weights[i, j] = rng.uniform(low, high)
    return weights


def random_dag(
    spec: GraphSpec | str,
    n_nodes: int | None = None,
    *,
    weighted: bool = True,
    weight_ranges: tuple[tuple[float, float], ...] = DEFAULT_WEIGHT_RANGES,
    seed: RandomState = None,
) -> np.ndarray:
    """Generate a random (optionally weighted) DAG adjacency matrix.

    Parameters
    ----------
    spec:
        Either a :class:`GraphSpec` or a paper-style name such as ``"ER-2"``
        (in which case ``n_nodes`` must be provided).
    n_nodes:
        Number of nodes when ``spec`` is a string name.
    weighted:
        If True (default) return edge weights drawn from ``weight_ranges``,
        otherwise a binary adjacency matrix.
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    numpy.ndarray
        A ``d x d`` adjacency matrix whose induced graph is acyclic.
    """
    rng = as_generator(seed)
    if isinstance(spec, str):
        if n_nodes is None:
            raise ValidationError("n_nodes is required when spec is a string name")
        spec = GraphSpec.parse(spec, n_nodes)
    if spec.model == "er":
        binary = random_erdos_renyi_dag(spec.n_nodes, spec.average_degree, rng)
    else:
        binary = random_scale_free_dag(spec.n_nodes, spec.average_degree, rng)
    if not weighted:
        return binary
    return random_weight_matrix(binary, weight_ranges, rng)
