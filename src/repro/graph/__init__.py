"""Graph substrate: random DAG generation, DAG utilities, conversions, I/O."""

from repro.graph.adjacency import (
    adjacency_to_edge_list,
    binarize,
    edge_list_to_adjacency,
    to_dense,
    to_sparse,
)
from repro.graph.dag import (
    all_paths_to,
    ancestors,
    count_edges,
    descendants,
    find_cycle,
    is_dag,
    topological_sort,
)
from repro.graph.generation import (
    GraphSpec,
    random_dag,
    random_erdos_renyi_dag,
    random_scale_free_dag,
    random_weight_matrix,
)
from repro.graph.io import load_edge_list, load_graph_npz, save_edge_list, save_graph_npz

__all__ = [
    "GraphSpec",
    "random_dag",
    "random_erdos_renyi_dag",
    "random_scale_free_dag",
    "random_weight_matrix",
    "is_dag",
    "topological_sort",
    "find_cycle",
    "ancestors",
    "descendants",
    "all_paths_to",
    "count_edges",
    "adjacency_to_edge_list",
    "edge_list_to_adjacency",
    "binarize",
    "to_dense",
    "to_sparse",
    "save_edge_list",
    "load_edge_list",
    "save_graph_npz",
    "load_graph_npz",
]
