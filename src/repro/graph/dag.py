"""Directed-acyclic-graph utilities.

These functions operate on weighted adjacency matrices where ``W[i, j] != 0``
means there is an edge ``i -> j`` (the convention used throughout the paper:
node ``i`` is a parent of node ``j``).  Dense numpy arrays and scipy sparse
matrices are both accepted.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotADAGError
from repro.utils.validation import check_square_matrix

__all__ = [
    "is_dag",
    "topological_sort",
    "find_cycle",
    "find_cycle_in_adjacency",
    "ancestors",
    "descendants",
    "parents",
    "children",
    "all_paths_to",
    "count_edges",
    "transitive_closure",
]


def _adjacency_lists(matrix) -> list[list[int]]:
    """Return children adjacency lists for a dense or sparse matrix."""
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        d = csr.shape[0]
        out: list[list[int]] = []
        for i in range(d):
            start, end = csr.indptr[i], csr.indptr[i + 1]
            cols = csr.indices[start:end]
            vals = csr.data[start:end]
            out.append([int(j) for j, v in zip(cols, vals) if v != 0])
        return out
    array = np.asarray(matrix)
    return [list(np.flatnonzero(row)) for row in array]


def count_edges(matrix) -> int:
    """Number of non-zero entries (edges) in the adjacency matrix."""
    matrix = check_square_matrix(matrix)
    if sp.issparse(matrix):
        return int((matrix != 0).sum())
    return int(np.count_nonzero(matrix))


def parents(matrix, node: int) -> list[int]:
    """Return the parent indices of ``node`` (incoming edges)."""
    matrix = check_square_matrix(matrix)
    if sp.issparse(matrix):
        col = matrix.tocsc()[:, node].toarray().ravel()
        return list(np.flatnonzero(col))
    return list(np.flatnonzero(np.asarray(matrix)[:, node]))


def children(matrix, node: int) -> list[int]:
    """Return the child indices of ``node`` (outgoing edges)."""
    matrix = check_square_matrix(matrix)
    if sp.issparse(matrix):
        row = matrix.tocsr()[node, :].toarray().ravel()
        return list(np.flatnonzero(row))
    return list(np.flatnonzero(np.asarray(matrix)[node, :]))


def topological_sort(matrix) -> list[int]:
    """Return a topological order of the graph ``matrix``.

    Raises
    ------
    NotADAGError
        If the graph contains a cycle.
    """
    matrix = check_square_matrix(matrix)
    adjacency = _adjacency_lists(matrix)
    d = len(adjacency)
    in_degree = [0] * d
    for i in range(d):
        for j in adjacency[i]:
            in_degree[j] += 1
    queue: deque[int] = deque(i for i in range(d) if in_degree[i] == 0)
    order: list[int] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for child in adjacency[node]:
            in_degree[child] -= 1
            if in_degree[child] == 0:
                queue.append(child)
    if len(order) != d:
        raise NotADAGError("graph contains at least one cycle")
    return order


def is_dag(matrix) -> bool:
    """Return True iff the graph induced by ``matrix`` is acyclic."""
    try:
        topological_sort(matrix)
    except NotADAGError:
        return False
    return True


def find_cycle(matrix) -> list[int] | None:
    """Return one directed cycle as a list of nodes, or None if acyclic.

    The returned list ``[v0, v1, ..., vk]`` satisfies ``v0 == vk`` and each
    consecutive pair is an edge of the graph.
    """
    matrix = check_square_matrix(matrix)
    return find_cycle_in_adjacency(_adjacency_lists(matrix))


def find_cycle_in_adjacency(
    adjacency: Sequence[Sequence[int]],
) -> list[int] | None:
    """:func:`find_cycle` on prebuilt children adjacency lists.

    Useful when the caller already holds the graph in edge form (the shard
    stitcher merges edge maps without ever materializing a matrix); the DFS
    visits starts in index order and children in list order, so passing
    sorted lists reproduces :func:`find_cycle`'s traversal exactly.
    """
    d = len(adjacency)
    color = [0] * d  # 0 = unvisited, 1 = on stack, 2 = done
    parent: dict[int, int] = {}

    for start in range(d):
        if color[start] != 0:
            continue
        stack: list[tuple[int, Iterator[int]]] = [(start, iter(adjacency[start]))]
        color[start] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for child in it:
                if color[child] == 0:
                    color[child] = 1
                    parent[child] = node
                    stack.append((child, iter(adjacency[child])))
                    advanced = True
                    break
                if color[child] == 1:
                    # Found a back edge node -> child; reconstruct the cycle.
                    cycle = [node]
                    current = node
                    while current != child:
                        current = parent[current]
                        cycle.append(current)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
            if not advanced:
                color[node] = 2
                stack.pop()
    return None


def _reachable(adjacency: Sequence[Sequence[int]], start: int) -> set[int]:
    """Set of nodes reachable from ``start`` (excluding ``start`` itself unless on a cycle)."""
    seen: set[int] = set()
    stack = list(adjacency[start])
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(adjacency[node])
    return seen


def descendants(matrix, node: int) -> set[int]:
    """Return all nodes reachable from ``node`` via directed paths."""
    matrix = check_square_matrix(matrix)
    return _reachable(_adjacency_lists(matrix), node)


def ancestors(matrix, node: int) -> set[int]:
    """Return all nodes from which ``node`` is reachable."""
    matrix = check_square_matrix(matrix)
    if sp.issparse(matrix):
        transposed = matrix.transpose().tocsr()
    else:
        transposed = np.asarray(matrix).T
    return _reachable(_adjacency_lists(transposed), node)


def all_paths_to(matrix, target: int, max_length: int | None = None) -> list[list[int]]:
    """Enumerate all simple directed paths terminating at ``target``.

    Each returned path is a list of node indices ``[source, ..., target]``
    where ``source`` has no parents (a root), mirroring the root-cause path
    extraction described in Section VI-A of the paper: follow incoming links
    of the error node until a node without parents is reached.

    Parameters
    ----------
    matrix:
        Weighted adjacency matrix of a DAG.
    target:
        Index of the destination node.
    max_length:
        Optional cap on path length (number of edges) to bound the search on
        dense graphs.
    """
    matrix = check_square_matrix(matrix)
    if sp.issparse(matrix):
        transposed = matrix.transpose().tocsr()
    else:
        transposed = np.asarray(matrix).T
    parents_of = _adjacency_lists(transposed)

    paths: list[list[int]] = []

    def walk(node: int, visited: list[int]) -> None:
        visited = visited + [node]
        if max_length is not None and len(visited) - 1 > max_length:
            return
        node_parents = [p for p in parents_of[node] if p not in visited]
        if not node_parents:
            paths.append(list(reversed(visited)))
            return
        for parent in node_parents:
            walk(parent, visited)

    walk(target, [])
    return paths


def transitive_closure(matrix) -> np.ndarray:
    """Boolean reachability matrix: ``R[i, j]`` is True iff j is reachable from i."""
    matrix = check_square_matrix(matrix)
    adjacency = _adjacency_lists(matrix)
    d = len(adjacency)
    closure = np.zeros((d, d), dtype=bool)
    for i in range(d):
        for j in _reachable(adjacency, i):
            closure[i, j] = True
    return closure
