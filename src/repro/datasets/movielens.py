"""Synthetic MovieLens-style rating data with a planted item→item causal graph.

Section V-B and VI-C of the paper run LEAST on the MovieLens-20M rating matrix
(27,278 movies × 138,493 users, per-user mean-centred) and inspect the learned
item graph: strongest edges link movies of the same series / director / genre
(Table IV), and "blockbuster" movies end up with many incoming but few
outgoing edges (Fig. 8 discussion).  MovieLens itself cannot be downloaded
offline, so this module generates a rating matrix with those mechanisms built
in, which lets the whole pipeline — learning, top-edge extraction, hub
analysis — run end to end and be validated against the *planted* structure:

* movies are organised into franchises (series), director clusters and genres;
* a planted DAG links sequels to their predecessors, same-director and
  same-genre pairs with decreasing weight;
* a per-user taste vector plus the planted propagation generates ratings, so a
  user who liked movie ``i`` tends to rate its graph-children similarly;
* "blockbusters" are watched by (almost) everyone regardless of taste, which
  reproduces the in-degree/out-degree asymmetry the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.sem.standardize import center_rows
from repro.utils.random import RandomState, spawn_generators
from repro.utils.validation import check_positive, check_probability

__all__ = ["MovieLensDataset", "make_movielens"]

_GENRES = (
    "Action",
    "Adventure",
    "Comedy",
    "Drama",
    "Sci-Fi",
    "Thriller",
    "Romance",
    "Animation",
)


@dataclass(frozen=True)
class MovieLensDataset:
    """Synthetic rating matrix plus the planted item graph and metadata."""

    movie_titles: tuple[str, ...]
    ratings: np.ndarray
    centered: np.ndarray
    truth: np.ndarray
    series_of: tuple[int, ...]
    director_of: tuple[int, ...]
    genre_of: tuple[str, ...]
    blockbusters: tuple[int, ...]
    relations: dict[tuple[int, int], str] = field(default_factory=dict)

    @property
    def n_movies(self) -> int:
        """Number of movies (nodes of the item graph)."""
        return len(self.movie_titles)

    @property
    def n_users(self) -> int:
        """Number of users (samples)."""
        return self.ratings.shape[0]

    def relation_of(self, source: int, target: int) -> str:
        """Human-readable relation of a planted edge (``"unrelated"`` if none)."""
        return self.relations.get((source, target), "unrelated")


def make_movielens(
    n_movies: int = 120,
    n_users: int = 2000,
    n_series: int = 18,
    series_size: int = 3,
    n_directors: int = 20,
    blockbuster_fraction: float = 0.05,
    rating_noise: float = 0.35,
    watch_probability: float = 0.65,
    seed: RandomState = None,
) -> MovieLensDataset:
    """Generate a synthetic MovieLens-like dataset.

    Parameters
    ----------
    n_movies, n_users:
        Size of the rating matrix (kept laptop-scale by default; the planted
        mechanisms are scale-free so larger sizes behave the same way).
    n_series, series_size:
        Number of franchises and movies per franchise; sequels are linked to
        their predecessor with the strongest planted weights ("same series"
        rows of Table IV).
    n_directors:
        Number of director clusters; same-director pairs get medium weights.
    blockbuster_fraction:
        Fraction of movies everyone watches; these become high in-degree /
        low out-degree hubs.
    rating_noise:
        Standard deviation of the per-rating noise.
    watch_probability:
        Probability a user rates any given (non-blockbuster) movie; unrated
        cells are filled with the user's mean so the per-user centring used by
        the paper leaves them at zero.
    seed:
        Seed or generator for reproducibility.
    """
    check_positive(n_movies, "n_movies")
    check_positive(n_users, "n_users")
    check_positive(series_size, "series_size")
    check_probability(blockbuster_fraction, "blockbuster_fraction")
    check_probability(watch_probability, "watch_probability")
    check_positive(rating_noise, "rating_noise")
    if n_series * series_size > n_movies:
        raise ValidationError(
            f"{n_series} series of {series_size} movies need more than {n_movies} movies"
        )

    structure_rng, taste_rng, noise_rng = spawn_generators(seed, 3)

    # --- metadata ---------------------------------------------------------------
    series_of = np.full(n_movies, -1, dtype=int)
    for series in range(n_series):
        for position in range(series_size):
            series_of[series * series_size + position] = series
    director_of = structure_rng.integers(0, n_directors, size=n_movies)
    genre_of = [ _GENRES[int(g)] for g in structure_rng.integers(0, len(_GENRES), size=n_movies) ]
    # Movies in the same series share director and genre, as real franchises do.
    for series in range(n_series):
        members = np.flatnonzero(series_of == series)
        director_of[members] = director_of[members[0]]
        for member in members:
            genre_of[member] = genre_of[members[0]]

    n_blockbusters = max(1, int(round(blockbuster_fraction * n_movies)))
    blockbusters = tuple(
        int(i) for i in structure_rng.choice(n_movies, size=n_blockbusters, replace=False)
    )

    titles = []
    for movie in range(n_movies):
        if series_of[movie] >= 0:
            titles.append(
                f"Franchise {series_of[movie]:02d}: Part {int(np.flatnonzero(np.flatnonzero(series_of == series_of[movie]) == movie)[0]) + 1}"
            )
        else:
            titles.append(f"{genre_of[movie]} Feature #{movie:03d}")

    # --- planted item graph -------------------------------------------------------
    truth = np.zeros((n_movies, n_movies))
    relations: dict[tuple[int, int], str] = {}

    for series in range(n_series):
        members = np.flatnonzero(series_of == series)
        for position in range(1, len(members)):
            source, target = int(members[position]), int(members[position - 1])
            # Watching the sequel strongly predicts the original's rating.
            truth[source, target] = structure_rng.uniform(0.45, 0.7)
            relations[(source, target)] = "same series"

    for director in range(n_directors):
        members = np.flatnonzero(director_of == director)
        members = [m for m in members if series_of[m] < 0]
        for first, second in zip(members[1:], members[:-1]):
            if truth[first, second] == 0 and truth[second, first] == 0:
                truth[int(first), int(second)] = structure_rng.uniform(0.2, 0.4)
                relations[(int(first), int(second))] = "same director"

    genre_groups: dict[str, list[int]] = {}
    for movie, genre in enumerate(genre_of):
        if series_of[movie] < 0:
            genre_groups.setdefault(genre, []).append(movie)
    for genre, members in genre_groups.items():
        for first, second in zip(members[2::3], members[::3]):
            if first != second and truth[first, second] == 0 and truth[second, first] == 0:
                truth[first, second] = structure_rng.uniform(0.1, 0.25)
                relations[(first, second)] = "same genre"

    # Blockbusters receive extra incoming edges from niche movies (liking a
    # niche movie predicts having seen and rated the blockbuster), never
    # outgoing ones — the asymmetry discussed in Section VI-C.
    niche = [m for m in range(n_movies) if m not in blockbusters and series_of[m] < 0]
    for hub in blockbusters:
        truth[hub, :] = 0.0
        n_sources = min(len(niche), 6)
        sources = structure_rng.choice(niche, size=n_sources, replace=False)
        for source in sources:
            if truth[int(source), hub] == 0:
                truth[int(source), hub] = structure_rng.uniform(0.15, 0.35)
                relations[(int(source), hub)] = "niche-to-blockbuster"

    # --- ratings -------------------------------------------------------------------
    taste = taste_rng.normal(0.0, 1.0, size=(n_users, len(_GENRES)))
    genre_index = np.asarray([_GENRES.index(g) for g in genre_of])
    base_quality = structure_rng.uniform(-0.4, 0.6, size=n_movies)

    intrinsic = 3.5 + 0.5 * taste[:, genre_index] + base_quality[None, :]
    intrinsic += noise_rng.normal(0.0, rating_noise, size=intrinsic.shape)

    # Propagate the planted influences: a user's (mean-centred) affinity for a
    # movie adds to the affinity for that movie's graph children.
    order = np.argsort(-np.abs(truth).sum(axis=1))  # sources first is not required;
    ratings = intrinsic.copy()
    centred_affinity = intrinsic - intrinsic.mean(axis=1, keepdims=True)
    for source in order:
        targets = np.flatnonzero(truth[source])
        for target in targets:
            ratings[:, target] += truth[source, target] * centred_affinity[:, source]

    ratings = np.clip(ratings, 0.0, 5.0)

    # Observation mask: blockbusters are watched by almost everyone, other
    # movies with probability watch_probability; unobserved cells fall back to
    # the user's mean rating so centring zeroes them out.
    observed = noise_rng.random((n_users, n_movies)) < watch_probability
    observed[:, list(blockbusters)] = noise_rng.random((n_users, n_blockbusters)) < 0.97
    user_means = np.where(observed, ratings, np.nan)
    with np.errstate(invalid="ignore"):
        means = np.nanmean(user_means, axis=1)
    means = np.where(np.isfinite(means), means, ratings.mean())
    filled = np.where(observed, ratings, means[:, None])

    centered = center_rows(filled)

    return MovieLensDataset(
        movie_titles=tuple(titles),
        ratings=filled,
        centered=centered,
        truth=truth,
        series_of=tuple(int(s) for s in series_of),
        director_of=tuple(int(x) for x in director_of),
        genre_of=tuple(genre_of),
        blockbusters=blockbusters,
        relations=relations,
    )
