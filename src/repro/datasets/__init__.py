"""Benchmark dataset generators used by the paper's evaluation.

Three dataset families are provided:

* :mod:`repro.datasets.sachs` — the public Sachs protein-signalling network
  (11 nodes, 17 edges) with an LSEM sampler;
* :mod:`repro.datasets.grn` — GeneNetWeaver-style synthetic gene regulatory
  networks at E. coli / Yeast scale (substituting the datasets of Table I);
* :mod:`repro.datasets.movielens` — a synthetic MovieLens-like rating matrix
  with a planted item→item causal graph (substituting MovieLens-20M in the
  Section V-B / VI-C experiments).

:mod:`repro.datasets.registry` exposes them behind a single ``load_dataset``
entry point keyed by name, which the benchmark harness uses.
"""

from repro.datasets.grn import GeneExpressionDataset, make_gene_regulatory_network
from repro.datasets.movielens import MovieLensDataset, make_movielens
from repro.datasets.registry import (
    DATASET_BUILDERS,
    dataset_names,
    load_dataset,
    register_dataset,
    unregister_dataset,
)
from repro.datasets.sachs import SACHS_EDGES, SACHS_NODES, load_sachs

__all__ = [
    "SACHS_NODES",
    "SACHS_EDGES",
    "load_sachs",
    "GeneExpressionDataset",
    "make_gene_regulatory_network",
    "MovieLensDataset",
    "make_movielens",
    "load_dataset",
    "dataset_names",
    "register_dataset",
    "unregister_dataset",
    "DATASET_BUILDERS",
]
