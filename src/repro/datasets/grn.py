"""Synthetic gene-regulatory-network benchmarks (GeneNetWeaver substitutes).

The paper's Table I evaluates structure learning on the E. coli (1,565 genes)
and Yeast (4,441 genes) networks produced by GeneNetWeaver.  Those datasets
ship with the GeneNetWeaver tool, which is not available offline; this module
generates synthetic gene regulatory networks with the same statistical
signature at the same scale:

* a small fraction of genes act as *transcription factors* (TFs) and are the
  only nodes with outgoing regulatory edges;
* the out-degree of TFs is heavy-tailed (a few global regulators control very
  many targets), which is the hallmark topology GeneNetWeaver extracts from
  the real E. coli / Yeast interaction maps;
* expression data follows a linear SEM on the regulatory structure with
  configurable noise — the same model class used for the paper's artificial
  benchmarks, so the structure-recovery metrics are directly comparable.

The defaults of :func:`make_gene_regulatory_network` match the node, edge and
sample counts of Table I so the benchmark harness can regenerate that table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.generation import random_weight_matrix
from repro.sem.linear_sem import LinearSEM
from repro.sem.noise import make_noise_model
from repro.utils.random import RandomState, spawn_generators
from repro.utils.validation import check_positive, check_probability

__all__ = ["GeneExpressionDataset", "make_gene_regulatory_network", "GRN_PRESETS"]

#: Node / edge / sample counts of the gene datasets in Table I of the paper.
GRN_PRESETS: dict[str, dict[str, int]] = {
    "sachs-scale": {"n_genes": 11, "n_edges": 17, "n_samples": 1000},
    "ecoli-scale": {"n_genes": 1565, "n_edges": 3648, "n_samples": 1565},
    "yeast-scale": {"n_genes": 4441, "n_edges": 12873, "n_samples": 4441},
}


@dataclass(frozen=True)
class GeneExpressionDataset:
    """A synthetic gene-regulatory benchmark instance."""

    name: str
    gene_names: tuple[str, ...]
    truth: np.ndarray
    weights: np.ndarray
    data: np.ndarray

    @property
    def n_genes(self) -> int:
        """Number of genes (nodes)."""
        return self.truth.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of regulatory edges in the ground truth."""
        return int(np.count_nonzero(self.truth))


def _scale_free_regulatory_topology(
    n_genes: int,
    n_edges: int,
    tf_fraction: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Binary TF→target adjacency with heavy-tailed TF out-degrees.

    Transcription factors are the first ``ceil(tf_fraction * n_genes)`` genes
    after a random permutation.  Each edge picks its TF with probability
    proportional to (current out-degree + 1) — preferential attachment, which
    produces the few-global-regulators profile — and a target uniformly among
    downstream genes so the graph stays acyclic (TF index < target index in
    the hidden ordering).
    """
    n_tfs = max(1, int(np.ceil(tf_fraction * n_genes)))
    max_edges = 0
    for tf in range(n_tfs):
        max_edges += n_genes - tf - 1
    if n_edges > max_edges:
        raise ValidationError(
            f"cannot place {n_edges} edges with {n_tfs} transcription factors "
            f"among {n_genes} genes (maximum {max_edges})"
        )

    adjacency = np.zeros((n_genes, n_genes), dtype=float)
    out_degree = np.zeros(n_tfs)
    placed = 0
    attempts = 0
    max_attempts = 50 * n_edges + 1000
    while placed < n_edges and attempts < max_attempts:
        attempts += 1
        probabilities = (out_degree + 1.0) / (out_degree + 1.0).sum()
        tf = int(rng.choice(n_tfs, p=probabilities))
        target = int(rng.integers(tf + 1, n_genes))
        if adjacency[tf, target] == 0:
            adjacency[tf, target] = 1.0
            out_degree[tf] += 1
            placed += 1
    if placed < n_edges:
        # Fill the remainder deterministically (dense fallback, rarely needed).
        for tf in range(n_tfs):
            for target in range(tf + 1, n_genes):
                if placed >= n_edges:
                    break
                if adjacency[tf, target] == 0:
                    adjacency[tf, target] = 1.0
                    placed += 1
            if placed >= n_edges:
                break

    # Hide the construction ordering behind a random relabelling.
    permutation = rng.permutation(n_genes)
    relabeled = np.zeros_like(adjacency)
    rows, cols = np.nonzero(adjacency)
    relabeled[permutation[rows], permutation[cols]] = 1.0
    return relabeled


def make_gene_regulatory_network(
    preset: str | None = None,
    *,
    n_genes: int | None = None,
    n_edges: int | None = None,
    n_samples: int | None = None,
    tf_fraction: float = 0.1,
    noise_type: str = "gaussian",
    noise_scale: float = 1.0,
    weight_scale: float = 0.8,
    seed: RandomState = None,
    name: str | None = None,
) -> GeneExpressionDataset:
    """Generate a synthetic gene-regulatory benchmark.

    Either pass a ``preset`` name from :data:`GRN_PRESETS` (``"ecoli-scale"``,
    ``"yeast-scale"``, ``"sachs-scale"``) or explicit ``n_genes`` /
    ``n_edges`` / ``n_samples``.

    Parameters
    ----------
    tf_fraction:
        Fraction of genes allowed to have outgoing (regulatory) edges.
    weight_scale:
        Regulatory edge weights are drawn uniformly from
        ``±[0.5, 2.0] * weight_scale``; smaller values keep the expression
        variance of heavily-regulated hub targets bounded.
    """
    if preset is not None:
        if preset not in GRN_PRESETS:
            raise ValidationError(
                f"unknown preset {preset!r}; expected one of {sorted(GRN_PRESETS)}"
            )
        config = GRN_PRESETS[preset]
        n_genes = config["n_genes"] if n_genes is None else n_genes
        n_edges = config["n_edges"] if n_edges is None else n_edges
        n_samples = config["n_samples"] if n_samples is None else n_samples
        name = name or preset
    if n_genes is None or n_edges is None or n_samples is None:
        raise ValidationError("n_genes, n_edges and n_samples are required without a preset")
    check_positive(n_genes, "n_genes")
    check_positive(n_samples, "n_samples")
    check_probability(tf_fraction, "tf_fraction")
    check_positive(weight_scale, "weight_scale")

    topology_rng, weight_rng, sample_rng = spawn_generators(seed, 3)
    truth = _scale_free_regulatory_topology(n_genes, n_edges, tf_fraction, topology_rng)
    ranges = (
        (-2.0 * weight_scale, -0.5 * weight_scale),
        (0.5 * weight_scale, 2.0 * weight_scale),
    )
    weights = random_weight_matrix(truth, weight_ranges=ranges, seed=weight_rng)
    sem = LinearSEM(weights=weights, noise=make_noise_model(noise_type, noise_scale))
    data = sem.sample(n_samples, seed=sample_rng)
    gene_names = tuple(f"G{i:05d}" for i in range(n_genes))
    return GeneExpressionDataset(
        name=name or f"grn-{n_genes}",
        gene_names=gene_names,
        truth=truth,
        weights=weights,
        data=data,
    )
