"""The Sachs protein-signalling network (Sachs et al., Science 2005).

This is the standard small benchmark for BN structure learning: 11 measured
phospho-proteins / phospholipids and 17 directed regulatory edges, curated in
the bnlearn repository the paper cites.  The network structure is public and
tiny, so it is embedded directly; expression data is simulated from a linear
SEM parameterized on this structure (the paper's actual measurements are flow
cytometry readings, but only the structure — which we have — is used as
ground truth for the metrics in Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.adjacency import edge_list_to_adjacency
from repro.graph.generation import random_weight_matrix
from repro.sem.linear_sem import LinearSEM
from repro.sem.noise import make_noise_model
from repro.utils.random import RandomState, as_generator, spawn_generators

__all__ = ["SACHS_NODES", "SACHS_EDGES", "load_sachs", "SachsDataset"]

#: The 11 measured molecules, in the conventional order.
SACHS_NODES: tuple[str, ...] = (
    "Raf",
    "Mek",
    "Plcg",
    "PIP2",
    "PIP3",
    "Erk",
    "Akt",
    "PKA",
    "PKC",
    "P38",
    "Jnk",
)

#: The 17 directed edges of the consensus Sachs network (bnlearn repository).
SACHS_EDGES: tuple[tuple[str, str], ...] = (
    ("PKC", "Raf"),
    ("PKC", "Mek"),
    ("PKC", "Jnk"),
    ("PKC", "P38"),
    ("PKC", "PKA"),
    ("PKA", "Raf"),
    ("PKA", "Mek"),
    ("PKA", "Erk"),
    ("PKA", "Akt"),
    ("PKA", "Jnk"),
    ("PKA", "P38"),
    ("Raf", "Mek"),
    ("Mek", "Erk"),
    ("Erk", "Akt"),
    ("Plcg", "PIP2"),
    ("Plcg", "PIP3"),
    ("PIP3", "PIP2"),
)


@dataclass(frozen=True)
class SachsDataset:
    """Ground-truth structure plus simulated expression data."""

    node_names: tuple[str, ...]
    truth: np.ndarray
    weights: np.ndarray
    data: np.ndarray


def sachs_adjacency() -> np.ndarray:
    """Binary ground-truth adjacency matrix of the Sachs network."""
    return edge_list_to_adjacency(SACHS_EDGES, labels=SACHS_NODES)


def load_sachs(
    n_samples: int = 1000,
    noise_type: str = "gaussian",
    noise_scale: float = 1.0,
    seed: RandomState = None,
) -> SachsDataset:
    """Build the Sachs benchmark: true structure plus LSEM-simulated data.

    Parameters
    ----------
    n_samples:
        Number of simulated observations (the paper uses 1,000).
    noise_type, noise_scale:
        Noise family of the simulated structural equations.
    seed:
        Seed or generator for reproducibility (edge weights and samples use
        independent child streams, so the structure's weights do not change
        when only ``n_samples`` changes).
    """
    weight_rng, sample_rng = spawn_generators(seed, 2)
    truth = sachs_adjacency()
    weights = random_weight_matrix(truth, seed=weight_rng)
    sem = LinearSEM(weights=weights, noise=make_noise_model(noise_type, noise_scale))
    data = sem.sample(n_samples, seed=sample_rng)
    return SachsDataset(
        node_names=SACHS_NODES,
        truth=truth,
        weights=weights,
        data=data,
    )
