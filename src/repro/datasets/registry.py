"""Dataset registry: a single name-keyed entry point used by the benchmarks.

``load_dataset(name, seed=...)`` returns a dictionary with at least ``data``
(the sample matrix) and, when a ground truth exists, ``truth``.  Extra keys
carry dataset-specific metadata (node names, planted relations, ...).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.datasets.grn import make_gene_regulatory_network
from repro.datasets.movielens import make_movielens
from repro.datasets.sachs import load_sachs
from repro.exceptions import ValidationError
from repro.graph.generation import random_dag
from repro.sem.linear_sem import simulate_linear_sem
from repro.utils.random import RandomState, spawn_generators

__all__ = [
    "DATASET_BUILDERS",
    "dataset_names",
    "load_dataset",
    "register_dataset",
    "unregister_dataset",
]


def _build_sachs(seed: RandomState, **options: Any) -> dict[str, Any]:
    dataset = load_sachs(seed=seed, **options)
    return {
        "name": "sachs",
        "data": dataset.data,
        "truth": dataset.truth,
        "weights": dataset.weights,
        "node_names": list(dataset.node_names),
    }


def _build_grn(preset: str) -> Callable[..., dict[str, Any]]:
    def builder(seed: RandomState, **options: Any) -> dict[str, Any]:
        dataset = make_gene_regulatory_network(preset, seed=seed, **options)
        return {
            "name": dataset.name,
            "data": dataset.data,
            "truth": dataset.truth,
            "weights": dataset.weights,
            "node_names": list(dataset.gene_names),
        }

    return builder


def _build_movielens(seed: RandomState, **options: Any) -> dict[str, Any]:
    dataset = make_movielens(seed=seed, **options)
    return {
        "name": "movielens-synthetic",
        "data": dataset.centered,
        "truth": dataset.truth,
        "node_names": list(dataset.movie_titles),
        "dataset": dataset,
    }


def _build_benchmark(spec: str) -> Callable[..., dict[str, Any]]:
    def builder(
        seed: RandomState,
        n_nodes: int = 50,
        samples_per_node: int = 10,
        noise_type: str = "gaussian",
        **options: Any,
    ) -> dict[str, Any]:
        graph_rng, data_rng = spawn_generators(seed, 2)
        truth = random_dag(spec, n_nodes, seed=graph_rng, **options)
        data = simulate_linear_sem(
            truth, samples_per_node * n_nodes, noise_type=noise_type, seed=data_rng
        )
        return {"name": f"{spec.lower()}-d{n_nodes}", "data": data, "truth": truth}

    return builder


#: Mapping from dataset name to builder callable.
DATASET_BUILDERS: dict[str, Callable[..., dict[str, Any]]] = {
    "sachs": _build_sachs,
    "ecoli-scale": _build_grn("ecoli-scale"),
    "yeast-scale": _build_grn("yeast-scale"),
    "movielens-synthetic": _build_movielens,
    "er2": _build_benchmark("ER-2"),
    "sf4": _build_benchmark("SF-4"),
}


def dataset_names() -> list[str]:
    """Sorted names of all registered datasets."""
    return sorted(DATASET_BUILDERS)


def register_dataset(
    name: str, builder: Callable[..., dict[str, Any]], overwrite: bool = False
) -> None:
    """Register ``builder`` under ``name`` so jobs and benchmarks can use it.

    The builder must accept a ``seed`` keyword plus arbitrary options and
    return a dictionary with at least a ``data`` key, matching the contract of
    :func:`load_dataset`.  This is the extension point the serving layer
    (:mod:`repro.serve`) uses to run jobs against user-supplied data sources.
    """
    if not callable(builder):
        raise ValidationError(f"builder for {name!r} must be callable")
    if name in DATASET_BUILDERS and not overwrite:
        raise ValidationError(
            f"dataset {name!r} is already registered; pass overwrite=True to replace it"
        )
    DATASET_BUILDERS[name] = builder


def unregister_dataset(name: str) -> None:
    """Remove a registered dataset (no-op for unknown names)."""
    DATASET_BUILDERS.pop(name, None)


def load_dataset(name: str, seed: RandomState = None, **options: Any) -> dict[str, Any]:
    """Build the named dataset; see :data:`DATASET_BUILDERS` for valid names."""
    if name not in DATASET_BUILDERS:
        raise ValidationError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_BUILDERS)}"
        )
    return DATASET_BUILDERS[name](seed=seed, **options)
