"""Structural accuracy metrics for directed graphs.

All metrics compare a predicted adjacency matrix against a ground-truth
adjacency matrix over directed edges.  The conventions follow the NOTEARS
evaluation protocol that the paper adopts:

* an edge predicted in the correct direction is a **true positive**;
* an edge predicted in the reverse direction of a true edge is counted in the
  **false discovery rate** (it is a "wrong" prediction) and contributes to the
  structural Hamming distance;
* the structural Hamming distance (SHD) is the number of edge additions,
  deletions, and reversals needed to turn the predicted graph into the truth,
  where a reversed edge counts once (not twice).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.graph.adjacency import binarize, to_dense
from repro.utils.validation import check_same_shape, check_square_matrix

__all__ = [
    "StructuralMetrics",
    "confusion_counts",
    "evaluate_structure",
    "structural_hamming_distance",
    "f1_score",
    "precision",
    "recall",
    "false_discovery_rate",
    "true_positive_rate",
    "false_positive_rate",
]


@dataclass(frozen=True)
class StructuralMetrics:
    """Bundle of structure-recovery metrics reported in the paper's tables."""

    n_nodes: int
    n_true_edges: int
    n_predicted_edges: int
    true_positives: int
    reversed_edges: int
    false_positives: int
    false_negatives: int
    fdr: float
    tpr: float
    fpr: float
    precision: float
    recall: float
    f1: float
    shd: int

    def to_dict(self) -> dict[str, float]:
        """Return the metrics as a plain dictionary (for tables / JSON)."""
        return asdict(self)


def _binary_pair(predicted, truth) -> tuple[np.ndarray, np.ndarray]:
    predicted = to_dense(check_square_matrix(predicted, "predicted"))
    truth = to_dense(check_square_matrix(truth, "truth"))
    check_same_shape(predicted, truth, ("predicted", "truth"))
    pred_bin = binarize(predicted).astype(bool)
    true_bin = binarize(truth).astype(bool)
    np.fill_diagonal(pred_bin, False)
    np.fill_diagonal(true_bin, False)
    return pred_bin, true_bin


def confusion_counts(predicted, truth) -> dict[str, int]:
    """Edge-level confusion counts between predicted and true graphs.

    Returns a dictionary with keys ``true_positives`` (correct direction),
    ``reversed`` (predicted j->i where the truth has i->j), ``false_positives``
    (predicted edges absent in either direction), ``false_negatives`` (true
    edges missed entirely), and ``true_negatives``.
    """
    pred, true = _binary_pair(predicted, truth)
    d = pred.shape[0]
    true_positives = int(np.sum(pred & true))
    reversed_edges = int(np.sum(pred & ~true & true.T))
    false_positives = int(np.sum(pred & ~true & ~true.T))
    false_negatives = int(np.sum(true & ~pred & ~pred.T))
    possible = d * (d - 1)
    true_negatives = possible - true_positives - reversed_edges - false_positives - false_negatives
    return {
        "true_positives": true_positives,
        "reversed": reversed_edges,
        "false_positives": false_positives,
        "false_negatives": false_negatives,
        "true_negatives": int(true_negatives),
    }


def structural_hamming_distance(predicted, truth) -> int:
    """Structural Hamming distance between two directed graphs.

    Counts missing edges, extra edges, and reversed edges, where a reversal
    contributes a single unit.
    """
    pred, true = _binary_pair(predicted, truth)
    # Work on the skeletons for extra/missing, and count direction errors once.
    pred_skeleton = pred | pred.T
    true_skeleton = true | true.T
    upper = np.triu_indices(pred.shape[0], k=1)
    extra = int(np.sum(pred_skeleton[upper] & ~true_skeleton[upper]))
    missing = int(np.sum(true_skeleton[upper] & ~pred_skeleton[upper]))
    both = pred_skeleton & true_skeleton
    reversed_count = 0
    rows, cols = np.nonzero(np.triu(both, k=1))
    for i, j in zip(rows, cols):
        pred_forward = pred[i, j]
        pred_backward = pred[j, i]
        true_forward = true[i, j]
        true_backward = true[j, i]
        if (pred_forward, pred_backward) != (true_forward, true_backward):
            reversed_count += 1
    return extra + missing + reversed_count


def false_discovery_rate(predicted, truth) -> float:
    """FDR = (reversed + false positives) / max(1, predicted edges)."""
    counts = confusion_counts(predicted, truth)
    predicted_edges = counts["true_positives"] + counts["reversed"] + counts["false_positives"]
    if predicted_edges == 0:
        return 0.0
    return (counts["reversed"] + counts["false_positives"]) / predicted_edges


def true_positive_rate(predicted, truth) -> float:
    """TPR = true positives / max(1, true edges)."""
    counts = confusion_counts(predicted, truth)
    _, true = _binary_pair(predicted, truth)
    n_true = int(true.sum())
    if n_true == 0:
        return 0.0
    return counts["true_positives"] / n_true


def false_positive_rate(predicted, truth) -> float:
    """FPR = (reversed + false positives) / max(1, number of non-edges in truth)."""
    counts = confusion_counts(predicted, truth)
    _, true = _binary_pair(predicted, truth)
    d = true.shape[0]
    negatives = d * (d - 1) - int(true.sum())
    if negatives == 0:
        return 0.0
    return (counts["reversed"] + counts["false_positives"]) / negatives


def precision(predicted, truth) -> float:
    """Fraction of predicted edges that are correct (right direction)."""
    counts = confusion_counts(predicted, truth)
    predicted_edges = counts["true_positives"] + counts["reversed"] + counts["false_positives"]
    if predicted_edges == 0:
        return 0.0
    return counts["true_positives"] / predicted_edges


def recall(predicted, truth) -> float:
    """Fraction of true edges recovered in the right direction (same as TPR)."""
    return true_positive_rate(predicted, truth)


def f1_score(predicted, truth) -> float:
    """Harmonic mean of directed-edge precision and recall."""
    p = precision(predicted, truth)
    r = recall(predicted, truth)
    if p + r == 0:
        return 0.0
    return 2.0 * p * r / (p + r)


def evaluate_structure(predicted, truth) -> StructuralMetrics:
    """Compute the full metric bundle used in the paper's tables and figures."""
    pred, true = _binary_pair(predicted, truth)
    counts = confusion_counts(predicted, truth)
    n_true = int(true.sum())
    n_pred = int(pred.sum())
    p = precision(predicted, truth)
    r = recall(predicted, truth)
    f1 = 0.0 if p + r == 0 else 2.0 * p * r / (p + r)
    return StructuralMetrics(
        n_nodes=pred.shape[0],
        n_true_edges=n_true,
        n_predicted_edges=n_pred,
        true_positives=counts["true_positives"],
        reversed_edges=counts["reversed"],
        false_positives=counts["false_positives"],
        false_negatives=counts["false_negatives"],
        fdr=false_discovery_rate(predicted, truth),
        tpr=true_positive_rate(predicted, truth),
        fpr=false_positive_rate(predicted, truth),
        precision=p,
        recall=r,
        f1=f1,
        shd=structural_hamming_distance(predicted, truth),
    )
