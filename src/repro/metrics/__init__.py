"""Evaluation metrics for learned graph structures."""

from repro.metrics.correlation import pearson_correlation, trace_correlation
from repro.metrics.roc import auc_roc, roc_curve
from repro.metrics.structural import (
    StructuralMetrics,
    confusion_counts,
    evaluate_structure,
    f1_score,
    false_discovery_rate,
    false_positive_rate,
    precision,
    recall,
    structural_hamming_distance,
    true_positive_rate,
)

__all__ = [
    "StructuralMetrics",
    "evaluate_structure",
    "confusion_counts",
    "structural_hamming_distance",
    "f1_score",
    "precision",
    "recall",
    "false_discovery_rate",
    "true_positive_rate",
    "false_positive_rate",
    "auc_roc",
    "roc_curve",
    "pearson_correlation",
    "trace_correlation",
]
