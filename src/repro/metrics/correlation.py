"""Correlation diagnostics between acyclicity measures.

Fig. 4 (third row) of the paper reports the Pearson correlation between the
spectral-bound constraint ``δ(W)`` and the original NOTEARS constraint
``h(W)`` recorded over the optimization trajectory, as evidence that the bound
is a faithful proxy.  These helpers compute that statistic from the traces the
solvers record.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["pearson_correlation", "trace_correlation"]


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length sequences.

    Returns 0.0 when either sequence has zero variance (the coefficient is
    undefined; zero is the conservative choice for the proxy-validity check).
    """
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if x_arr.shape != y_arr.shape:
        raise ValidationError(
            f"sequences must have equal length, got {x_arr.shape} and {y_arr.shape}"
        )
    if x_arr.size < 2:
        raise ValidationError("at least two points are required for a correlation")
    x_centered = x_arr - x_arr.mean()
    y_centered = y_arr - y_arr.mean()
    denominator = np.sqrt((x_centered**2).sum() * (y_centered**2).sum())
    if denominator == 0:
        return 0.0
    return float((x_centered * y_centered).sum() / denominator)


def trace_correlation(
    log,
    delta_key: str = "delta",
    h_key: str = "h",
    log_scale: bool = True,
) -> float:
    """Correlation between the δ(W) and h(W) traces of a solver run.

    Parameters
    ----------
    log:
        A :class:`repro.utils.logging.RunLog` (or any object with a
        ``column(key)`` method) containing per-iteration constraint values.
    delta_key, h_key:
        Record keys holding the spectral bound and the NOTEARS constraint.
    log_scale:
        If True (default) correlate the log10 of the values, which matches how
        the constraint traces are compared in the paper (both decay over many
        orders of magnitude).
    """
    delta = np.asarray(log.column(delta_key), dtype=float)
    h = np.asarray(log.column(h_key), dtype=float)
    mask = np.isfinite(delta) & np.isfinite(h)
    if log_scale:
        mask &= (delta > 0) & (h > 0)
    delta = delta[mask]
    h = h[mask]
    if delta.size < 2:
        return 0.0
    if log_scale:
        delta = np.log10(delta)
        h = np.log10(h)
    return pearson_correlation(delta, h)
