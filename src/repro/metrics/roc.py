"""ROC analysis over edge scores.

The paper reports AUC-ROC for the gene-expression experiments (Table I).  The
edge score of a candidate edge ``(i, j)`` is the absolute learned weight
``|W[i, j]|``; the label is whether the ground-truth graph contains the edge.
The diagonal is excluded because self-loops are never valid.
"""

from __future__ import annotations

import numpy as np

from repro.graph.adjacency import binarize, to_dense
from repro.utils.validation import check_same_shape, check_square_matrix

__all__ = ["roc_curve", "auc_roc"]


def _scores_and_labels(weights, truth) -> tuple[np.ndarray, np.ndarray]:
    weights = to_dense(check_square_matrix(weights, "weights"))
    truth = to_dense(check_square_matrix(truth, "truth"))
    check_same_shape(weights, truth, ("weights", "truth"))
    d = weights.shape[0]
    mask = ~np.eye(d, dtype=bool)
    scores = np.abs(weights[mask])
    labels = binarize(truth).astype(bool)[mask]
    return scores, labels


def roc_curve(weights, truth) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the ROC curve of edge scores against the true structure.

    Returns ``(fpr, tpr, thresholds)`` where the curve starts at (0, 0) and
    ends at (1, 1).  Thresholds are the distinct score values in decreasing
    order (prefixed with +inf for the empty prediction).
    """
    scores, labels = _scores_and_labels(weights, truth)
    order = np.argsort(-scores, kind="stable")
    scores = scores[order]
    labels = labels[order]

    n_positive = int(labels.sum())
    n_negative = labels.size - n_positive

    # Cumulative counts at each distinct threshold.
    distinct = np.flatnonzero(np.diff(scores)) if scores.size else np.array([], dtype=int)
    cut_points = np.concatenate([distinct, [labels.size - 1]]) if scores.size else np.array([], dtype=int)

    tps = np.cumsum(labels)[cut_points] if scores.size else np.array([], dtype=float)
    fps = np.cumsum(~labels)[cut_points] if scores.size else np.array([], dtype=float)

    tpr = np.concatenate([[0.0], tps / max(n_positive, 1)])
    fpr = np.concatenate([[0.0], fps / max(n_negative, 1)])
    thresholds = np.concatenate([[np.inf], scores[cut_points]]) if scores.size else np.array([np.inf])
    return fpr, tpr, thresholds


def auc_roc(weights, truth) -> float:
    """Area under the ROC curve of |W| scores against the true edge set.

    Returns 0.5 when the truth has no positive or no negative edges (the
    curve is degenerate and carries no ranking information).
    """
    scores, labels = _scores_and_labels(weights, truth)
    n_positive = int(labels.sum())
    n_negative = labels.size - n_positive
    if n_positive == 0 or n_negative == 0:
        return 0.5
    fpr, tpr, _ = roc_curve(weights, truth)
    return float(np.trapezoid(tpr, fpr))
