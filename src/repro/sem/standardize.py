"""Column-wise data preprocessing used before structure learning.

The paper mean-centres the MovieLens rating matrix per user and the gene
expression values per gene before feeding them to LEAST; these helpers provide
that preprocessing plus full standardization (zero mean, unit variance).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ensure_2d

__all__ = ["center_columns", "standardize_columns", "center_rows"]


def center_columns(data) -> np.ndarray:
    """Subtract the mean of each column; returns a new array."""
    array = ensure_2d(data, "data")
    return array - array.mean(axis=0, keepdims=True)


def center_rows(data) -> np.ndarray:
    """Subtract the mean of each row; returns a new array.

    This reproduces the per-user mean-centering applied to the MovieLens
    rating matrix in Section V-B of the paper.
    """
    array = ensure_2d(data, "data")
    return array - array.mean(axis=1, keepdims=True)


def standardize_columns(data, epsilon: float = 1e-12) -> np.ndarray:
    """Scale each column to zero mean and unit variance.

    Columns with (near-)zero variance are left centred but unscaled so that
    constant variables do not produce NaNs.
    """
    array = ensure_2d(data, "data")
    centered = array - array.mean(axis=0, keepdims=True)
    std = centered.std(axis=0, keepdims=True)
    safe_std = np.where(std < epsilon, 1.0, std)
    return centered / safe_std
