"""Linear structural equation model (LSEM) simulation.

Given a weighted DAG ``W`` (``W[i, j] != 0`` means ``i`` is a parent of ``j``),
each sample is generated in topological order as

    X_j = sum_i W[i, j] * X_i + n_j

with i.i.d. additive noise ``n_j`` drawn from one of the noise families in
:mod:`repro.sem.noise`.  This is the data-generating process used for every
artificial benchmark in the paper (Fig. 4) and for the synthetic gene and
recommendation datasets that substitute the proprietary ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NotADAGError, ValidationError
from repro.graph.adjacency import to_dense
from repro.graph.dag import is_dag, topological_sort
from repro.sem.noise import NoiseModel, make_noise_model
from repro.utils.random import RandomState, as_generator

__all__ = ["LinearSEM", "simulate_linear_sem"]


@dataclass
class LinearSEM:
    """A linear SEM defined by a weighted DAG and a noise model.

    Attributes
    ----------
    weights:
        ``d x d`` weighted adjacency matrix of a DAG.
    noise:
        The additive noise model shared by all variables.
    node_noise_scales:
        Optional per-node multipliers applied to the noise draws, allowing
        heteroscedastic variants.
    """

    weights: np.ndarray
    noise: NoiseModel = field(default_factory=lambda: make_noise_model("gaussian"))
    node_noise_scales: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.weights = to_dense(self.weights)
        if self.weights.ndim != 2 or self.weights.shape[0] != self.weights.shape[1]:
            raise ValidationError("weights must be a square matrix")
        if not is_dag(self.weights):
            raise NotADAGError("LinearSEM requires an acyclic weight matrix")
        if self.node_noise_scales is not None:
            scales = np.asarray(self.node_noise_scales, dtype=float)
            if scales.shape != (self.n_nodes,):
                raise ValidationError(
                    f"node_noise_scales must have shape ({self.n_nodes},), got {scales.shape}"
                )
            if np.any(scales <= 0):
                raise ValidationError("node_noise_scales must be strictly positive")
            self.node_noise_scales = scales

    @property
    def n_nodes(self) -> int:
        """Number of variables ``d``."""
        return self.weights.shape[0]

    def sample(self, n_samples: int, seed: RandomState = None) -> np.ndarray:
        """Draw ``n_samples`` i.i.d. observations, shape ``(n_samples, d)``."""
        if n_samples < 0:
            raise ValidationError(f"n_samples must be >= 0, got {n_samples}")
        rng = as_generator(seed)
        d = self.n_nodes
        data = np.zeros((n_samples, d))
        order = topological_sort(self.weights)
        for node in order:
            noise = self.noise.sample(n_samples, rng)
            if self.node_noise_scales is not None:
                noise = noise * self.node_noise_scales[node]
            parents = np.flatnonzero(self.weights[:, node])
            if parents.size:
                data[:, node] = data[:, parents] @ self.weights[parents, node] + noise
            else:
                data[:, node] = noise
        return data

    def noise_covariance(self) -> np.ndarray:
        """Diagonal covariance matrix of the noise vector."""
        base = self.noise.variance()
        scales = (
            np.ones(self.n_nodes)
            if self.node_noise_scales is None
            else self.node_noise_scales
        )
        return np.diag(base * scales**2)

    def implied_covariance(self) -> np.ndarray:
        """Covariance of X implied by the SEM: ``(I - W)^-T Σ_n (I - W)^-1``.

        With the convention ``X = W^T X + n`` (column ``j`` of W holds the
        parent weights of node ``j``), the data satisfies
        ``X = (I - W^T)^{-1} n``.
        """
        d = self.n_nodes
        inverse = np.linalg.inv(np.eye(d) - self.weights.T)
        return inverse @ self.noise_covariance() @ inverse.T


def simulate_linear_sem(
    weights,
    n_samples: int,
    noise_type: str = "gaussian",
    noise_scale: float = 1.0,
    seed: RandomState = None,
) -> np.ndarray:
    """Convenience wrapper: simulate LSEM data for a weighted DAG.

    Parameters
    ----------
    weights:
        ``d x d`` weighted adjacency matrix of a DAG (dense or sparse).
    n_samples:
        Number of observations to draw.
    noise_type:
        Noise family name: ``"gaussian"``, ``"exponential"``, ``"gumbel"``,
        ``"uniform"`` or ``"laplace"`` (paper aliases ``GS``/``EX``/``GB``
        accepted).
    noise_scale:
        Scale parameter passed to the noise model.
    seed:
        Seed or generator for reproducibility.

    Returns
    -------
    numpy.ndarray
        Sample matrix of shape ``(n_samples, d)``.
    """
    if sp.issparse(weights):
        weights = to_dense(weights)
    sem = LinearSEM(weights=np.asarray(weights, dtype=float), noise=make_noise_model(noise_type, noise_scale))
    return sem.sample(n_samples, seed=seed)
