"""Structural-equation-model substrate: noise models and LSEM data simulation."""

from repro.sem.linear_sem import LinearSEM, simulate_linear_sem
from repro.sem.noise import NOISE_TYPES, NoiseModel, make_noise_model
from repro.sem.standardize import center_columns, standardize_columns

__all__ = [
    "LinearSEM",
    "simulate_linear_sem",
    "NoiseModel",
    "make_noise_model",
    "NOISE_TYPES",
    "center_columns",
    "standardize_columns",
]
