"""Additive noise models for linear SEM simulation.

The paper generates benchmark data with three noise families: Gaussian (GS),
Exponential (EX), and Gumbel (GB).  Each noise model here draws i.i.d. samples
with a configurable scale; exponential and Gumbel draws are centred so that
every noise family has (approximately) zero mean, keeping the SEM equations
``X_i = w_i^T X + n_i`` unbiased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.random import RandomState, as_generator
from repro.utils.validation import check_positive

__all__ = ["NoiseModel", "make_noise_model", "NOISE_TYPES"]

#: Euler–Mascheroni constant, the mean of a standard Gumbel distribution.
_EULER_GAMMA = 0.5772156649015329

#: Canonical noise-type names accepted by :func:`make_noise_model`.
NOISE_TYPES: tuple[str, ...] = ("gaussian", "exponential", "gumbel", "uniform", "laplace")

#: Short aliases used in the paper's figures.
_ALIASES = {
    "gs": "gaussian",
    "normal": "gaussian",
    "ex": "exponential",
    "exp": "exponential",
    "gb": "gumbel",
    "unif": "uniform",
    "lap": "laplace",
}


@dataclass(frozen=True)
class NoiseModel:
    """A named zero-mean additive noise distribution with a given scale."""

    name: str
    scale: float
    _sampler: Callable[[np.random.Generator, int], np.ndarray]

    def sample(self, size: int, seed: RandomState = None) -> np.ndarray:
        """Draw ``size`` i.i.d. noise values."""
        if size < 0:
            raise ValidationError(f"size must be >= 0, got {size}")
        rng = as_generator(seed)
        return self._sampler(rng, size)

    def variance(self) -> float:
        """Theoretical variance of a single draw."""
        if self.name == "gaussian":
            return self.scale**2
        if self.name == "exponential":
            return self.scale**2
        if self.name == "gumbel":
            return (np.pi**2 / 6.0) * self.scale**2
        if self.name == "uniform":
            return (2.0 * self.scale) ** 2 / 12.0
        if self.name == "laplace":
            return 2.0 * self.scale**2
        raise ValidationError(f"unknown noise model {self.name!r}")


def make_noise_model(name: str, scale: float = 1.0) -> NoiseModel:
    """Create a :class:`NoiseModel` by name.

    Parameters
    ----------
    name:
        One of ``"gaussian"``, ``"exponential"``, ``"gumbel"``, ``"uniform"``,
        ``"laplace"`` (case-insensitive; the paper's abbreviations ``GS``,
        ``EX``, ``GB`` are accepted as aliases).
    scale:
        Scale parameter of the distribution (standard deviation for Gaussian,
        rate⁻¹ for exponential, scale for Gumbel/Laplace, half-width for
        uniform).
    """
    check_positive(scale, "scale")
    canonical = name.strip().lower()
    canonical = _ALIASES.get(canonical, canonical)
    if canonical not in NOISE_TYPES:
        raise ValidationError(
            f"unknown noise type {name!r}; expected one of {NOISE_TYPES} or an alias"
        )

    if canonical == "gaussian":
        def sampler(rng: np.random.Generator, size: int) -> np.ndarray:
            return rng.normal(0.0, scale, size=size)
    elif canonical == "exponential":
        def sampler(rng: np.random.Generator, size: int) -> np.ndarray:
            return rng.exponential(scale, size=size) - scale
    elif canonical == "gumbel":
        def sampler(rng: np.random.Generator, size: int) -> np.ndarray:
            return rng.gumbel(0.0, scale, size=size) - _EULER_GAMMA * scale
    elif canonical == "uniform":
        def sampler(rng: np.random.Generator, size: int) -> np.ndarray:
            return rng.uniform(-scale, scale, size=size)
    else:  # laplace
        def sampler(rng: np.random.Generator, size: int) -> np.ndarray:
            return rng.laplace(0.0, scale, size=size)

    return NoiseModel(name=canonical, scale=float(scale), _sampler=sampler)
