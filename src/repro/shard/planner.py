"""Block partitioning of one large structure-learning problem.

The paper scales LEAST to ~100k-node problems; past a few hundred nodes a
single monolithic solve is both slow (every inner step touches the full
``d × d`` candidate matrix) and inaccurate under a fixed iteration budget (the
budget is spread over ``d²`` parameters).  :class:`ShardPlanner` implements the
standard divide-and-conquer remedy: threshold the empirical correlation matrix
into an undirected *skeleton*, split its connected components into blocks of
bounded size, and attach a one-hop *halo* of skeleton neighbors to each block
so cross-boundary dependencies keep enough context to be learned by at least
one block.

The resulting :class:`ShardPlan` is pure data — blocks are tuples of global
column indices — and is consumed by
:class:`~repro.shard.executor.ShardExecutor` (one
:class:`~repro.serve.job.LearningJob` per block) and
:class:`~repro.shard.stitcher.Stitcher` (merging the per-block sub-graphs back
into one DAG over all ``d`` nodes).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.utils.validation import check_non_negative, check_positive, ensure_2d

__all__ = [
    "ShardBlock",
    "ShardPlan",
    "ShardPlanner",
    "correlation_skeleton",
    "sparse_correlation_skeleton",
]


def _correlation_strengths(data: np.ndarray) -> np.ndarray:
    """``d × d`` matrix of absolute pairwise correlations (NaNs become 0)."""
    with np.errstate(invalid="ignore", divide="ignore"):
        corr = np.corrcoef(data, rowvar=False)
    return np.abs(
        np.nan_to_num(np.atleast_2d(corr), nan=0.0, posinf=0.0, neginf=0.0)
    )


def _skeleton_from_strengths(strengths: np.ndarray, threshold: float) -> np.ndarray:
    """Threshold an absolute-correlation matrix into a boolean skeleton."""
    skeleton = strengths >= threshold
    skeleton &= skeleton.T  # enforce symmetry against float asymmetries
    np.fill_diagonal(skeleton, False)
    return skeleton


def correlation_skeleton(data: np.ndarray, threshold: float) -> np.ndarray:
    """Boolean undirected skeleton from thresholded absolute correlations.

    Parameters
    ----------
    data:
        ``n × d`` sample matrix.
    threshold:
        Pairs with ``|corr| >= threshold`` become skeleton edges.  Columns
        with zero variance (undefined correlation) are treated as isolated.

    Returns
    -------
    numpy.ndarray
        Symmetric boolean ``d × d`` matrix with a False diagonal.
    """
    data = ensure_2d(data, "data")
    check_non_negative(threshold, "threshold")
    d = data.shape[1]
    if data.shape[0] < 2:
        return np.zeros((d, d), dtype=bool)
    return _skeleton_from_strengths(_correlation_strengths(data), threshold)


def sparse_correlation_skeleton(
    data: np.ndarray, threshold: float, chunk_columns: int = 512
) -> sp.csr_matrix:
    """Thresholded absolute-correlation skeleton built without a dense ``d × d``.

    The chunked counterpart of :func:`correlation_skeleton` for very wide
    problems: correlations are computed ``chunk_columns`` rows at a time and
    each chunk is thresholded into CSR immediately, so peak memory is
    ``O(chunk_columns · d)`` instead of ``O(d²)``.  Stored values are the
    surviving ``|corr|`` strengths (usable for halo ranking); the stored
    pattern is the skeleton.

    Unlike the dense variant, pairs whose correlation is *exactly* zero never
    enter the skeleton even when ``threshold == 0`` — with a positive
    threshold (the only setting that makes sense at this scale) the two
    variants agree.

    Parameters
    ----------
    data:
        ``n × d`` sample matrix.
    threshold:
        Pairs with ``|corr| >= threshold`` become skeleton edges.
    chunk_columns:
        Rows of the correlation matrix computed per chunk.

    Returns
    -------
    scipy.sparse.csr_matrix
        Symmetric ``d × d`` CSR matrix of surviving correlation strengths
        with an empty diagonal.
    """
    data = ensure_2d(data, "data")
    check_non_negative(threshold, "threshold")
    check_positive(chunk_columns, "chunk_columns")
    d = data.shape[1]
    if data.shape[0] < 2:
        return sp.csr_matrix((d, d))
    as_float = np.asarray(data, dtype=float)
    centered = as_float - as_float.mean(axis=0, keepdims=True)
    norms = np.linalg.norm(centered, axis=0)
    norms[norms == 0] = np.inf  # zero-variance columns become isolated nodes
    z = centered / norms

    chunks: list[sp.csr_matrix] = []
    for start in range(0, d, int(chunk_columns)):
        stop = min(start + int(chunk_columns), d)
        corr = np.abs(z[:, start:stop].T @ z)  # (chunk, d) — the only big buffer
        np.nan_to_num(corr, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
        corr[np.arange(stop - start), np.arange(start, stop)] = 0.0
        corr[corr < max(threshold, np.finfo(float).tiny)] = 0.0
        chunks.append(sp.csr_matrix(corr))
    skeleton = sp.vstack(chunks, format="csr")
    # Symmetrize against float asymmetries so BFS components are well defined.
    return skeleton.maximum(skeleton.T).tocsr()


@dataclass(frozen=True)
class ShardBlock:
    """One block of a :class:`ShardPlan`.

    Attributes
    ----------
    index:
        Zero-based position of the block in the plan.
    core:
        Global column indices *owned* by this block.  The cores of a plan
        partition the node set: every node belongs to exactly one core.
    halo:
        Skeleton neighbors of the core borrowed from other blocks for
        context.  Halo nodes are solved inside this block too, but edges
        between two halo nodes are discarded at stitch time (their own block
        owns them).
    """

    index: int
    core: tuple[int, ...]
    halo: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.core:
            raise ValidationError("a shard block must own at least one node")
        if set(self.core) & set(self.halo):
            raise ValidationError("core and halo of a block must be disjoint")

    @property
    def nodes(self) -> tuple[int, ...]:
        """Core followed by halo: the global indices of the block's columns.

        The position of a global index in this tuple is its *local* index in
        the block's sample sub-matrix and learned sub-graph.
        """
        return self.core + self.halo

    @property
    def n_core(self) -> int:
        """Number of owned nodes."""
        return len(self.core)

    @property
    def n_halo(self) -> int:
        """Number of borrowed context nodes."""
        return len(self.halo)


@dataclass
class ShardPlan:
    """A complete block decomposition of one learning problem.

    Attributes
    ----------
    n_nodes:
        Total number of columns of the partitioned problem.
    blocks:
        The blocks, in index order.  Their cores partition ``range(n_nodes)``.
    n_skeleton_edges:
        Undirected edge count of the correlation skeleton the plan was built
        from.
    skeleton_threshold:
        The ``|corr|`` threshold that produced the skeleton.
    """

    n_nodes: int
    blocks: list[ShardBlock] = field(default_factory=list)
    n_skeleton_edges: int = 0
    skeleton_threshold: float = 0.0

    def __post_init__(self) -> None:
        for position, block in enumerate(self.blocks):
            if block.index != position:
                raise ValidationError(
                    f"block at position {position} has index {block.index}; "
                    "block indices must match their list positions (the "
                    "executor maps job ids back through them)"
                )
        owned: list[int] = [node for block in self.blocks for node in block.core]
        if sorted(owned) != list(range(self.n_nodes)):
            raise ValidationError(
                "block cores must partition the node set exactly: every node "
                "in exactly one core"
            )
        for block in self.blocks:
            for node in block.halo:
                if not 0 <= node < self.n_nodes:
                    raise ValidationError(f"halo node {node} out of range")

    @property
    def n_blocks(self) -> int:
        """Number of blocks in the plan."""
        return len(self.blocks)

    @property
    def is_monolithic(self) -> bool:
        """True when the plan degenerates to one block covering every node."""
        return self.n_blocks == 1

    def summary(self) -> dict[str, Any]:
        """JSON-able digest (the ``plan`` section of ``BENCH_shard.json``)."""
        core_sizes = [block.n_core for block in self.blocks]
        halo_sizes = [block.n_halo for block in self.blocks]
        return {
            "is_monolithic": self.is_monolithic,
            "max_block_size": max(core_sizes),
            "mean_block_size": float(np.mean(core_sizes)),
            "mean_halo_size": float(np.mean(halo_sizes)),
            "min_block_size": min(core_sizes),
            "n_blocks": self.n_blocks,
            "n_nodes": self.n_nodes,
            "n_skeleton_edges": self.n_skeleton_edges,
        }


def _neighbor_lists(skeleton) -> list[list[int]]:
    """Adjacency lists of a dense-bool or sparse skeleton.

    Delegates to the shared dense/sparse converter in :mod:`repro.graph.dag`
    so one implementation serves both the DAG utilities and the planner.
    """
    from repro.graph.dag import _adjacency_lists

    return _adjacency_lists(skeleton)


def _core_affinities(affinity, candidates: np.ndarray, core_idx: np.ndarray) -> np.ndarray:
    """Strongest affinity between each candidate and any core node.

    One vectorized ``affinity[candidates][:, core]`` submatrix max per call —
    the per-candidate fancy-index loop this replaces cost one sparse slice
    per halo candidate, which dominated planning time on wide blocks.
    """
    candidates = np.asarray(candidates, dtype=int)
    if candidates.size == 0 or core_idx.size == 0:
        return np.zeros(candidates.size)
    if sp.issparse(affinity):
        sub = affinity.tocsr()[candidates][:, core_idx]
        # Implicit zeros participate in the max exactly as in the dense path
        # (affinities are non-negative), matching the old per-entry .max().
        return np.asarray(sub.max(axis=1).todense()).ravel().astype(float)
    sub = np.asarray(affinity)[np.ix_(candidates, core_idx)]
    return sub.max(axis=1).astype(float)


def _connected_components(neighbors: Sequence[Sequence[int]]) -> list[list[int]]:
    """BFS connected components of the skeleton, each in BFS visit order."""
    d = len(neighbors)
    seen = np.zeros(d, dtype=bool)
    components: list[list[int]] = []
    for start in range(d):
        if seen[start]:
            continue
        seen[start] = True
        queue: deque[int] = deque([start])
        component = []
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbor in neighbors[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    queue.append(neighbor)
        components.append(component)
    return components


def _split_chunks(component: Sequence[int], max_size: int) -> list[list[int]]:
    """Split a BFS-ordered component into nearly equal chunks of <= max_size.

    Contiguous BFS ranges are used so each chunk stays a locally connected
    patch of the skeleton rather than a random node sample.
    """
    n = len(component)
    n_chunks = -(-n // max_size)  # ceil
    base, extra = divmod(n, n_chunks)
    chunks: list[list[int]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(list(component[start : start + size]))
        start += size
    return chunks


class ShardPlanner:
    """Plan a block decomposition from the correlation skeleton of the data.

    Parameters
    ----------
    skeleton_threshold:
        ``|corr|`` value above which two columns are considered skeleton
        neighbors.  Higher thresholds produce smaller, more numerous blocks.
    max_block_size:
        Upper bound on the number of *core* nodes per block; skeleton
        components larger than this are split along their BFS order.
    min_block_size:
        Components (or split chunks) smaller than this are packed together
        into shared blocks, so a sea of isolated nodes does not become a sea
        of single-node solver jobs.  ``1`` disables packing.
    halo_depth:
        How many skeleton hops around the core are included as halo context
        (``0`` disables halos entirely).
    max_halo_size:
        Optional cap on the halo size of each block; when the one-hop
        neighborhood is larger, the neighbors with the strongest correlation
        to the core are kept.  ``None`` keeps every halo candidate.
    dense_skeleton_limit:
        Problems wider than this many columns are planned through
        :func:`sparse_correlation_skeleton` (chunked, ``O(chunk · d)`` peak
        memory) instead of a dense ``d × d`` correlation matrix — the switch
        that keeps planning viable on the 100k-node regime.
    skeleton_chunk_columns:
        Chunk height of the sparse skeleton computation.
    partition_columns:
        Hierarchical ("shard the shards") mode: problems wider than this are
        first cut into contiguous column partitions of at most this many
        columns, and each partition is planned *independently* — its own
        skeleton, components, and halos.  No skeleton ever spans more than
        one partition, so peak planning memory is bounded by the partition
        width regardless of ``d``, and :meth:`iter_block_batches` can hand
        each partition's blocks to the executor while later partitions are
        still being planned.  Cross-partition skeleton edges are invisible
        at this stage — the executor's boundary re-solve rounds are the
        mechanism that recovers them.  ``None`` (default) disables
        partitioning.
    """

    def __init__(
        self,
        skeleton_threshold: float = 0.2,
        max_block_size: int = 64,
        min_block_size: int = 1,
        halo_depth: int = 1,
        max_halo_size: int | None = None,
        dense_skeleton_limit: int = 2048,
        skeleton_chunk_columns: int = 512,
        partition_columns: int | None = None,
    ) -> None:
        check_non_negative(skeleton_threshold, "skeleton_threshold")
        if max_block_size < 1:
            raise ValidationError(
                f"max_block_size must be >= 1, got {max_block_size}"
            )
        if min_block_size < 1:
            raise ValidationError(
                f"min_block_size must be >= 1, got {min_block_size}"
            )
        if min_block_size > max_block_size:
            raise ValidationError(
                "min_block_size must not exceed max_block_size, got "
                f"{min_block_size} > {max_block_size}"
            )
        if halo_depth < 0:
            raise ValidationError(f"halo_depth must be >= 0, got {halo_depth}")
        if max_halo_size is not None and max_halo_size < 0:
            raise ValidationError(
                f"max_halo_size must be >= 0, got {max_halo_size}"
            )
        check_positive(dense_skeleton_limit, "dense_skeleton_limit")
        check_positive(skeleton_chunk_columns, "skeleton_chunk_columns")
        if partition_columns is not None and partition_columns < max_block_size:
            raise ValidationError(
                "partition_columns must be >= max_block_size, got "
                f"{partition_columns} < {max_block_size}"
            )
        self.skeleton_threshold = float(skeleton_threshold)
        self.max_block_size = int(max_block_size)
        self.min_block_size = int(min_block_size)
        self.halo_depth = int(halo_depth)
        self.max_halo_size = max_halo_size
        self.dense_skeleton_limit = int(dense_skeleton_limit)
        self.skeleton_chunk_columns = int(skeleton_chunk_columns)
        self.partition_columns = (
            int(partition_columns) if partition_columns is not None else None
        )

    # -- public API ------------------------------------------------------------

    def iter_block_batches(
        self, data: np.ndarray, *, tracer=None
    ) -> "Iterator[tuple[list[ShardBlock], int]]":
        """Yield ``(blocks, n_skeleton_edges)`` one column partition at a time.

        This is the incremental face of hierarchical planning: with
        :attr:`partition_columns` set (and the problem wider than it), each
        contiguous partition is planned independently — skeleton,
        components, cores, halos — and its blocks are yielded with global
        column indices and globally sequential block indices *before* the
        next partition's skeleton is even computed.
        :meth:`ShardExecutor.run_stream <repro.shard.executor.ShardExecutor.run_stream>`
        consumes this generator to overlap planning with execution.  Without
        partitioning the whole plan arrives as a single batch.

        ``tracer`` wraps each partition's planning pass in its own
        ``shard_plan`` span (attribute ``partition`` carries the ordinal).
        """
        data = ensure_2d(data, "data")
        d = data.shape[1]
        if self.partition_columns is None or d <= self.partition_columns:
            plan = self._plan_global(data, tracer=tracer)
            yield plan.blocks, plan.n_skeleton_edges
            return
        sub_planner = ShardPlanner(
            skeleton_threshold=self.skeleton_threshold,
            max_block_size=self.max_block_size,
            min_block_size=self.min_block_size,
            halo_depth=self.halo_depth,
            max_halo_size=self.max_halo_size,
            dense_skeleton_limit=self.dense_skeleton_limit,
            skeleton_chunk_columns=self.skeleton_chunk_columns,
        )
        next_index = 0
        for ordinal, start in enumerate(range(0, d, self.partition_columns)):
            stop = min(start + self.partition_columns, d)
            sub = np.ascontiguousarray(data[:, start:stop])
            if tracer is not None:
                with tracer.span(
                    "shard_plan", n_nodes=stop - start, partition=ordinal
                ) as span:
                    subplan = sub_planner._plan_global(sub)
                    span.set_attributes(
                        n_blocks=subplan.n_blocks,
                        n_skeleton_edges=subplan.n_skeleton_edges,
                    )
            else:
                subplan = sub_planner._plan_global(sub)
            # Partitions are contiguous column ranges, so local index ->
            # global index is a plain offset; block indices continue the
            # global sequence so the assembled ShardPlan validates.
            mapped = [
                ShardBlock(
                    index=next_index + position,
                    core=tuple(start + node for node in block.core),
                    halo=tuple(start + node for node in block.halo),
                )
                for position, block in enumerate(subplan.blocks)
            ]
            next_index += len(mapped)
            yield mapped, subplan.n_skeleton_edges

    def plan(self, data: np.ndarray, *, tracer=None) -> ShardPlan:
        """Build a :class:`ShardPlan` for the ``n × d`` sample matrix.

        The pairwise correlations are computed once: the thresholded skeleton
        and the halo-ranking strengths are both derived from the same matrix
        (and the strengths are only kept when :attr:`max_halo_size` needs
        them for ranking).  Beyond :attr:`dense_skeleton_limit` columns the
        skeleton is built chunked into CSR — no dense ``d × d`` matrix is
        ever materialized on that path.  With :attr:`partition_columns` set
        and the problem wider than it, the plan is assembled hierarchically
        from :meth:`iter_block_batches` — one independent sub-plan per
        contiguous column partition.

        ``tracer`` (an optional :class:`~repro.obs.Tracer`) wraps the
        planning pass in a ``shard_plan`` span recording the node and block
        counts.
        """
        data = ensure_2d(data, "data")
        d = data.shape[1]
        if self.partition_columns is not None and d > self.partition_columns:
            blocks: list[ShardBlock] = []
            total_edges = 0
            for batch, n_edges in self.iter_block_batches(data, tracer=tracer):
                blocks.extend(batch)
                total_edges += n_edges
            return ShardPlan(
                n_nodes=d,
                blocks=blocks,
                n_skeleton_edges=total_edges,
                skeleton_threshold=self.skeleton_threshold,
            )
        return self._plan_global(data, tracer=tracer)

    def _plan_global(self, data: np.ndarray, *, tracer=None) -> ShardPlan:
        """Single-skeleton planning over all columns (the non-partitioned path)."""
        if tracer is not None:
            data = ensure_2d(data, "data")
            with tracer.span("shard_plan", n_nodes=int(data.shape[1])) as span:
                plan = self._plan_global(data)
                span.set_attributes(
                    n_blocks=plan.n_blocks,
                    n_skeleton_edges=plan.n_skeleton_edges,
                )
                return plan
        data = ensure_2d(data, "data")
        d = data.shape[1]
        if data.shape[0] < 2:
            # Empty skeleton — sized sparsely past the limit so a degenerate
            # window at 100k nodes does not allocate a dense d × d fallback.
            if d > self.dense_skeleton_limit:
                return self.plan_from_skeleton(sp.csr_matrix((d, d)))
            return self.plan_from_skeleton(np.zeros((d, d), dtype=bool))
        if d > self.dense_skeleton_limit:
            skeleton = sparse_correlation_skeleton(
                data, self.skeleton_threshold, self.skeleton_chunk_columns
            )
            strengths = skeleton if self.max_halo_size is not None else None
            return self.plan_from_skeleton(skeleton, strengths=strengths)
        strengths = _correlation_strengths(data)
        skeleton = _skeleton_from_strengths(strengths, self.skeleton_threshold)
        if self.max_halo_size is None:
            strengths = None  # never consulted: skip carrying the d×d matrix
        return self.plan_from_skeleton(skeleton, strengths=strengths)

    def plan_from_skeleton(self, skeleton, strengths=None) -> ShardPlan:
        """Build a plan from a precomputed skeleton matrix.

        Parameters
        ----------
        skeleton:
            Symmetric ``d × d`` adjacency of the undirected skeleton — a
            dense boolean ndarray or a scipy sparse matrix whose stored
            non-zeros are the skeleton edges.
        strengths:
            Optional ``d × d`` non-negative affinity matrix (dense or
            sparse) used to rank halo candidates when :attr:`max_halo_size`
            trims them; defaults to the skeleton itself (every neighbor
            equally strong).
        """
        if sp.issparse(skeleton):
            skeleton = skeleton.tocsr()
            if skeleton.shape[0] != skeleton.shape[1]:
                raise ValidationError("skeleton must be a square matrix")
            skeleton.eliminate_zeros()
            n_skeleton_edges = int(sp.triu(skeleton, k=1).nnz)
        else:
            skeleton = np.asarray(skeleton, dtype=bool)
            if skeleton.ndim != 2 or skeleton.shape[0] != skeleton.shape[1]:
                raise ValidationError("skeleton must be a square matrix")
            n_skeleton_edges = int(np.count_nonzero(np.triu(skeleton, k=1)))
        d = skeleton.shape[0]
        if d == 0:
            raise ValidationError("cannot plan over zero nodes")

        neighbors = _neighbor_lists(skeleton)
        cores = self._cores(neighbors)
        blocks = [
            ShardBlock(
                index=index,
                core=tuple(int(node) for node in core),
                halo=tuple(
                    int(node)
                    for node in self._halo(neighbors, skeleton, strengths, core)
                ),
            )
            for index, core in enumerate(cores)
        ]
        return ShardPlan(
            n_nodes=d,
            blocks=blocks,
            n_skeleton_edges=n_skeleton_edges,
            skeleton_threshold=self.skeleton_threshold,
        )

    # -- internals --------------------------------------------------------------

    def _cores(self, neighbors: Sequence[Sequence[int]]) -> list[list[int]]:
        """Partition the nodes into cores: split large components, pack small."""
        chunks: list[list[int]] = []
        for component in _connected_components(neighbors):
            if len(component) <= self.max_block_size:
                chunks.append(component)
            else:
                chunks.extend(_split_chunks(component, self.max_block_size))

        if self.min_block_size <= 1:
            return chunks

        # Greedily pack undersized chunks together (largest first) until each
        # pack reaches min_block_size, never exceeding max_block_size.
        small = sorted(
            (c for c in chunks if len(c) < self.min_block_size), key=len, reverse=True
        )
        cores = [c for c in chunks if len(c) >= self.min_block_size]
        pack: list[int] = []
        for chunk in small:
            if pack and len(pack) + len(chunk) > self.max_block_size:
                cores.append(pack)
                pack = []
            pack = pack + chunk
            if len(pack) >= self.min_block_size:
                cores.append(pack)
                pack = []
        if pack:
            cores.append(pack)
        return cores

    def _halo(
        self,
        neighbors: Sequence[Sequence[int]],
        skeleton,
        strengths,
        core: Sequence[int],
    ) -> list[int]:
        """Skeleton neighborhood of ``core`` up to ``halo_depth`` hops."""
        if self.halo_depth == 0 or (
            self.max_halo_size is not None and self.max_halo_size == 0
        ):
            return []
        core_set = set(core)
        frontier = set(core)
        halo: set[int] = set()
        for _ in range(self.halo_depth):
            reached: set[int] = set()
            for node in frontier:
                reached.update(neighbors[node])
            frontier = reached - core_set - halo
            if not frontier:
                break
            halo |= frontier
        candidates = sorted(halo)
        if self.max_halo_size is None or len(candidates) <= self.max_halo_size:
            return candidates
        affinity = strengths if strengths is not None else skeleton
        core_idx = np.asarray(sorted(core_set))
        scores = _core_affinities(affinity, np.asarray(candidates), core_idx)
        # Stable argsort on the negated scores reproduces the old stable
        # descending sort exactly: ties keep ascending candidate order.
        order = np.argsort(-scores, kind="stable")
        return sorted(candidates[i] for i in order[: self.max_halo_size])
