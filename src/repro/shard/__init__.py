"""repro.shard — block-partitioned structure learning on the serving engine.

The paper's headline claim is structure learning at ~100k-node scale; this
package is the divide-and-conquer layer that gets one huge problem there on
top of :mod:`repro.serve`:

* :mod:`repro.shard.planner` — :class:`ShardPlanner`: threshold the
  correlation skeleton of the data and partition the nodes into blocks of
  bounded size with one-hop halos for cross-boundary context; beyond
  ``dense_skeleton_limit`` columns the skeleton is built chunked into CSR
  (:func:`sparse_correlation_skeleton`), never materializing ``d × d``;
* :mod:`repro.shard.executor` — :class:`ShardExecutor`: materialize each
  block as an inline-data :class:`~repro.serve.job.LearningJob` and drive
  them through the streaming, preemptible engine (parallel workers, hard
  per-block deadlines, fail/requeue policy, caching); any registered
  backend drives the blocks — with ``solver="least_sparse"`` each block
  defaults to its per-block correlation support and results stay CSR;
* :mod:`repro.shard.stitcher` — :class:`Stitcher`: merge the surviving block
  sub-graphs into one global graph, deduplicating halo edges, resolving
  direction conflicts by weight, and greedily removing minimum-weight cycle
  edges so the output is **always a DAG**.  The merge is edge-sparse
  (``O(total edges)`` memory); sparse blocks stitch into a CSR result.

``benchmarks/bench_shard.py`` regenerates ``BENCH_shard.json`` from this
package (sharded vs monolithic on a 520-node, 8-component problem), and the
``repro-serve shard`` CLI subcommand runs a sharded solve from a sample
matrix on disk.  See ``docs/sharding.md`` for semantics and schemas.

Quickstart
----------
>>> import numpy as np
>>> from repro.shard import ShardExecutor, ShardPlanner, solve_sharded
>>> rng = np.random.default_rng(0)
>>> data = rng.normal(size=(200, 12))
>>> result = solve_sharded(
...     data,
...     planner=ShardPlanner(skeleton_threshold=0.3, max_block_size=6),
...     executor=ShardExecutor(config={"max_outer_iterations": 2,
...                                    "max_inner_iterations": 20}),
... )
>>> result.weights.shape
(12, 12)
"""

from repro.shard.executor import ShardExecutor, ShardResult, solve_sharded
from repro.shard.planner import (
    ShardBlock,
    ShardPlan,
    ShardPlanner,
    correlation_skeleton,
    sparse_correlation_skeleton,
)
from repro.shard.stitcher import StitchedGraph, Stitcher, StitchReport

__all__ = [
    "ShardBlock",
    "ShardPlan",
    "ShardPlanner",
    "correlation_skeleton",
    "sparse_correlation_skeleton",
    "Stitcher",
    "StitchReport",
    "StitchedGraph",
    "ShardExecutor",
    "ShardResult",
    "solve_sharded",
]
