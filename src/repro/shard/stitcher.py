"""Merging per-block sub-graphs back into one global DAG.

Each block of a :class:`~repro.shard.planner.ShardPlan` learns a weighted
graph over its own columns (core + halo).  :class:`Stitcher` maps those local
edges back to global indices and resolves the three ways independent block
solves can disagree:

1. **Duplicate edges** — an edge whose endpoints appear in two blocks (one
   block's core node is another's halo node) is learned twice; the heavier
   estimate (largest ``|weight|``) wins and the duplicate is counted in
   ``n_duplicate_edges``.
2. **Direction conflicts** — block A learns ``i -> j`` while block B learns
   ``j -> i``; the heavier direction wins and the pair is counted in
   ``n_direction_conflicts``.
3. **Cycles** — acyclicity is only enforced *within* each block, so the merged
   graph can contain cross-block cycles; they are broken greedily by removing
   the minimum-``|weight|`` edge of each remaining cycle until the graph is a
   DAG.  Removed edges are counted in ``n_cycle_edges_removed`` and their
   total magnitude in ``removed_weight``.

Edges between two *halo* nodes of the same block are discarded before
merging: both endpoints are owned by other blocks, which learn that
neighborhood with full context.

The output is always a DAG, whatever the inputs — the invariant the
property-based suite (``tests/test_shard_property.py``) hammers on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graph.adjacency import to_dense
from repro.graph.dag import find_cycle
from repro.shard.planner import ShardBlock

__all__ = ["StitchReport", "StitchedGraph", "Stitcher"]


@dataclass
class StitchReport:
    """Conflict accounting of one stitch pass.

    Attributes
    ----------
    n_blocks:
        Number of block sub-graphs that were merged.
    n_duplicate_edges:
        Directed edges learned by more than one block (each extra occurrence
        counts once).
    n_direction_conflicts:
        Node pairs learned with opposite directions by different blocks.
    n_cycle_edges_removed:
        Edges removed to break cross-block cycles.
    removed_weight:
        Total ``|weight|`` of the cycle-breaking removals.
    n_edges:
        Directed edge count of the final stitched DAG.
    """

    n_blocks: int = 0
    n_duplicate_edges: int = 0
    n_direction_conflicts: int = 0
    n_cycle_edges_removed: int = 0
    removed_weight: float = 0.0
    n_edges: int = 0

    def as_dict(self) -> dict[str, Any]:
        """JSON-able digest (the ``stitch`` section of ``BENCH_shard.json``)."""
        return {
            "n_blocks": self.n_blocks,
            "n_cycle_edges_removed": self.n_cycle_edges_removed,
            "n_direction_conflicts": self.n_direction_conflicts,
            "n_duplicate_edges": self.n_duplicate_edges,
            "n_edges": self.n_edges,
            "removed_weight": self.removed_weight,
        }


@dataclass
class StitchedGraph:
    """A stitched global graph plus its conflict accounting.

    Attributes
    ----------
    weights:
        ``d × d`` weighted adjacency matrix; always a DAG.
    report:
        The :class:`StitchReport` of the pass that produced it.
    """

    weights: np.ndarray
    report: StitchReport


class Stitcher:
    """Merge block sub-graphs into one global DAG (see module docstring).

    Parameters
    ----------
    drop_halo_halo_edges:
        When True (default) edges between two halo nodes of the same block
        are ignored — their owning blocks learn them with full context.
        Disable only for diagnostics.
    """

    def __init__(self, drop_halo_halo_edges: bool = True) -> None:
        self.drop_halo_halo_edges = drop_halo_halo_edges

    def stitch(
        self,
        block_graphs: Sequence[tuple[ShardBlock, np.ndarray | sp.spmatrix]],
        n_nodes: int,
    ) -> StitchedGraph:
        """Merge ``(block, local weights)`` pairs into a global DAG.

        Parameters
        ----------
        block_graphs:
            One entry per *surviving* block: the block and the weight matrix
            its solve produced, indexed by the block's local node order
            (:attr:`~repro.shard.planner.ShardBlock.nodes`).  Blocks whose
            jobs failed or were preempted are simply absent.
        n_nodes:
            Number of nodes of the global graph.

        Returns
        -------
        StitchedGraph
            The merged ``n_nodes × n_nodes`` weight matrix (always a DAG) and
            the conflict accounting that produced it.
        """
        if n_nodes < 1:
            raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
        report = StitchReport(n_blocks=len(block_graphs))
        merged = np.zeros((n_nodes, n_nodes))

        for block, local in block_graphs:
            nodes = np.asarray(block.nodes, dtype=int)
            local = to_dense(local)
            if local.shape != (len(nodes), len(nodes)):
                raise ValidationError(
                    f"block {block.index} weights have shape {local.shape}, "
                    f"expected {(len(nodes), len(nodes))}"
                )
            if np.any(nodes >= n_nodes) or np.any(nodes < 0):
                raise ValidationError(
                    f"block {block.index} references nodes outside "
                    f"range(0, {n_nodes})"
                )
            core = set(block.core)
            rows, cols = np.nonzero(local)
            for a, b in zip(rows, cols):
                i, j = int(nodes[a]), int(nodes[b])
                if i == j:
                    continue
                if (
                    self.drop_halo_halo_edges
                    and i not in core
                    and j not in core
                ):
                    continue
                weight = float(local[a, b])
                existing = merged[i, j]
                if existing != 0.0:
                    report.n_duplicate_edges += 1
                    if abs(weight) > abs(existing):
                        merged[i, j] = weight
                else:
                    merged[i, j] = weight

        self._resolve_direction_conflicts(merged, report)
        self._break_cycles(merged, report)
        report.n_edges = int(np.count_nonzero(merged))
        return StitchedGraph(weights=merged, report=report)

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _resolve_direction_conflicts(
        merged: np.ndarray, report: StitchReport
    ) -> None:
        """Keep the heavier direction of every i<->j pair (in place)."""
        forward = np.transpose(np.nonzero(np.triu(merged, k=1)))
        for i, j in forward:
            if merged[j, i] == 0.0:
                continue
            report.n_direction_conflicts += 1
            if abs(merged[i, j]) >= abs(merged[j, i]):
                merged[j, i] = 0.0
            else:
                merged[i, j] = 0.0

    @staticmethod
    def _break_cycles(merged: np.ndarray, report: StitchReport) -> None:
        """Remove the lightest edge of each remaining cycle until acyclic."""
        while (cycle := find_cycle(merged)) is not None:
            lightest: tuple[int, int] | None = None
            lightest_weight = np.inf
            for u, v in zip(cycle, cycle[1:]):
                weight = abs(merged[u, v])
                if weight < lightest_weight:
                    lightest_weight = weight
                    lightest = (u, v)
            assert lightest is not None  # a cycle always has edges
            merged[lightest] = 0.0
            report.n_cycle_edges_removed += 1
            report.removed_weight += float(lightest_weight)
