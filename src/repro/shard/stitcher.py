"""Merging per-block sub-graphs back into one global DAG.

Each block of a :class:`~repro.shard.planner.ShardPlan` learns a weighted
graph over its own columns (core + halo).  :class:`Stitcher` maps those local
edges back to global indices and resolves the three ways independent block
solves can disagree:

1. **Duplicate edges** — an edge whose endpoints appear in two blocks (one
   block's core node is another's halo node) is learned twice; the heavier
   estimate (largest ``|weight|``) wins and the duplicate is counted in
   ``n_duplicate_edges``.
2. **Direction conflicts** — block A learns ``i -> j`` while block B learns
   ``j -> i``; the heavier direction wins and the pair is counted in
   ``n_direction_conflicts``.
3. **Cycles** — acyclicity is only enforced *within* each block, so the merged
   graph can contain cross-block cycles; they are broken greedily by removing
   the minimum-``|weight|`` edge of each remaining cycle until the graph is a
   DAG.  Removed edges are counted in ``n_cycle_edges_removed`` and their
   total magnitude in ``removed_weight``.

Edges between two *halo* nodes of the same block are discarded before
merging: both endpoints are owned by other blocks, which learn that
neighborhood with full context.

The merge is **edge-sparse end to end**: block sub-graphs are consumed as
coordinate lists and accumulated in an edge map, so stitching never
materializes a dense ``n_nodes × n_nodes`` intermediate — the memory cost is
``O(total edges)``, which is what lets LEAST-SP block results at 100k-node
scale flow through unharmed.  The *output* representation follows the
inputs: if any surviving block produced sparse weights the stitched graph is
returned as CSR, otherwise as a dense ndarray (the historical behavior).

The output is always a DAG, whatever the inputs — the invariant the
property-based suite (``tests/test_shard_property.py``) hammers on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graph.dag import find_cycle_in_adjacency
from repro.shard.planner import ShardBlock

__all__ = ["StitchReport", "StitchedGraph", "Stitcher"]


@dataclass
class StitchReport:
    """Conflict accounting of one stitch pass.

    Attributes
    ----------
    n_blocks:
        Number of block sub-graphs that were merged.
    n_duplicate_edges:
        Directed edges learned by more than one block (each extra occurrence
        counts once).
    n_direction_conflicts:
        Node pairs learned with opposite directions by different blocks.
    n_cycle_edges_removed:
        Edges removed to break cross-block cycles.
    removed_weight:
        Total ``|weight|`` of the cycle-breaking removals.
    n_edges:
        Directed edge count of the final stitched DAG.
    """

    n_blocks: int = 0
    n_duplicate_edges: int = 0
    n_direction_conflicts: int = 0
    n_cycle_edges_removed: int = 0
    removed_weight: float = 0.0
    n_edges: int = 0

    def as_dict(self) -> dict[str, Any]:
        """JSON-able digest (the ``stitch`` section of ``BENCH_shard.json``)."""
        return {
            "n_blocks": self.n_blocks,
            "n_cycle_edges_removed": self.n_cycle_edges_removed,
            "n_direction_conflicts": self.n_direction_conflicts,
            "n_duplicate_edges": self.n_duplicate_edges,
            "n_edges": self.n_edges,
            "removed_weight": self.removed_weight,
        }


@dataclass
class StitchedGraph:
    """A stitched global graph plus its conflict accounting.

    Attributes
    ----------
    weights:
        ``d × d`` weighted adjacency matrix; always a DAG.  CSR when any
        merged block was sparse, dense ndarray otherwise.
    report:
        The :class:`StitchReport` of the pass that produced it.
    """

    weights: np.ndarray | sp.csr_matrix
    report: StitchReport


def _block_edges(
    local: np.ndarray | sp.spmatrix,
) -> Iterator[tuple[int, int, float]]:
    """Yield ``(local row, local col, weight)`` for every non-zero edge."""
    if sp.issparse(local):
        coo = local.tocoo()
        for a, b, weight in zip(coo.row, coo.col, coo.data):
            if weight != 0.0:
                yield int(a), int(b), float(weight)
    else:
        array = np.asarray(local, dtype=float)
        rows, cols = np.nonzero(array)
        for a, b in zip(rows, cols):
            yield int(a), int(b), float(array[a, b])


class Stitcher:
    """Merge block sub-graphs into one global DAG (see module docstring).

    Parameters
    ----------
    drop_halo_halo_edges:
        When True (default) edges between two halo nodes of the same block
        are ignored — their owning blocks learn them with full context.
        Disable only for diagnostics.
    """

    def __init__(self, drop_halo_halo_edges: bool = True) -> None:
        self.drop_halo_halo_edges = drop_halo_halo_edges

    def stitch(
        self,
        block_graphs: Sequence[tuple[ShardBlock, np.ndarray | sp.spmatrix]],
        n_nodes: int,
        tracer=None,
    ) -> StitchedGraph:
        """Merge ``(block, local weights)`` pairs into a global DAG.

        Parameters
        ----------
        block_graphs:
            One entry per *surviving* block: the block and the weight matrix
            its solve produced (dense or CSR), indexed by the block's local
            node order (:attr:`~repro.shard.planner.ShardBlock.nodes`).
            Blocks whose jobs failed or were preempted are simply absent.
        n_nodes:
            Number of nodes of the global graph.
        tracer:
            Optional :class:`~repro.obs.Tracer` — wraps the merge in a
            ``stitch`` span and folds the conflict counts into
            ``shard_conflicts_total{kind=duplicate|direction|cycle}``
            counters.

        Returns
        -------
        StitchedGraph
            The merged ``n_nodes × n_nodes`` weight matrix (always a DAG;
            CSR when any input block was sparse) and the conflict accounting
            that produced it.
        """
        if tracer is not None:
            with tracer.span(
                "stitch", n_blocks=len(block_graphs), n_nodes=int(n_nodes)
            ) as span:
                stitched = self.stitch(block_graphs, n_nodes)
                report = stitched.report
                span.set_attributes(
                    n_edges=report.n_edges,
                    n_duplicate_edges=report.n_duplicate_edges,
                    n_direction_conflicts=report.n_direction_conflicts,
                    n_cycle_edges_removed=report.n_cycle_edges_removed,
                )
                metrics = tracer.metrics
                metrics.counter("shard_conflicts_total", kind="duplicate").inc(
                    report.n_duplicate_edges
                )
                metrics.counter("shard_conflicts_total", kind="direction").inc(
                    report.n_direction_conflicts
                )
                metrics.counter("shard_conflicts_total", kind="cycle").inc(
                    report.n_cycle_edges_removed
                )
                return stitched
        if n_nodes < 1:
            raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
        report = StitchReport(n_blocks=len(block_graphs))
        edges: dict[tuple[int, int], float] = {}
        any_sparse = False

        for block, local in block_graphs:
            nodes = np.asarray(block.nodes, dtype=int)
            if not sp.issparse(local):
                local = np.asarray(local, dtype=float)  # accept array-likes
            if local.shape != (len(nodes), len(nodes)):
                raise ValidationError(
                    f"block {block.index} weights have shape {local.shape}, "
                    f"expected {(len(nodes), len(nodes))}"
                )
            if np.any(nodes >= n_nodes) or np.any(nodes < 0):
                raise ValidationError(
                    f"block {block.index} references nodes outside "
                    f"range(0, {n_nodes})"
                )
            if sp.issparse(local):
                any_sparse = True
            core = set(block.core)
            for a, b, weight in _block_edges(local):
                i, j = int(nodes[a]), int(nodes[b])
                if i == j:
                    continue
                if (
                    self.drop_halo_halo_edges
                    and i not in core
                    and j not in core
                ):
                    continue
                existing = edges.get((i, j))
                if existing is not None:
                    report.n_duplicate_edges += 1
                    if abs(weight) > abs(existing):
                        edges[i, j] = weight
                else:
                    edges[i, j] = weight

        self._resolve_direction_conflicts(edges, report)
        self._break_cycles(edges, n_nodes, report)
        report.n_edges = len(edges)
        return StitchedGraph(
            weights=self._materialize(edges, n_nodes, sparse=any_sparse),
            report=report,
        )

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _materialize(
        edges: dict[tuple[int, int], float], n_nodes: int, sparse: bool
    ) -> np.ndarray | sp.csr_matrix:
        """Turn the final edge map into the output matrix (CSR or dense)."""
        if sparse:
            if not edges:
                return sp.csr_matrix((n_nodes, n_nodes))
            rows, cols = zip(*edges)
            return sp.csr_matrix(
                (list(edges.values()), (rows, cols)), shape=(n_nodes, n_nodes)
            )
        merged = np.zeros((n_nodes, n_nodes))
        for (i, j), weight in edges.items():
            merged[i, j] = weight
        return merged

    @staticmethod
    def _resolve_direction_conflicts(
        edges: dict[tuple[int, int], float], report: StitchReport
    ) -> None:
        """Keep the heavier direction of every i<->j pair (in place)."""
        for i, j in sorted(key for key in edges if key[0] < key[1]):
            reverse = edges.get((j, i))
            if reverse is None:
                continue
            report.n_direction_conflicts += 1
            if abs(edges[i, j]) >= abs(reverse):
                del edges[j, i]
            else:
                del edges[i, j]

    @classmethod
    def _break_cycles(
        cls,
        edges: dict[tuple[int, int], float],
        n_nodes: int,
        report: StitchReport,
    ) -> None:
        """Remove the lightest edge of each remaining cycle until acyclic.

        The sorted adjacency lists are built **once** and updated in place as
        edges are removed — removing an element from a sorted list keeps it
        sorted, so every :func:`repro.graph.dag.find_cycle_in_adjacency`
        traversal (and therefore which cycle is broken next) is identical to
        the historical rebuild-per-iteration behavior while the per-cycle
        cost drops from O(E) rebuild to O(degree) removal.
        """
        adjacency: list[list[int]] = [[] for _ in range(n_nodes)]
        for i, j in edges:
            adjacency[i].append(j)
        for children in adjacency:
            children.sort()
        while (cycle := find_cycle_in_adjacency(adjacency)) is not None:
            lightest: tuple[int, int] | None = None
            lightest_weight = np.inf
            for u, v in zip(cycle, cycle[1:]):
                weight = abs(edges[u, v])
                if weight < lightest_weight:
                    lightest_weight = weight
                    lightest = (u, v)
            assert lightest is not None  # a cycle always has edges
            del edges[lightest]
            adjacency[lightest[0]].remove(lightest[1])
            report.n_cycle_edges_removed += 1
            report.removed_weight += float(lightest_weight)
