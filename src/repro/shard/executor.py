"""Executing a shard plan on the streaming serving engine.

:class:`ShardExecutor` materializes the blocks of a
:class:`~repro.shard.planner.ShardPlan` as inline-data
:class:`~repro.serve.job.LearningJob` records and drives them through
:class:`~repro.serve.streaming.StreamingRunner` — inheriting the engine's
parallel workers, hard per-block deadlines (SIGKILL + suicide timers), the
fail/requeue preemption policy, and result caching.  Block results are
consumed as they stream in; once the stream drains, the surviving sub-graphs
are merged by :class:`~repro.shard.stitcher.Stitcher` into one global DAG.

Three mechanisms push the sharded path toward very wide problems:

* **Wave scheduling** (:attr:`ShardExecutor.wave_blocks`): consecutive blocks
  are shipped as one *wave* job — their column sets stacked side by side in a
  single data matrix, unpacked and solved member-by-member inside the worker
  (:func:`repro.serve.job.execute_job`).  One dispatch, one pickling round
  trip, and one cache entry amortize over the whole wave, which is what makes
  tens of thousands of tiny blocks affordable.
* **Overlapped plan/execute** (:meth:`ShardExecutor.run_stream`): with a
  hierarchical planner (:attr:`~repro.shard.planner.ShardPlanner.partition_columns`)
  the executor opens a :class:`~repro.serve.streaming.StreamSession` and
  submits each partition's waves the moment that partition is planned, so
  block solves run while later partitions are still being planned — and no
  single global skeleton ever has to exist in memory.
* **Boundary re-solve** (:attr:`ShardExecutor.boundary_rounds`): after the
  first stitch, the nodes around block boundaries (owned nodes of failed
  blocks plus every halo node) are re-planned over a *fresh* skeleton — one
  that may connect nodes from different partitions — warm-started from the
  stitched graph, solved, and stitched in with everything else.  Each round
  recovers cross-partition edges the partitioned first pass could not see.

Failure containment is the point of running blocks as independent jobs: a
block whose worker crashes or blows its deadline costs exactly that block —
or, for a hard-killed wave, exactly that wave — and the stitcher assembles a
DAG from the survivors while the gap (which blocks and which owned nodes are
missing) is recorded in the :class:`ShardResult` report instead of poisoning
the whole solve.
"""

from __future__ import annotations

import contextlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.backend import get_spec
from repro.core.thresholding import threshold_weights
from repro.exceptions import ValidationError
from repro.serve.cache import ResultCache
from repro.serve.job import JobResult, LearningJob
from repro.serve.streaming import StreamingRunner
from repro.shard.planner import ShardBlock, ShardPlan, ShardPlanner
from repro.shard.stitcher import StitchedGraph, Stitcher
from repro.utils.timer import Timer
from repro.utils.validation import check_non_negative, ensure_2d

__all__ = [
    "MISSING_NODES_REPORT_CAP",
    "ShardResult",
    "ShardExecutor",
    "solve_sharded",
]

#: Upper bound on the ``missing_nodes`` list embedded in a report.  At the
#: 100k-node regime a bad pass can lose tens of thousands of nodes; the JSON
#: report keeps an exact count plus a bounded prefix instead of the full list.
MISSING_NODES_REPORT_CAP = 200


@dataclass
class ShardResult:
    """Outcome of one sharded solve.

    Attributes
    ----------
    weights:
        The stitched global ``d × d`` weight matrix — always a DAG, built
        from the blocks that completed.  CSR when the blocks were solved by
        a sparse backend (the sharded path never densifies sparse results),
        dense ndarray otherwise.
    plan:
        The executed :class:`~repro.shard.planner.ShardPlan`.
    stitched:
        The :class:`~repro.shard.stitcher.StitchedGraph` carrying the
        conflict-accounting report (the *final* stitch when boundary
        re-solve rounds ran).
    block_results:
        One :class:`~repro.serve.job.JobResult` per block of the plan, in
        block order.  For wave-scheduled passes these are the unpacked
        member results; a wave that died before delivering anything yields
        one synthesized result per member block carrying the wave's status.
    missing_nodes:
        Global indices owned by blocks that did not produce a usable
        sub-graph (failed, preempted, or anomalously weight-less) and that
        no boundary re-solve round recovered; their outgoing/incoming edges
        may be absent from :attr:`weights`.
    total_seconds:
        Wall-clock duration of the execute-and-stitch pass (including any
        boundary re-solve rounds).
    preemption:
        The streaming engine's preemption counters, accumulated over the
        first pass and every re-solve round
        (``n_killed`` / ``n_suicide_exits`` / ``n_requeued``).
    anomalies:
        Map from block job id to a description of a contract violation —
        currently the one observable from outside a worker: a result whose
        ``status`` is ``"ok"`` but whose weights are missing.  Anomalous
        blocks are treated as gaps (their owned nodes count as missing).
    n_waves:
        Wave jobs dispatched across the whole solve (0 when wave scheduling
        is off).
    rounds:
        One JSON-able record per executed boundary re-solve round (counters
        plus per-block digests).
    initial_weights:
        The stitched weights of the first pass, before any boundary
        re-solve round touched them (``None`` when no rounds ran) — kept so
        callers can measure what the rounds changed.
    """

    weights: np.ndarray | sp.csr_matrix
    plan: ShardPlan
    stitched: StitchedGraph
    block_results: list[JobResult] = field(default_factory=list)
    missing_nodes: list[int] = field(default_factory=list)
    total_seconds: float = 0.0
    preemption: dict[str, float] = field(default_factory=dict)
    anomalies: dict[str, str] = field(default_factory=dict)
    n_waves: int = 0
    rounds: list[dict[str, Any]] = field(default_factory=list)
    initial_weights: np.ndarray | sp.csr_matrix | None = None

    @property
    def n_blocks_ok(self) -> int:
        """Blocks that solved successfully."""
        return sum(1 for r in self.block_results if r.status == "ok")

    @property
    def n_blocks_failed(self) -> int:
        """Blocks that failed (dataset/solver error or worker crash)."""
        return sum(1 for r in self.block_results if r.status == "failed")

    @property
    def n_blocks_preempted(self) -> int:
        """Blocks killed at their deadline (after any requeue attempts)."""
        return sum(1 for r in self.block_results if r.status == "preempted")

    @property
    def complete(self) -> bool:
        """True when every owned node is covered by a usable block solve.

        Coverage counts both the first pass and boundary re-solve rounds: a
        node owned by a failed block that a later round re-solved is not
        missing.  A block that claimed ``"ok"`` without returning weights
        does *not* cover its nodes (see :attr:`anomalies`).
        """
        return not self.missing_nodes

    def report(self) -> dict[str, Any]:
        """JSON-able run report: plan and stitch digests plus the gap record.

        The ``gaps`` block is how a degraded solve is surfaced: which blocks
        did not complete, why, and which owned nodes the stitched graph is
        therefore missing context for.  ``n_missing_nodes`` is always the
        exact count; the embedded ``missing_nodes`` list is truncated to the
        first :data:`MISSING_NODES_REPORT_CAP` entries (flagged by
        ``missing_nodes_truncated``) so a catastrophic pass cannot bloat the
        report.
        """
        return {
            "plan": self.plan.summary(),
            "stitch": self.stitched.report.as_dict(),
            "blocks": [
                {
                    "job_id": r.job_id,
                    "status": r.status,
                    "n_edges": r.n_edges,
                    "elapsed_seconds": r.elapsed_seconds,
                    "attempts": r.attempts,
                    "error": r.error,
                    "anomaly": self.anomalies.get(r.job_id),
                }
                for r in self.block_results
            ],
            "gaps": {
                "n_blocks_ok": self.n_blocks_ok,
                "n_blocks_failed": self.n_blocks_failed,
                "n_blocks_preempted": self.n_blocks_preempted,
                "n_anomalies": len(self.anomalies),
                "n_missing_nodes": len(self.missing_nodes),
                "missing_nodes": list(
                    self.missing_nodes[:MISSING_NODES_REPORT_CAP]
                ),
                "missing_nodes_truncated": (
                    len(self.missing_nodes) > MISSING_NODES_REPORT_CAP
                ),
            },
            "waves": {"n_waves": self.n_waves},
            "resolve": {
                "n_rounds": len(self.rounds),
                "rounds": [dict(entry) for entry in self.rounds],
            },
            "total_seconds": self.total_seconds,
            "preemption": dict(self.preemption),
        }


def _block_digest(result: JobResult, anomaly: str | None) -> dict[str, Any]:
    """Small JSON-able record of one block outcome (round reports)."""
    return {
        "job_id": result.job_id,
        "status": result.status,
        "n_edges": result.n_edges,
        "attempts": result.attempts,
        "error": result.error,
        "anomaly": anomaly,
    }


def _edge_count(weights: np.ndarray | sp.spmatrix) -> int:
    """Non-zero entries of a stitched weight matrix (dense or CSR)."""
    if sp.issparse(weights):
        return int(weights.nnz)
    return int(np.count_nonzero(weights))


class ShardExecutor:
    """Solve every block of a plan as a streamed job and stitch the results.

    Parameters
    ----------
    solver:
        Registered solver name used for every block job — any name in
        :func:`repro.serve.job.solver_names`.  With ``"least_sparse"`` the
        whole path stays CSR: each block job defaults to the per-block
        correlation support (``support="correlation"`` is injected into the
        block config unless the caller set one), block results are
        thresholded in sparse form, and the stitched graph is returned as
        CSR — no step materializes a dense ``d × d`` matrix.
    config:
        JSON-able keyword arguments for the solver's config class, shared by
        all blocks.
    n_workers:
        Concurrent worker processes of the underlying
        :class:`~repro.serve.streaming.StreamingRunner`.
    timeout:
        Hard per-job deadline in seconds (``None`` disables preemption).
        With wave scheduling the deadline covers the *whole wave*.
    preempt_policy, preempt_retries:
        Forwarded to the streaming engine: what happens to a job killed at
        its deadline (``"fail"`` or ``"requeue"`` with fresh attempts).
    max_retries:
        Extra in-worker attempts for failing block solves (per wave member
        when wave scheduling is on).
    cache:
        Optional :class:`~repro.serve.cache.ResultCache` shared across runs —
        re-solving an unchanged block (or wave) becomes a cache hit.
    edge_threshold:
        Entries with ``|weight|`` below this are dropped from each block's
        sub-graph *before* stitching, so conflict accounting operates on the
        edges that would survive anyway.
    stitcher:
        The :class:`~repro.shard.stitcher.Stitcher` to merge with (a default
        one is built when omitted).
    soft_timeout:
        Optional cooperative per-job deadline (seconds, ≤ ``timeout``):
        block solvers are asked to stop at an outer-iteration boundary before
        the hard SIGKILL tier fires.  Inside a wave, a soft stop preempts the
        interrupted member and every not-yet-started member while keeping
        the finished parts.
    max_jobs_per_worker:
        Recycle a pool worker after this many jobs (``None`` keeps workers
        for the whole pass).
    wave_blocks:
        Wave scheduling: ship this many consecutive blocks per
        :class:`~repro.serve.job.LearningJob` (``None`` or ``1`` keeps the
        one-job-per-block layout).  The members are unpacked and solved
        independently inside the worker; a hard-killed wave loses exactly
        its own members.
    boundary_rounds:
        Boundary re-solve: after the first stitch, run this many extra
        rounds that re-plan the boundary node set (owned nodes of
        unfinished blocks plus every halo node) over a fresh skeleton,
        warm-start those blocks from the stitched graph, and re-stitch.
        ``0`` (default) disables the mechanism.
    tracer:
        Optional :class:`~repro.obs.Tracer`.  :meth:`run` then executes
        inside a ``shard_solve`` span — block job spans (from the streaming
        engine) and the ``stitch`` span nest under it — and per-status block
        counters land in ``tracer.metrics``.
    """

    def __init__(
        self,
        solver: str = "least",
        config: dict[str, Any] | None = None,
        n_workers: int = 1,
        timeout: float | None = None,
        preempt_policy: str = "fail",
        preempt_retries: int = 1,
        max_retries: int = 0,
        cache: ResultCache | None = None,
        edge_threshold: float = 0.0,
        stitcher: Stitcher | None = None,
        soft_timeout: float | None = None,
        max_jobs_per_worker: int | None = None,
        wave_blocks: int | None = None,
        boundary_rounds: int = 0,
        tracer=None,
    ) -> None:
        check_non_negative(edge_threshold, "edge_threshold")
        if wave_blocks is not None and wave_blocks < 1:
            raise ValidationError(
                f"wave_blocks must be >= 1, got {wave_blocks}"
            )
        if boundary_rounds < 0:
            raise ValidationError(
                f"boundary_rounds must be >= 0, got {boundary_rounds}"
            )
        self.solver = solver
        self.config = dict(config or {})
        get_spec(solver)  # validates the name against the live registry
        if solver == "least_sparse":
            # Blocks are small (≤ max_block_size + halo), so the correlation
            # screen is cheap there and recovers real edges far better than a
            # random support — callers can still override via config.
            self.config.setdefault("support", "correlation")
        self.n_workers = n_workers
        self.timeout = timeout
        self.preempt_policy = preempt_policy
        self.preempt_retries = preempt_retries
        self.max_retries = max_retries
        self.cache = cache
        self.edge_threshold = edge_threshold
        self.stitcher = stitcher or Stitcher()
        self.soft_timeout = soft_timeout
        self.max_jobs_per_worker = max_jobs_per_worker
        self.wave_blocks = int(wave_blocks) if wave_blocks is not None else None
        self.boundary_rounds = int(boundary_rounds)
        self.tracer = tracer

    # -- job construction ------------------------------------------------------

    def build_jobs(
        self, data: np.ndarray, plan: ShardPlan, seed: int | None = 0
    ) -> list[LearningJob]:
        """Materialize the jobs of ``plan`` (one per block, or one per wave).

        Block ``k`` keeps ``job_id="block-kkk"`` and seed ``seed + k`` so
        block solves stay individually reproducible yet mutually
        decorrelated; with :attr:`wave_blocks` set the blocks ride as wave
        members under ``job_id="wave-kkk"`` (``k`` = first member's index)
        and carry the same per-member ids and seeds in the wave manifest.
        """
        data = ensure_2d(data, "data")
        if data.shape[1] != plan.n_nodes:
            raise ValidationError(
                f"data has {data.shape[1]} columns but the plan covers "
                f"{plan.n_nodes} nodes"
            )
        jobs, _ = self._build_block_jobs(data, plan.blocks, seed)
        return jobs

    def _build_block_jobs(
        self,
        data: np.ndarray,
        blocks: Sequence[ShardBlock],
        seed: int | None,
        id_prefix: str = "",
        warm_starts: dict[int, np.ndarray | sp.spmatrix] | None = None,
    ) -> tuple[list[LearningJob], dict[str, list[tuple[ShardBlock, str]]]]:
        """Build the jobs for ``blocks`` plus the job-id → members routing map.

        The map sends each job id to its ``(block, member_job_id)`` pairs in
        wave order — a per-block job maps to itself — which is everything
        :meth:`_consume` needs to route streamed results (including
        synthesized outcomes for waves that died wholesale) back to blocks.
        """
        jobs: list[LearningJob] = []
        members: dict[str, list[tuple[ShardBlock, str]]] = {}
        wave = self.wave_blocks if self.wave_blocks and self.wave_blocks > 1 else None
        if wave is None:
            for block in blocks:
                job_id = f"{id_prefix}block-{block.index:03d}"
                columns = np.asarray(block.nodes, dtype=int)
                jobs.append(
                    LearningJob(
                        solver=self.solver,
                        data=np.ascontiguousarray(data[:, columns]),
                        config=dict(self.config),
                        seed=None if seed is None else seed + block.index,
                        init_weights=(
                            None
                            if warm_starts is None
                            else warm_starts.get(block.index)
                        ),
                        job_id=job_id,
                    )
                )
                members[job_id] = [(block, job_id)]
            return jobs, members
        blocks = list(blocks)
        for start in range(0, len(blocks), wave):
            group = blocks[start : start + wave]
            job_id = f"{id_prefix}wave-{group[0].index:03d}"
            entries = []
            segments = []
            routing = []
            for block in group:
                member_id = f"{id_prefix}block-{block.index:03d}"
                entry: dict[str, Any] = {
                    "job_id": member_id,
                    "n_columns": len(block.nodes),
                }
                if seed is not None:
                    entry["seed"] = seed + block.index
                entries.append(entry)
                segments.append(data[:, np.asarray(block.nodes, dtype=int)])
                routing.append((block, member_id))
            jobs.append(
                LearningJob(
                    solver=self.solver,
                    data=np.ascontiguousarray(np.concatenate(segments, axis=1)),
                    config=dict(self.config),
                    seed=seed,
                    init_weights=self._stack_inits(group, warm_starts),
                    job_id=job_id,
                    wave=entries,
                )
            )
            members[job_id] = routing
        return jobs, members

    def _stack_inits(
        self,
        group: Sequence[ShardBlock],
        warm_starts: dict[int, np.ndarray | sp.spmatrix] | None,
    ) -> np.ndarray | sp.spmatrix | None:
        """Block-diagonal stacked warm start of one wave (``None`` when cold)."""
        if warm_starts is None:
            return None
        inits = [warm_starts.get(block.index) for block in group]
        if all(init is None for init in inits):
            return None
        widths = [len(block.nodes) for block in group]
        any_sparse = any(sp.issparse(init) for init in inits)
        filled = [
            init
            if init is not None
            else (
                sp.csr_matrix((width, width))
                if any_sparse
                else np.zeros((width, width))
            )
            for init, width in zip(inits, widths)
        ]
        if any_sparse:
            return sp.block_diag(
                [sp.csr_matrix(init) for init in filled], format="csr"
            )
        total = sum(widths)
        stacked = np.zeros((total, total))
        offset = 0
        for init, width in zip(filled, widths):
            stacked[offset : offset + width, offset : offset + width] = np.asarray(
                init, dtype=float
            )
            offset += width
        return stacked

    # -- result consumption ----------------------------------------------------

    def _consume(
        self,
        result: JobResult,
        members: dict[str, list[tuple[ShardBlock, str]]],
        outcomes: dict[int, JobResult],
        survivors: list[tuple[ShardBlock, np.ndarray | sp.spmatrix]],
        anomalies: dict[str, str],
    ) -> None:
        """Route one streamed result back to its block(s).

        Wave results are unpacked into their member parts; a wave that died
        without delivering parts (hard preemption, worker crash) synthesizes
        one outcome per member carrying the wave-level status, so the loss
        is exactly that wave.  A part that claims ``"ok"`` without weights
        violates the result contract: it is recorded as an anomaly and its
        block is *not* a survivor — its owned nodes count as missing.
        """
        routing = members[result.job_id]
        if result.parts is not None:
            parts: Iterable[JobResult] = result.parts
        elif len(routing) == 1 and routing[0][1] == result.job_id:
            parts = [result]
        else:
            parts = [
                JobResult(
                    job_id=member_id,
                    solver=result.solver,
                    status=result.status,
                    attempts=result.attempts,
                    cache_hit=result.cache_hit,
                    error=result.error,
                )
                for _, member_id in routing
            ]
        for (block, member_id), part in zip(routing, parts):
            outcomes[block.index] = part
            if self.tracer is not None:
                self.tracer.metrics.counter(
                    "shard_blocks_total", status=part.status
                ).inc()
            if part.status != "ok":
                continue
            if part.weights is None:
                anomalies[member_id] = (
                    "result claimed status 'ok' but carried no weights; "
                    "treating the block's owned nodes as missing"
                )
                continue
            # Keep each block's native representation: CSR block results are
            # thresholded on their data vector and handed to the stitcher
            # still sparse.
            local = part.weights
            if not sp.issparse(local):
                local = np.asarray(local, dtype=float)
            if self.edge_threshold > 0.0:
                local = threshold_weights(local, self.edge_threshold)
            survivors.append((block, local))

    # -- execution -------------------------------------------------------------

    def _make_runner(self) -> StreamingRunner:
        return StreamingRunner(
            n_workers=self.n_workers,
            cache=self.cache,
            timeout=self.timeout,
            max_retries=self.max_retries,
            preempt_policy=self.preempt_policy,
            preempt_retries=self.preempt_retries,
            tracer=self.tracer,
            soft_timeout=self.soft_timeout,
            max_jobs_per_worker=self.max_jobs_per_worker,
        )

    @staticmethod
    def _accumulate(totals: dict[str, float], summary: dict[str, float]) -> None:
        for key, value in summary.items():
            totals[key] = totals.get(key, 0.0) + value

    def run(
        self,
        data: np.ndarray,
        plan: ShardPlan,
        seed: int | None = 0,
        planner: ShardPlanner | None = None,
    ) -> ShardResult:
        """Execute the plan on the streaming engine and stitch the survivors.

        Results are consumed in completion order as the engine yields them;
        preempted or failed blocks (or whole waves) become gaps in the
        :class:`ShardResult` rather than errors.  With
        :attr:`boundary_rounds` set, the gaps-and-halos boundary is
        re-planned and re-solved after the first stitch (``planner``
        supplies the re-plan settings; a default-configured planner at the
        plan's skeleton threshold is used when omitted).
        """
        data = ensure_2d(data, "data")
        if data.shape[1] != plan.n_nodes:
            raise ValidationError(
                f"data has {data.shape[1]} columns but the plan covers "
                f"{plan.n_nodes} nodes"
            )
        timer = Timer()
        with contextlib.ExitStack() as stack:
            stack.enter_context(timer)
            shard_span = None
            if self.tracer is not None:
                # Entering the span makes it the ambient parent, so the block
                # job spans of the streaming engine nest under it.
                shard_span = stack.enter_context(
                    self.tracer.span(
                        "shard_solve",
                        solver=self.solver,
                        n_blocks=plan.n_blocks,
                        n_nodes=plan.n_nodes,
                    )
                )
            jobs, members = self._build_block_jobs(data, plan.blocks, seed)
            n_waves = sum(1 for job in jobs if job.wave is not None)
            outcomes: dict[int, JobResult] = {}
            survivors: list[tuple[ShardBlock, np.ndarray | sp.spmatrix]] = []
            anomalies: dict[str, str] = {}
            preemption: dict[str, float] = {}
            runner = self._make_runner()
            for result in runner.stream(jobs):
                self._consume(result, members, outcomes, survivors, anomalies)
            self._accumulate(preemption, runner.telemetry.preemption_summary())
            result = self._finish(
                data=data,
                plan=plan,
                planner=planner,
                seed=seed,
                outcomes=outcomes,
                survivors=survivors,
                anomalies=anomalies,
                n_waves=n_waves,
                preemption=preemption,
                shard_span=shard_span,
                timer=timer,
            )
        result.total_seconds = timer.elapsed
        return result

    def run_stream(
        self,
        data: np.ndarray,
        planner: ShardPlanner,
        seed: int | None = 0,
    ) -> ShardResult:
        """Overlap hierarchical planning with execution on one stream session.

        Each batch from
        :meth:`~repro.shard.planner.ShardPlanner.iter_block_batches` is
        turned into (wave) jobs and submitted the moment it exists, so block
        solves for partition ``k`` run while partition ``k+1`` is still
        being planned.  Between batches the session is polled without
        blocking; once planning is exhausted the remaining jobs drain as in
        :meth:`run`.  The assembled plan, the stitch, the gap accounting,
        and any boundary re-solve rounds are identical to the plan-first
        path.
        """
        data = ensure_2d(data, "data")
        timer = Timer()
        with contextlib.ExitStack() as stack:
            stack.enter_context(timer)
            shard_span = None
            if self.tracer is not None:
                shard_span = stack.enter_context(
                    self.tracer.span(
                        "shard_solve",
                        solver=self.solver,
                        n_nodes=int(data.shape[1]),
                        overlapped=True,
                    )
                )
            blocks: list[ShardBlock] = []
            total_edges = 0
            outcomes: dict[int, JobResult] = {}
            survivors: list[tuple[ShardBlock, np.ndarray | sp.spmatrix]] = []
            anomalies: dict[str, str] = {}
            members: dict[str, list[tuple[ShardBlock, str]]] = {}
            preemption: dict[str, float] = {}
            n_waves = 0
            runner = self._make_runner()
            session = runner.open_session()
            pending: deque[LearningJob] = deque()

            def pump(drain: bool) -> None:
                """Submit while there is capacity; collect finished results."""
                while True:
                    while pending and session.has_capacity():
                        immediate = session.submit(pending.popleft())
                        if immediate is not None:
                            self._consume(
                                immediate, members, outcomes, survivors, anomalies
                            )
                    if not (pending or session.in_flight):
                        return
                    for _, finished in session.poll(None if drain else 0):
                        self._consume(
                            finished, members, outcomes, survivors, anomalies
                        )
                    if not drain:
                        return

            try:
                for batch, n_edges in planner.iter_block_batches(
                    data, tracer=self.tracer
                ):
                    blocks.extend(batch)
                    total_edges += n_edges
                    batch_jobs, batch_members = self._build_block_jobs(
                        data, batch, seed
                    )
                    n_waves += sum(
                        1 for job in batch_jobs if job.wave is not None
                    )
                    members.update(batch_members)
                    pending.extend(batch_jobs)
                    pump(drain=False)
                pump(drain=True)
            finally:
                session.close()
            self._accumulate(preemption, runner.telemetry.preemption_summary())
            plan = ShardPlan(
                n_nodes=int(data.shape[1]),
                blocks=blocks,
                n_skeleton_edges=total_edges,
                skeleton_threshold=planner.skeleton_threshold,
            )
            if shard_span is not None:
                shard_span.set_attribute("n_blocks", plan.n_blocks)
            result = self._finish(
                data=data,
                plan=plan,
                planner=planner,
                seed=seed,
                outcomes=outcomes,
                survivors=survivors,
                anomalies=anomalies,
                n_waves=n_waves,
                preemption=preemption,
                shard_span=shard_span,
                timer=timer,
            )
        result.total_seconds = timer.elapsed
        return result

    # -- stitch + boundary re-solve --------------------------------------------

    def _finish(
        self,
        data: np.ndarray,
        plan: ShardPlan,
        planner: ShardPlanner | None,
        seed: int | None,
        outcomes: dict[int, JobResult],
        survivors: list[tuple[ShardBlock, np.ndarray | sp.spmatrix]],
        anomalies: dict[str, str],
        n_waves: int,
        preemption: dict[str, float],
        shard_span,
        timer: Timer,
    ) -> ShardResult:
        """Stitch the survivors, account the gaps, run boundary rounds."""
        survivors.sort(key=lambda pair: pair[0].index)
        stitched = self.stitcher.stitch(survivors, plan.n_nodes, tracer=self.tracer)
        block_results = [outcomes[block.index] for block in plan.blocks]
        covered = {block.index for block, _ in survivors}
        missing = sorted(
            node
            for block in plan.blocks
            if block.index not in covered
            for node in block.core
        )
        initial_weights = None
        rounds: list[dict[str, Any]] = []
        if self.boundary_rounds > 0:
            initial_weights = stitched.weights
            n_waves_box = [n_waves]
            stitched, missing = self._boundary_resolve(
                data=data,
                plan=plan,
                planner=planner,
                seed=seed,
                survivors=survivors,
                stitched=stitched,
                missing=missing,
                anomalies=anomalies,
                preemption=preemption,
                rounds=rounds,
                n_waves_box=n_waves_box,
            )
            n_waves = n_waves_box[0]
        if shard_span is not None:
            shard_span.set_attributes(
                n_blocks_ok=sum(1 for r in block_results if r.status == "ok"),
                n_missing_nodes=len(missing),
                n_resolve_rounds=len(rounds),
            )
        return ShardResult(
            weights=stitched.weights,
            plan=plan,
            stitched=stitched,
            block_results=block_results,
            missing_nodes=missing,
            total_seconds=timer.elapsed,
            preemption=preemption,
            anomalies=anomalies,
            n_waves=n_waves,
            rounds=rounds,
            initial_weights=initial_weights,
        )

    def _resolve_planner(
        self, plan: ShardPlan, planner: ShardPlanner | None
    ) -> ShardPlanner:
        """The planner used to re-plan the boundary set (never partitioned).

        Boundary re-solve exists to recover edges *across* partitions, so
        the boundary skeleton is always global over the boundary columns —
        the caller's planner settings are kept, its partitioning is not.
        """
        source = planner
        if source is None:
            return ShardPlanner(skeleton_threshold=plan.skeleton_threshold)
        if source.partition_columns is None:
            return source
        return ShardPlanner(
            skeleton_threshold=source.skeleton_threshold,
            max_block_size=source.max_block_size,
            min_block_size=source.min_block_size,
            halo_depth=source.halo_depth,
            max_halo_size=source.max_halo_size,
            dense_skeleton_limit=source.dense_skeleton_limit,
            skeleton_chunk_columns=source.skeleton_chunk_columns,
        )

    def _warm_starts(
        self,
        stitched_weights: np.ndarray | sp.spmatrix,
        blocks: Sequence[ShardBlock],
        data: np.ndarray,
        seed: int | None,
    ) -> dict[int, np.ndarray | sp.spmatrix] | None:
        """Per-block warm starts cut from the current stitched graph.

        For a sparse backend the init's non-zero pattern *is* the candidate
        edge set (``init_weights`` becomes ``initial_support`` in
        :class:`repro.core.least_sparse.SparseLEAST`), so handing it the bare
        stitched submatrix would make a re-solve structurally incapable of
        discovering any edge the first pass missed.  The sparse warm start is
        therefore the stitched submatrix *unioned* with a fresh per-block
        correlation support — stitched values win where both have an entry,
        and the support's candidates keep the round open to new edges.
        """
        spec = get_spec(self.solver)
        if not spec.supports_init_weights:
            return None
        sparse = sp.issparse(stitched_weights)
        source = stitched_weights.tocsr() if sparse else np.asarray(stitched_weights)
        warm: dict[int, np.ndarray | sp.spmatrix] = {}
        for block in blocks:
            nodes = np.asarray(block.nodes, dtype=int)
            if sparse:
                sub = source[nodes][:, nodes].tocsr()
            else:
                sub = source[np.ix_(nodes, nodes)]
            if spec.sparse:
                sub = sp.csr_matrix(sub)
                fresh = self._fresh_support(data[:, nodes], block.index, seed)
                if fresh is not None:
                    fresh = fresh - fresh.multiply(sub != 0)
                    sub = (sub + fresh).tocsr()
                warm[block.index] = sub
            else:
                warm[block.index] = np.array(
                    sub.todense() if sp.issparse(sub) else sub, dtype=float
                )
        return warm

    def _fresh_support(
        self, block_data: np.ndarray, block_index: int, seed: int | None
    ) -> sp.csr_matrix | None:
        """Correlation-screened candidate edges of one re-solve block."""
        from repro.core.least_sparse import SparseLEASTConfig, correlation_support

        max_parents = self.config.get("support_max_parents")
        if max_parents is None:
            max_parents = getattr(SparseLEASTConfig(), "support_max_parents", 8)
        rng = np.random.default_rng(
            None if seed is None else seed + block_index
        )
        return correlation_support(
            np.ascontiguousarray(block_data), max_parents=int(max_parents), rng=rng
        )

    def _boundary_resolve(
        self,
        data: np.ndarray,
        plan: ShardPlan,
        planner: ShardPlanner | None,
        seed: int | None,
        survivors: list[tuple[ShardBlock, np.ndarray | sp.spmatrix]],
        stitched: StitchedGraph,
        missing: list[int],
        anomalies: dict[str, str],
        preemption: dict[str, float],
        rounds: list[dict[str, Any]],
        n_waves_box: list[int],
    ) -> tuple[StitchedGraph, list[int]]:
        """Run the configured boundary re-solve rounds; returns final stitch.

        Each round re-plans the boundary node set (missing owned nodes plus
        every halo node of the plan) over a fresh skeleton built from the
        boundary columns only — that skeleton can connect nodes from
        different partitions, which is exactly what the partitioned first
        pass cannot see.  Round blocks are warm-started from the current
        stitched graph, executed like any other block set (waves included),
        and stitched in with every earlier survivor.
        """
        sub_planner = self._resolve_planner(plan, planner)
        halo_nodes = sorted({node for block in plan.blocks for node in block.halo})
        next_index = plan.n_blocks
        for round_no in range(1, self.boundary_rounds + 1):
            boundary = sorted(set(missing) | set(halo_nodes))
            if len(boundary) < 2:
                break
            boundary_arr = np.asarray(boundary, dtype=int)
            sub = np.ascontiguousarray(data[:, boundary_arr])
            if self.tracer is not None:
                with self.tracer.span(
                    "boundary_replan",
                    round=round_no,
                    n_boundary_nodes=len(boundary),
                ):
                    local_plan = sub_planner._plan_global(sub)
            else:
                local_plan = sub_planner._plan_global(sub)
            round_blocks = [
                ShardBlock(
                    index=next_index + position,
                    core=tuple(int(boundary_arr[i]) for i in block.core),
                    halo=tuple(int(boundary_arr[i]) for i in block.halo),
                )
                for position, block in enumerate(local_plan.blocks)
            ]
            next_index += len(round_blocks)
            warm = self._warm_starts(stitched.weights, round_blocks, data, seed)
            jobs, members = self._build_block_jobs(
                data,
                round_blocks,
                seed,
                id_prefix=f"r{round_no}-",
                warm_starts=warm,
            )
            n_waves_box[0] += sum(1 for job in jobs if job.wave is not None)
            round_outcomes: dict[int, JobResult] = {}
            round_survivors: list[
                tuple[ShardBlock, np.ndarray | sp.spmatrix]
            ] = []
            runner = self._make_runner()
            for result in runner.stream(jobs):
                self._consume(
                    result, members, round_outcomes, round_survivors, anomalies
                )
            self._accumulate(preemption, runner.telemetry.preemption_summary())
            edges_before = _edge_count(stitched.weights)
            survivors.extend(round_survivors)
            survivors.sort(key=lambda pair: pair[0].index)
            stitched = self.stitcher.stitch(
                survivors, plan.n_nodes, tracer=self.tracer
            )
            recovered = {
                node for block, _ in round_survivors for node in block.core
            }
            missing_before = len(missing)
            missing = sorted(set(missing) - recovered)
            round_results = [
                round_outcomes[block.index] for block in round_blocks
            ]
            rounds.append(
                {
                    "round": round_no,
                    "n_boundary_nodes": len(boundary),
                    "n_blocks": len(round_blocks),
                    "n_blocks_ok": sum(
                        1 for r in round_results if r.status == "ok"
                    ),
                    "n_skeleton_edges": local_plan.n_skeleton_edges,
                    "n_edges_before": edges_before,
                    "n_edges_after": _edge_count(stitched.weights),
                    "n_missing_before": missing_before,
                    "n_missing_after": len(missing),
                    "blocks": [
                        _block_digest(r, anomalies.get(r.job_id))
                        for r in round_results
                    ],
                }
            )
        return stitched, missing


def solve_sharded(
    data: np.ndarray,
    planner: ShardPlanner | None = None,
    executor: ShardExecutor | None = None,
    seed: int | None = 0,
) -> ShardResult:
    """Plan, execute, and stitch in one call.

    Parameters
    ----------
    data:
        ``n × d`` sample matrix.
    planner:
        The :class:`~repro.shard.planner.ShardPlanner` to decompose with
        (defaults used when omitted).  A planner with
        :attr:`~repro.shard.planner.ShardPlanner.partition_columns` set
        routes through :meth:`ShardExecutor.run_stream`, overlapping each
        partition's planning with the previous partition's block solves.
    executor:
        The :class:`ShardExecutor` to solve with (a serial single-worker one
        when omitted).
    seed:
        Base seed for the block solves.

    Returns
    -------
    ShardResult
        The stitched DAG plus the full plan/stitch/gap report.
    """
    planner = planner or ShardPlanner()
    executor = executor or ShardExecutor()
    if planner.partition_columns is not None:
        return executor.run_stream(data, planner, seed=seed)
    plan = planner.plan(data, tracer=executor.tracer)
    return executor.run(data, plan, seed=seed, planner=planner)
