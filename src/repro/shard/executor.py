"""Executing a shard plan on the streaming serving engine.

:class:`ShardExecutor` materializes every block of a
:class:`~repro.shard.planner.ShardPlan` as an inline-data
:class:`~repro.serve.job.LearningJob` and drives the whole set through
:class:`~repro.serve.streaming.StreamingRunner` — inheriting the engine's
parallel workers, hard per-block deadlines (SIGKILL + suicide timers), the
fail/requeue preemption policy, and result caching.  Block results are
consumed as they stream in; once the stream drains, the surviving sub-graphs
are merged by :class:`~repro.shard.stitcher.Stitcher` into one global DAG.

Failure containment is the point of running blocks as independent jobs: a
block whose worker crashes or blows its deadline costs exactly that block —
the stitcher assembles a DAG from the survivors and the gap (which blocks and
which owned nodes are missing) is recorded in the :class:`ShardResult` report
instead of poisoning the whole solve.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.core.backend import get_spec
from repro.core.thresholding import threshold_weights
from repro.exceptions import ValidationError
from repro.serve.cache import ResultCache
from repro.serve.job import JobResult, LearningJob
from repro.serve.streaming import StreamingRunner
from repro.shard.planner import ShardBlock, ShardPlan, ShardPlanner
from repro.shard.stitcher import StitchedGraph, Stitcher
from repro.utils.timer import Timer
from repro.utils.validation import check_non_negative, ensure_2d

__all__ = ["ShardResult", "ShardExecutor", "solve_sharded"]


@dataclass
class ShardResult:
    """Outcome of one sharded solve.

    Attributes
    ----------
    weights:
        The stitched global ``d × d`` weight matrix — always a DAG, built
        from the blocks that completed.  CSR when the blocks were solved by
        a sparse backend (the sharded path never densifies sparse results),
        dense ndarray otherwise.
    plan:
        The executed :class:`~repro.shard.planner.ShardPlan`.
    stitched:
        The :class:`~repro.shard.stitcher.StitchedGraph` carrying the
        conflict-accounting report.
    block_results:
        One :class:`~repro.serve.job.JobResult` per block, in block order.
    missing_nodes:
        Global indices owned by blocks that did not complete (failed or
        preempted); their outgoing/incoming edges may be absent from
        :attr:`weights`.
    total_seconds:
        Wall-clock duration of the execute-and-stitch pass.
    preemption:
        The streaming engine's preemption counters for the pass
        (``n_killed`` / ``n_suicide_exits`` / ``n_requeued``).
    """

    weights: np.ndarray | sp.csr_matrix
    plan: ShardPlan
    stitched: StitchedGraph
    block_results: list[JobResult] = field(default_factory=list)
    missing_nodes: list[int] = field(default_factory=list)
    total_seconds: float = 0.0
    preemption: dict[str, float] = field(default_factory=dict)

    @property
    def n_blocks_ok(self) -> int:
        """Blocks that solved successfully."""
        return sum(1 for r in self.block_results if r.status == "ok")

    @property
    def n_blocks_failed(self) -> int:
        """Blocks that failed (dataset/solver error or worker crash)."""
        return sum(1 for r in self.block_results if r.status == "failed")

    @property
    def n_blocks_preempted(self) -> int:
        """Blocks killed at their deadline (after any requeue attempts)."""
        return sum(1 for r in self.block_results if r.status == "preempted")

    @property
    def complete(self) -> bool:
        """True when every block of the plan completed successfully."""
        return self.n_blocks_ok == self.plan.n_blocks

    def report(self) -> dict[str, Any]:
        """JSON-able run report: plan and stitch digests plus the gap record.

        The ``gaps`` block is how a degraded solve is surfaced: which blocks
        did not complete, why, and which owned nodes the stitched graph is
        therefore missing context for.
        """
        return {
            "plan": self.plan.summary(),
            "stitch": self.stitched.report.as_dict(),
            "blocks": [
                {
                    "job_id": r.job_id,
                    "status": r.status,
                    "n_edges": r.n_edges,
                    "elapsed_seconds": r.elapsed_seconds,
                    "attempts": r.attempts,
                    "error": r.error,
                }
                for r in self.block_results
            ],
            "gaps": {
                "n_blocks_ok": self.n_blocks_ok,
                "n_blocks_failed": self.n_blocks_failed,
                "n_blocks_preempted": self.n_blocks_preempted,
                "n_missing_nodes": len(self.missing_nodes),
                "missing_nodes": list(self.missing_nodes),
            },
            "total_seconds": self.total_seconds,
            "preemption": dict(self.preemption),
        }


class ShardExecutor:
    """Solve every block of a plan as a streamed job and stitch the results.

    Parameters
    ----------
    solver:
        Registered solver name used for every block job — any name in
        :func:`repro.serve.job.solver_names`.  With ``"least_sparse"`` the
        whole path stays CSR: each block job defaults to the per-block
        correlation support (``support="correlation"`` is injected into the
        block config unless the caller set one), block results are
        thresholded in sparse form, and the stitched graph is returned as
        CSR — no step materializes a dense ``d × d`` matrix.
    config:
        JSON-able keyword arguments for the solver's config class, shared by
        all blocks.
    n_workers:
        Concurrent worker processes of the underlying
        :class:`~repro.serve.streaming.StreamingRunner`.
    timeout:
        Hard per-block deadline in seconds (``None`` disables preemption).
    preempt_policy, preempt_retries:
        Forwarded to the streaming engine: what happens to a block killed at
        its deadline (``"fail"`` or ``"requeue"`` with fresh attempts).
    max_retries:
        Extra in-worker attempts for failing block solves.
    cache:
        Optional :class:`~repro.serve.cache.ResultCache` shared across runs —
        re-solving an unchanged block becomes a cache hit.
    edge_threshold:
        Entries with ``|weight|`` below this are dropped from each block's
        sub-graph *before* stitching, so conflict accounting operates on the
        edges that would survive anyway.
    stitcher:
        The :class:`~repro.shard.stitcher.Stitcher` to merge with (a default
        one is built when omitted).
    soft_timeout:
        Optional cooperative per-block deadline (seconds, ≤ ``timeout``):
        block solvers are asked to stop at an outer-iteration boundary before
        the hard SIGKILL tier fires.
    max_jobs_per_worker:
        Recycle a pool worker after this many block jobs (``None`` keeps
        workers for the whole pass).
    tracer:
        Optional :class:`~repro.obs.Tracer`.  :meth:`run` then executes
        inside a ``shard_solve`` span — block job spans (from the streaming
        engine) and the ``stitch`` span nest under it — and per-status block
        counters land in ``tracer.metrics``.
    """

    def __init__(
        self,
        solver: str = "least",
        config: dict[str, Any] | None = None,
        n_workers: int = 1,
        timeout: float | None = None,
        preempt_policy: str = "fail",
        preempt_retries: int = 1,
        max_retries: int = 0,
        cache: ResultCache | None = None,
        edge_threshold: float = 0.0,
        stitcher: Stitcher | None = None,
        soft_timeout: float | None = None,
        max_jobs_per_worker: int | None = None,
        tracer=None,
    ) -> None:
        check_non_negative(edge_threshold, "edge_threshold")
        self.solver = solver
        self.config = dict(config or {})
        get_spec(solver)  # validates the name against the live registry
        if solver == "least_sparse":
            # Blocks are small (≤ max_block_size + halo), so the correlation
            # screen is cheap there and recovers real edges far better than a
            # random support — callers can still override via config.
            self.config.setdefault("support", "correlation")
        self.n_workers = n_workers
        self.timeout = timeout
        self.preempt_policy = preempt_policy
        self.preempt_retries = preempt_retries
        self.max_retries = max_retries
        self.cache = cache
        self.edge_threshold = edge_threshold
        self.stitcher = stitcher or Stitcher()
        self.soft_timeout = soft_timeout
        self.max_jobs_per_worker = max_jobs_per_worker
        self.tracer = tracer

    # -- public API ------------------------------------------------------------

    def build_jobs(
        self, data: np.ndarray, plan: ShardPlan, seed: int | None = 0
    ) -> list[LearningJob]:
        """Materialize one inline-data job per block of ``plan``.

        Block ``k`` gets ``job_id="block-kkk"`` and seed ``seed + k`` so block
        solves stay individually reproducible yet mutually decorrelated.
        """
        data = ensure_2d(data, "data")
        if data.shape[1] != plan.n_nodes:
            raise ValidationError(
                f"data has {data.shape[1]} columns but the plan covers "
                f"{plan.n_nodes} nodes"
            )
        jobs = []
        for block in plan.blocks:
            columns = np.asarray(block.nodes, dtype=int)
            jobs.append(
                LearningJob(
                    solver=self.solver,
                    data=np.ascontiguousarray(data[:, columns]),
                    config=dict(self.config),
                    seed=None if seed is None else seed + block.index,
                    job_id=f"block-{block.index:03d}",
                )
            )
        return jobs

    def run(
        self, data: np.ndarray, plan: ShardPlan, seed: int | None = 0
    ) -> ShardResult:
        """Execute the plan on the streaming engine and stitch the survivors.

        Results are consumed in completion order as the engine yields them;
        preempted or failed blocks become gaps in the :class:`ShardResult`
        rather than errors.
        """
        jobs = self.build_jobs(data, plan, seed=seed)
        runner = StreamingRunner(
            n_workers=self.n_workers,
            cache=self.cache,
            timeout=self.timeout,
            max_retries=self.max_retries,
            preempt_policy=self.preempt_policy,
            preempt_retries=self.preempt_retries,
            tracer=self.tracer,
            soft_timeout=self.soft_timeout,
            max_jobs_per_worker=self.max_jobs_per_worker,
        )
        timer = Timer()
        with contextlib.ExitStack() as stack:
            stack.enter_context(timer)
            shard_span = None
            if self.tracer is not None:
                # Entering the span makes it the ambient parent, so the block
                # job spans of the streaming engine nest under it.
                shard_span = stack.enter_context(
                    self.tracer.span(
                        "shard_solve",
                        solver=self.solver,
                        n_blocks=plan.n_blocks,
                        n_nodes=plan.n_nodes,
                    )
                )
            by_block: dict[int, JobResult] = {}
            survivors: list[tuple[ShardBlock, np.ndarray | sp.spmatrix]] = []
            for result in runner.stream(jobs):
                index = int(result.job_id.split("-")[-1])
                by_block[index] = result
                if self.tracer is not None:
                    self.tracer.metrics.counter(
                        "shard_blocks_total", status=result.status
                    ).inc()
                if result.status == "ok" and result.weights is not None:
                    # Keep each block's native representation: CSR block
                    # results are thresholded on their data vector and handed
                    # to the stitcher still sparse.
                    local = result.weights
                    if not sp.issparse(local):
                        local = np.asarray(local, dtype=float)
                    if self.edge_threshold > 0.0:
                        local = threshold_weights(local, self.edge_threshold)
                    survivors.append((plan.blocks[index], local))

            survivors.sort(key=lambda pair: pair[0].index)
            stitched = self.stitcher.stitch(
                survivors, plan.n_nodes, tracer=self.tracer
            )
            block_results = [by_block[block.index] for block in plan.blocks]
            missing = sorted(
                node
                for block in plan.blocks
                if by_block[block.index].status != "ok"
                for node in block.core
            )
            if shard_span is not None:
                shard_span.set_attributes(
                    n_blocks_ok=sum(
                        1 for r in block_results if r.status == "ok"
                    ),
                    n_missing_nodes=len(missing),
                )
        return ShardResult(
            weights=stitched.weights,
            plan=plan,
            stitched=stitched,
            block_results=block_results,
            missing_nodes=missing,
            total_seconds=timer.elapsed,
            preemption=runner.telemetry.preemption_summary(),
        )


def solve_sharded(
    data: np.ndarray,
    planner: ShardPlanner | None = None,
    executor: ShardExecutor | None = None,
    seed: int | None = 0,
) -> ShardResult:
    """Plan, execute, and stitch in one call.

    Parameters
    ----------
    data:
        ``n × d`` sample matrix.
    planner:
        The :class:`~repro.shard.planner.ShardPlanner` to decompose with
        (defaults used when omitted).
    executor:
        The :class:`ShardExecutor` to solve with (a serial single-worker one
        when omitted).
    seed:
        Base seed for the block solves.

    Returns
    -------
    ShardResult
        The stitched DAG plus the full plan/stitch/gap report.
    """
    planner = planner or ShardPlanner()
    executor = executor or ShardExecutor()
    plan = planner.plan(data, tracer=executor.tracer)
    return executor.run(data, plan, seed=seed)
