"""Random-number helpers.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or an existing :class:`numpy.random.Generator`.  The
helpers here normalise those inputs so that experiments are reproducible and
components can share or fork generators without global state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["RandomState", "as_generator", "spawn_generators"]

RandomState = Union[None, int, np.random.Generator]


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a fresh non-deterministic generator, an integer seeds a
    new PCG64 generator, and an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Children are derived via :class:`numpy.random.SeedSequence` spawning, so
    they are statistically independent regardless of how the parent seed was
    produced.  Useful for running parameter sweeps where each configuration
    needs its own reproducible stream.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]
