"""Shared utilities: validation helpers, RNG handling, timing, run logging."""

from repro.utils.random import RandomState, as_generator, spawn_generators
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_square_matrix,
    check_unit_interval,
    ensure_array,
)

__all__ = [
    "RandomState",
    "as_generator",
    "spawn_generators",
    "Timer",
    "timed",
    "check_positive",
    "check_probability",
    "check_square_matrix",
    "check_unit_interval",
    "ensure_array",
]
