"""Argument validation helpers.

These helpers centralize the input checks used across the library so that
error messages are consistent and every public entry point fails fast with a
:class:`repro.exceptions.ValidationError` rather than a confusing numpy error
deep inside a computation.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DimensionMismatchError, ValidationError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_unit_interval",
    "check_square_matrix",
    "check_same_shape",
    "check_in_choices",
    "ensure_array",
    "ensure_2d",
    "is_sparse",
]


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) number.

    Parameters
    ----------
    value:
        The number to check.
    name:
        Parameter name used in the error message.
    strict:
        If True require ``value > 0``; otherwise ``value >= 0``.
    """
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0."""
    return check_positive(value, name, strict=False)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not np.isfinite(value) or value < 0 or value > 1:
        raise ValidationError(f"{name} must be a probability in [0, 1], got {value!r}")
    return float(value)


def check_unit_interval(value: float, name: str) -> float:
    """Alias of :func:`check_probability` for non-probability parameters.

    Used for parameters such as the balancing factor ``alpha`` of the spectral
    bound, which must lie in [0, 1] but is not a probability.
    """
    return check_probability(value, name)


def check_in_choices(value: Any, name: str, choices: Sequence[Any]) -> Any:
    """Validate that ``value`` is one of ``choices``."""
    if value not in choices:
        raise ValidationError(
            f"{name} must be one of {sorted(map(str, choices))}, got {value!r}"
        )
    return value


def is_sparse(matrix: Any) -> bool:
    """Return True if ``matrix`` is a scipy sparse matrix/array."""
    return sp.issparse(matrix)


def ensure_array(data: Any, name: str = "array", dtype: Any = float) -> np.ndarray:
    """Convert ``data`` to a numpy array, rejecting non-finite entries."""
    array = np.asarray(data, dtype=dtype)
    if array.size and not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return array


def ensure_2d(data: Any, name: str = "matrix", dtype: Any = float) -> np.ndarray:
    """Convert ``data`` to a 2-D numpy array."""
    array = ensure_array(data, name, dtype)
    if array.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got shape {array.shape}")
    return array


def check_square_matrix(matrix: Any, name: str = "matrix") -> Any:
    """Validate that ``matrix`` is a square 2-D dense or sparse matrix.

    Sparse inputs are returned unchanged; dense inputs are converted to a
    float numpy array.
    """
    if sp.issparse(matrix):
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(
                f"{name} must be square, got shape {matrix.shape}"
            )
        return matrix
    array = ensure_2d(matrix, name)
    if array.shape[0] != array.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {array.shape}")
    return array


def check_same_shape(a: np.ndarray, b: np.ndarray, names: tuple[str, str] = ("a", "b")) -> None:
    """Validate that two arrays share the same shape."""
    if a.shape != b.shape:
        raise DimensionMismatchError(
            f"{names[0]} has shape {a.shape} but {names[1]} has shape {b.shape}"
        )
