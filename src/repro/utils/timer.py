"""Lightweight timing utilities used by the benchmark harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

__all__ = ["Timer", "timed"]

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    The timer can be used either as a context manager around individual code
    sections or via explicit :meth:`start` / :meth:`stop` calls.  Each
    completed interval is appended to :attr:`laps`, and :attr:`elapsed` holds
    the running total.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = None

    def start(self) -> "Timer":
        """Begin a new timing interval."""
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the current interval and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("Timer was not started")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.laps.append(lap)
        self.elapsed += lap
        return lap

    def reset(self) -> None:
        """Discard all accumulated timing information."""
        self.elapsed = 0.0
        self.laps.clear()
        self._started_at = None

    @property
    def running(self) -> bool:
        """True while an interval is open."""
        return self._started_at is not None

    def peek(self) -> float:
        """Total elapsed seconds including the currently open interval.

        Unlike :attr:`elapsed` (completed laps only), this reads the running
        interval without stopping it — the clock path cooperative deadline
        checks use mid-solve.
        """
        total = self.elapsed
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    @property
    def mean_lap(self) -> float:
        """Mean duration of completed intervals (0.0 when there are none)."""
        if not self.laps:
            return 0.0
        return self.elapsed / len(self.laps)

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed(label: str, sink: Callable[[str], None] = print) -> Iterator[Timer]:
    """Context manager that times a block and reports it to ``sink``.

    Parameters
    ----------
    label:
        Human readable description included in the report line.
    sink:
        Callable receiving the formatted report (defaults to ``print``).
    """
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        duration = timer.stop()
        sink(f"{label}: {duration:.4f}s")
