"""Minimal structured run logging.

Long-running optimizations (LEAST, NOTEARS) and the monitoring pipeline emit
per-iteration records.  :class:`RunLog` collects these records in memory and
can export them as plain dictionaries or column arrays for plotting and for
the correlation analysis of Fig. 4 (row 3) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

__all__ = ["RunLog"]


@dataclass
class RunLog:
    """Append-only list of per-step records with convenient column access."""

    records: list[dict[str, Any]] = field(default_factory=list)

    def append(self, **fields: Any) -> None:
        """Append a record built from keyword arguments."""
        self.records.append(dict(fields))

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Append several records."""
        for record in records:
            self.records.append(dict(record))

    def column(self, key: str, default: float = np.nan) -> np.ndarray:
        """Return the values of ``key`` across records as a float array."""
        return np.asarray(
            [float(record.get(key, default)) for record in self.records], dtype=float
        )

    def last(self, key: str, default: Any = None) -> Any:
        """Return the most recent value recorded for ``key``."""
        for record in reversed(self.records):
            if key in record:
                return record[key]
        return default

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self.records[index]

    def to_dict(self) -> dict[str, list[Any]]:
        """Return a column-oriented view: ``{key: [value per record]}``."""
        keys: list[str] = []
        for record in self.records:
            for key in record:
                if key not in keys:
                    keys.append(key)
        return {key: [record.get(key) for record in self.records] for key in keys}
