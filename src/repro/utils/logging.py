"""Minimal structured run logging.

Long-running optimizations (LEAST, NOTEARS) and the monitoring pipeline emit
per-iteration records.  :class:`RunLog` collects these records in memory and
can export them as plain dictionaries or column arrays for plotting and for
the correlation analysis of Fig. 4 (row 3) in the paper.

:meth:`RunLog.to_ndjson` / :meth:`RunLog.from_ndjson` round-trip the records
through the same NDJSON event format the tracing layer uses
(:mod:`repro.obs.sinks`), so solver per-iteration telemetry can sit next to
span events in one file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

__all__ = ["RunLog"]


@dataclass
class RunLog:
    """Append-only list of per-step records with convenient column access."""

    records: list[dict[str, Any]] = field(default_factory=list)

    def append(self, **fields: Any) -> None:
        """Append a record built from keyword arguments."""
        self.records.append(dict(fields))

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Append several records."""
        for record in records:
            self.records.append(dict(record))

    def column(self, key: str, default: float = np.nan) -> np.ndarray:
        """Return the values of ``key`` across records as a float array."""
        return np.asarray(
            [float(record.get(key, default)) for record in self.records], dtype=float
        )

    def last(self, key: str, default: Any = None) -> Any:
        """Return the most recent value recorded for ``key``."""
        for record in reversed(self.records):
            if key in record:
                return record[key]
        return default

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records)

    def __getitem__(self, index: int) -> dict[str, Any]:
        return self.records[index]

    def to_dict(self) -> dict[str, list[Any]]:
        """Return a column-oriented view: ``{key: [value per record]}``."""
        # A dict doubles as an insertion-ordered set here: the old list scan
        # was O(records × distinct keys) per key lookup.
        keys: dict[str, None] = {}
        for record in self.records:
            keys.update(dict.fromkeys(record))
        return {key: [record.get(key) for record in self.records] for key in keys}

    def to_ndjson(self, path: str | Path) -> int:
        """Write one ``log_record`` event per record as NDJSON; returns count.

        The event shape (``{"event": "log_record", "index": i, "record":
        {...}}``) matches the span events of :mod:`repro.obs`, so solver logs
        and traces can share a file and a reader.  Numpy scalars are coerced
        to plain JSON numbers.
        """
        from repro.obs.sinks import json_default

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for index, record in enumerate(self.records):
                event = {"event": "log_record", "index": index, "record": record}
                handle.write(json.dumps(event, default=json_default) + "\n")
        return len(self.records)

    @classmethod
    def from_ndjson(cls, path: str | Path) -> "RunLog":
        """Rebuild a :class:`RunLog` from an NDJSON file.

        Only ``log_record`` events are consumed — span events and malformed
        lines in a shared file are skipped, and a missing file reads as an
        empty log (mirroring :func:`repro.obs.read_ndjson`).
        """
        from repro.obs.sinks import read_ndjson

        log = cls()
        for event in read_ndjson(path):
            if event.get("event") == "log_record" and isinstance(
                event.get("record"), dict
            ):
                log.records.append(dict(event["record"]))
        return log
