"""Degree analysis of learned item graphs.

Section VI-C of the paper observes an interesting asymmetry in the learned
MovieLens DAG: "blockbuster" movies watched by nearly everyone accumulate many
*incoming* edges but few outgoing ones, while niche movies indicative of a
specific taste have many *outgoing* edges.  These helpers compute the in/out
degree profile of a learned graph and summarize that asymmetry so the effect
can be measured rather than eyeballed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.adjacency import binarize, to_dense

__all__ = ["DegreeProfile", "degree_profile", "hub_analysis"]


@dataclass(frozen=True)
class DegreeProfile:
    """Per-node in/out degrees of a directed graph."""

    in_degree: np.ndarray
    out_degree: np.ndarray
    labels: tuple[str, ...] | None = None

    def top_by_in_degree(self, n: int = 10) -> list[tuple[int, int, int]]:
        """Nodes sorted by in-degree: ``(node, in_degree, out_degree)``."""
        order = np.argsort(-self.in_degree)[:n]
        return [(int(i), int(self.in_degree[i]), int(self.out_degree[i])) for i in order]

    def top_by_out_degree(self, n: int = 10) -> list[tuple[int, int, int]]:
        """Nodes sorted by out-degree: ``(node, in_degree, out_degree)``."""
        order = np.argsort(-self.out_degree)[:n]
        return [(int(i), int(self.in_degree[i]), int(self.out_degree[i])) for i in order]


def degree_profile(weights, labels: Sequence[str] | None = None) -> DegreeProfile:
    """Compute in/out degrees of the (binarized) learned graph."""
    binary = binarize(to_dense(weights))
    if labels is not None and len(labels) != binary.shape[0]:
        raise ValidationError("labels must have one entry per node")
    return DegreeProfile(
        in_degree=binary.sum(axis=0).astype(int),
        out_degree=binary.sum(axis=1).astype(int),
        labels=tuple(labels) if labels is not None else None,
    )


def hub_analysis(weights, popular_items: Sequence[int]) -> dict[str, float]:
    """Quantify the blockbuster in/out-degree asymmetry.

    Parameters
    ----------
    weights:
        Learned item graph.
    popular_items:
        Indices of the "blockbuster" items (known from metadata or from
        watch counts).

    Returns
    -------
    dict
        Mean in/out degree of the popular items and of everything else, plus
        the asymmetry ratio ``mean_in(popular) / max(mean_out(popular), 1)``.
        A ratio well above 1 reproduces the paper's observation.
    """
    profile = degree_profile(weights)
    d = profile.in_degree.shape[0]
    popular = np.zeros(d, dtype=bool)
    for item in popular_items:
        item = int(item)
        if item < 0 or item >= d:
            raise ValidationError(f"popular item {item} out of range")
        popular[item] = True
    if not popular.any():
        raise ValidationError("popular_items must contain at least one valid index")

    popular_in = float(profile.in_degree[popular].mean())
    popular_out = float(profile.out_degree[popular].mean())
    rest_in = float(profile.in_degree[~popular].mean()) if (~popular).any() else 0.0
    rest_out = float(profile.out_degree[~popular].mean()) if (~popular).any() else 0.0
    return {
        "popular_mean_in_degree": popular_in,
        "popular_mean_out_degree": popular_out,
        "other_mean_in_degree": rest_in,
        "other_mean_out_degree": rest_out,
        "popular_in_out_ratio": popular_in / max(popular_out, 1.0),
    }
