"""Explainable recommendation on top of a learned item graph (Section VI-C)."""

from repro.recommend.analysis import degree_profile, hub_analysis
from repro.recommend.explainable import (
    ExplainableRecommender,
    Recommendation,
    extract_subgraph,
    top_edges,
)

__all__ = [
    "ExplainableRecommender",
    "Recommendation",
    "top_edges",
    "extract_subgraph",
    "degree_profile",
    "hub_analysis",
]
