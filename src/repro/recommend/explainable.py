"""Explainable item-to-item recommendation from a learned structure.

Section VI-C of the paper interprets the DAG learned from the (mean-centred)
MovieLens rating matrix as an item-to-item graph: given a user's rating for
movie ``i``, follow outgoing edges ``i -> j`` multiplying the (centred) rating
by the edge weight; positive results predict the user will like ``j``, and the
path of edges *is* the explanation.  This module implements that propagation,
the "top learned edges" report of Table IV, and the neighbourhood extraction
behind Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.adjacency import adjacency_to_edge_list, to_dense
from repro.utils.validation import check_positive

__all__ = ["Recommendation", "ExplainableRecommender", "top_edges", "extract_subgraph"]


@dataclass(frozen=True)
class Recommendation:
    """A scored recommendation together with its explanation path."""

    item: int
    score: float
    path: tuple[int, ...]
    path_weights: tuple[float, ...]

    def explanation(self, labels: Sequence[str] | None = None) -> str:
        """Human-readable explanation: the chain of items leading to this one."""
        names = [str(i) if labels is None else labels[i] for i in self.path]
        chain = " -> ".join(names)
        return f"{chain} (score {self.score:+.3f})"


def top_edges(weights, labels: Sequence[str] | None = None, n: int = 10) -> list[tuple]:
    """Strongest learned edges, Table IV style (sorted by |weight| descending)."""
    check_positive(n, "n")
    edges = adjacency_to_edge_list(weights, labels=labels, sort_by_weight=True)
    return edges[:n]


def extract_subgraph(weights, center: int, radius: int = 1) -> tuple[np.ndarray, list[int]]:
    """Extract the neighbourhood of ``center`` within ``radius`` hops (Fig. 8).

    Both incoming and outgoing edges count as one hop.  Returns the induced
    sub-matrix and the list of original node indices it covers (the center is
    always first).
    """
    dense = to_dense(weights)
    d = dense.shape[0]
    if center < 0 or center >= d:
        raise ValidationError(f"center {center} out of range for a {d}-node graph")
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")

    selected = {center}
    frontier = {center}
    for _ in range(radius):
        next_frontier: set[int] = set()
        for node in frontier:
            next_frontier.update(np.flatnonzero(dense[node, :]).tolist())
            next_frontier.update(np.flatnonzero(dense[:, node]).tolist())
        next_frontier -= selected
        selected |= next_frontier
        frontier = next_frontier

    ordered = [center] + sorted(selected - {center})
    index = np.asarray(ordered, dtype=int)
    return dense[np.ix_(index, index)], ordered


class ExplainableRecommender:
    """Propagates a user's observed ratings along the learned item graph.

    Parameters
    ----------
    weights:
        Learned item-to-item weight matrix (``W[i, j]`` is the influence of
        the rating of item ``i`` on item ``j``).
    labels:
        Optional item names used in explanations.
    max_hops:
        Maximum explanation-path length followed during propagation.
    damping:
        Multiplicative factor applied per hop (< 1 favours short, direct
        explanations).
    """

    def __init__(
        self,
        weights,
        labels: Sequence[str] | None = None,
        max_hops: int = 2,
        damping: float = 1.0,
    ):
        self.weights = to_dense(weights)
        if self.weights.ndim != 2 or self.weights.shape[0] != self.weights.shape[1]:
            raise ValidationError("weights must be a square matrix")
        if labels is not None and len(labels) != self.weights.shape[0]:
            raise ValidationError("labels must have one entry per item")
        if max_hops < 1:
            raise ValidationError(f"max_hops must be >= 1, got {max_hops}")
        check_positive(damping, "damping")
        self.labels = list(labels) if labels is not None else None
        self.max_hops = max_hops
        self.damping = damping

    def recommend(
        self,
        observed_ratings: Mapping[int, float],
        n: int = 10,
        exclude_observed: bool = True,
    ) -> list[Recommendation]:
        """Score unseen items given centred ratings of observed items.

        ``observed_ratings`` maps item index to a *centred* rating (positive =
        above the user's mean).  Each observed item's signal propagates along
        outgoing edges for up to ``max_hops`` hops; an item's final score is
        the sum over all contributing paths, and the reported explanation is
        the highest-|contribution| path that reaches it.
        """
        check_positive(n, "n")
        d = self.weights.shape[0]
        scores = np.zeros(d)
        best_path: dict[int, tuple[float, tuple[int, ...], tuple[float, ...]]] = {}

        for item, rating in observed_ratings.items():
            item = int(item)
            if item < 0 or item >= d:
                raise ValidationError(f"observed item {item} out of range")
            # Breadth-first propagation of (signal, path).
            frontier: list[tuple[int, float, tuple[int, ...], tuple[float, ...]]] = [
                (item, float(rating), (item,), ())
            ]
            for _ in range(self.max_hops):
                next_frontier: list[tuple[int, float, tuple[int, ...], tuple[float, ...]]] = []
                for node, signal, path, path_weights in frontier:
                    for child in np.flatnonzero(self.weights[node, :]):
                        child = int(child)
                        if child in path:
                            continue
                        weight = float(self.weights[node, child])
                        contribution = signal * weight * self.damping
                        if contribution == 0.0:
                            continue
                        scores[child] += contribution
                        new_path = path + (child,)
                        new_weights = path_weights + (weight,)
                        previous = best_path.get(child)
                        if previous is None or abs(contribution) > abs(previous[0]):
                            best_path[child] = (contribution, new_path, new_weights)
                        next_frontier.append((child, contribution, new_path, new_weights))
                frontier = next_frontier

        candidates = np.argsort(-np.abs(scores))
        recommendations: list[Recommendation] = []
        observed = {int(i) for i in observed_ratings}
        for candidate in candidates:
            candidate = int(candidate)
            if scores[candidate] == 0.0:
                break
            if exclude_observed and candidate in observed:
                continue
            _, path, path_weights = best_path.get(candidate, (0.0, (candidate,), ()))
            recommendations.append(
                Recommendation(
                    item=candidate,
                    score=float(scores[candidate]),
                    path=path,
                    path_weights=path_weights,
                )
            )
            if len(recommendations) >= n:
                break
        return recommendations

    def explain(self, recommendation: Recommendation) -> str:
        """Explanation string using the recommender's item labels."""
        return recommendation.explanation(self.labels)
