"""``repro-obs`` — the command-line face of the trace analytics layer.

Five subcommands over the NDJSON traces the serving engine writes
(``repro-serve ... --trace-out trace.ndjson``):

``repro-obs summarize trace.ndjson [--waterfall]``
    Validation counters, per-phase attribution, worker utilization, and
    queue-wait stats; ``--waterfall`` appends the terminal span waterfall.

``repro-obs critical-path trace.ndjson``
    The chain of spans bounding the run's wall-clock; the printed total
    always equals the root span duration (the segments tile it exactly).

``repro-obs diff baseline.ndjson candidate.ndjson [--tolerance 0.25]``
    Per-span-name count/total/self-time deltas; exits ``1`` when any span
    name's total regressed past the tolerance — the perf gate CI runs.

``repro-obs export trace.ndjson --format chrome -o trace.chrome.json``
    Chrome trace-event JSON, loadable at https://ui.perfetto.dev.

``repro-obs check trace.ndjson [--require-span solve ...]``
    Structural health (wraps :func:`~repro.obs.validate_trace`); exits ``1``
    on orphans or missing required span names.

Every subcommand takes ``--json`` (machine-readable output) where a human
rendering is the default.  A missing trace file exits ``2``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.exceptions import ValidationError
from repro.obs.analyze import (
    TraceModel,
    critical_path,
    diff_traces,
    phase_attribution,
    queue_wait_stats,
    render_waterfall,
    wall_clock_section,
    worker_stats,
    write_chrome_trace,
)
from repro.obs.sinks import json_default
from repro.obs.tracing import validate_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-obs`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Analyze NDJSON span traces written by repro-serve --trace-out.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "summarize",
        help="validation counters, phase attribution, worker and queue stats",
    )
    p.add_argument("trace", help="NDJSON trace file")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--waterfall", action="store_true", help="append the terminal span waterfall"
    )
    p.add_argument(
        "--width", type=int, default=64, help="waterfall bar width (default 64)"
    )

    p = sub.add_parser(
        "critical-path", help="the span chain bounding the run's wall-clock"
    )
    p.add_argument("trace", help="NDJSON trace file")
    p.add_argument(
        "--root",
        default=None,
        help="span id to use as the root (default: the longest root span)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser(
        "diff",
        help="per-span-name deltas between two traces; exit 1 on regression",
    )
    p.add_argument("baseline", help="baseline NDJSON trace")
    p.add_argument("candidate", help="candidate NDJSON trace")
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative growth of a span-name total (default 0.25)",
    )
    p.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="ignore regressions smaller than this many seconds (default 0.05)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser("export", help="convert a trace to another format")
    p.add_argument("trace", help="NDJSON trace file")
    p.add_argument(
        "--format",
        choices=["chrome"],
        default="chrome",
        help="output format (chrome = Chrome trace-event JSON, Perfetto-loadable)",
    )
    p.add_argument(
        "-o",
        "--output",
        default=None,
        help="output path (default: <trace>.chrome.json)",
    )

    p = sub.add_parser(
        "check", help="structural health check; exit 1 on orphans or missing spans"
    )
    p.add_argument("trace", help="NDJSON trace file")
    p.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless a span with this name is present (repeatable)",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    return parser


def _load(path: str) -> TraceModel:
    """Load a trace or exit 2 with a readable error."""
    if not Path(path).exists():
        print(f"repro-obs: trace file not found: {path}", file=sys.stderr)
        raise SystemExit(2)
    model = TraceModel.from_file(path)
    if not model.spans:
        print(f"repro-obs: no span events in {path}", file=sys.stderr)
        raise SystemExit(2)
    return model


def _print_json(payload: Any) -> None:
    """Dump a payload as indented JSON on stdout."""
    print(json.dumps(payload, indent=2, default=json_default))


def _cmd_summarize(args: argparse.Namespace) -> int:
    """``repro-obs summarize``."""
    model = _load(args.trace)
    attribution = phase_attribution(model)
    workers = worker_stats(model)
    queue = queue_wait_stats(model)
    section = wall_clock_section(model)
    if args.json:
        _print_json(
            {
                "trace": args.trace,
                "wall_clock": section,
                "phases": attribution,
                "workers": workers,
                "queue_wait": queue,
            }
        )
        return 0
    print(f"trace: {args.trace}")
    print(
        f"  {section['n_spans']} spans, {section['n_orphans']} orphans, "
        f"{section['n_clamped_durations']} clamped negative durations, "
        f"{model.n_adopted} adopted"
    )
    print(f"{'phase':<20} {'count':>6} {'total s':>10} {'self s':>10}")
    for name, row in attribution.items():
        print(
            f"{name:<20} {row['count']:>6} {row['total_seconds']:>10.3f} "
            f"{row['self_seconds']:>10.3f}"
        )
    print(
        f"workers: {workers['n_workers']} over {workers['trace_seconds']:.3f}s, "
        f"mean utilization {workers['mean_utilization']:.1%}"
    )
    print(
        f"queue_wait: n={queue['count']} total={queue['total_seconds']:.3f}s "
        f"mean={queue['mean']:.3f}s p95={queue['p95']:.3f}s max={queue['max']:.3f}s"
    )
    if section["n_sampled_processes"]:
        print(
            f"sampled rss: {section['n_sampled_processes']} processes, "
            f"max worker peak {section['max_worker_peak_rss_bytes'] / 1e6:.1f} MB, "
            f"parent peak {section['parent_peak_rss_bytes'] / 1e6:.1f} MB"
        )
    if args.waterfall:
        print(render_waterfall(model, width=args.width))
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    """``repro-obs critical-path``."""
    model = _load(args.trace)
    path = critical_path(model, root=args.root)
    if args.json:
        _print_json(path.as_dict())
        return 0
    root = path.root
    print(
        f"critical path of {root.get('name')} ({root.get('span_id')}), "
        f"root duration {float(root.get('duration') or 0.0):.3f}s:"
    )
    for seg in path.segments:
        print(f"  {seg['duration']:>9.3f}s  {seg['name']}  [{seg['span_id']}]")
    print(f"total: {path.total_seconds:.3f}s over {len(path.segments)} segments")
    for name, seconds in path.by_name().items():
        print(f"  {name:<20} {seconds:>9.3f}s")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """``repro-obs diff`` — exit 1 when a span-name total regressed."""
    diff = diff_traces(_load(args.baseline), _load(args.candidate))
    regressions = diff.regressions(
        tolerance=args.tolerance, min_seconds=args.min_seconds
    )
    if args.json:
        _print_json(
            {
                "baseline": args.baseline,
                "candidate": args.candidate,
                "tolerance": args.tolerance,
                "min_seconds": args.min_seconds,
                "rows": diff.rows,
                "regressions": regressions,
            }
        )
        return 1 if regressions else 0
    print(
        f"{'span name':<20} {'n a→b':>11} {'total a':>10} {'total b':>10} {'Δ':>9}"
    )
    for row in diff.rows:
        print(
            f"{row['name']:<20} {row['count_a']:>5}→{row['count_b']:<5} "
            f"{row['total_a']:>10.3f} {row['total_b']:>10.3f} "
            f"{row['delta_total']:>+9.3f}"
        )
    if regressions:
        names = ", ".join(row["name"] for row in regressions)
        print(
            f"REGRESSION: {len(regressions)} span name(s) past "
            f"+{args.tolerance:.0%} tolerance: {names}",
            file=sys.stderr,
        )
        return 1
    print(f"ok: no span-name total grew past +{args.tolerance:.0%}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    """``repro-obs export --format chrome``."""
    model = _load(args.trace)
    output = args.output or f"{args.trace}.chrome.json"
    write_chrome_trace(model, output)
    print(
        f"wrote {output} ({len(model.spans)} spans, "
        f"{len(model.resources)} resource samples) — "
        "load it at https://ui.perfetto.dev or chrome://tracing"
    )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """``repro-obs check`` — exit 1 on orphans or missing required spans."""
    model = _load(args.trace)
    summary = validate_trace(model.spans)
    missing = [name for name in args.require_span if name not in summary["names"]]
    ok = summary["n_orphans"] == 0 and not missing
    if args.json:
        _print_json({**summary, "missing_spans": missing, "ok": ok})
    else:
        print(
            f"{args.trace}: {summary['n_spans']} spans, "
            f"{summary['n_roots']} roots, {summary['n_orphans']} orphans, "
            f"{summary['n_clamped_durations']} clamped durations"
        )
        if missing:
            print(f"missing required spans: {', '.join(missing)}", file=sys.stderr)
        if summary["n_orphans"]:
            print(f"orphans: {', '.join(summary['orphans'])}", file=sys.stderr)
        print("ok" if ok else "FAILED")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro-obs`` / ``python -m repro.obs``."""
    args = build_parser().parse_args(argv)
    handlers = {
        "summarize": _cmd_summarize,
        "critical-path": _cmd_critical_path,
        "diff": _cmd_diff,
        "export": _cmd_export,
        "check": _cmd_check,
    }
    try:
        return handlers[args.command](args)
    except ValidationError as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro.obs
    sys.exit(main())
