"""Tracing spans with parent links, cross-process merge, and trace analysis.

A :class:`Span` is one named, timed region of a run — a job's lifecycle, a
worker's lifetime, one solver outer iteration.  Spans carry monotonic start
times and durations (``time.monotonic()`` is comparable across processes on
the same machine boot, which is what makes parent/worker merging exact), a
wall-clock anchor for humans, free-form attributes, and a ``parent_id`` link
that turns a flat NDJSON file back into a tree.

The :class:`Tracer` is the factory and emitter: ``tracer.span(name)`` opens a
span whose parent is the ambient current span (a :mod:`contextvars` variable,
so ``with``-nested spans link up automatically), and every finished span is
handed to the tracer's :class:`~repro.obs.sinks.EventSink` as one event.

Cross-process collection works through *spool files*: a worker process writes
its spans to a private NDJSON file (flushed per line), and the parent calls
:func:`merge_spool` once the worker is done — or dead.  Spans whose parent
never flushed (the worker was SIGKILLed mid-solve) are *adopted* by the
parent-side job span instead of dangling, so a merged trace never contains
orphans.

:func:`read_trace`, :func:`validate_trace`, and :func:`wall_clock_breakdown`
are the analysis faces used by the benchmarks and the CI smoke checks.
"""

from __future__ import annotations

import contextlib
import time
import uuid
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import EventSink, InMemorySink, read_ndjson

__all__ = [
    "Span",
    "Tracer",
    "OuterIterationSpans",
    "activate",
    "deactivate",
    "activated",
    "current_tracer",
    "merge_spool",
    "read_trace",
    "validate_trace",
    "wall_clock_breakdown",
    "clamp_negative_durations",
    "new_span_id",
]

#: Ambient current span — the default parent of newly started spans.
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar("repro_obs_current_span", default=None)

#: Process-wide active tracer (see :func:`activate` / :func:`current_tracer`).
_ACTIVE_TRACER: ContextVar["Tracer | None"] = ContextVar("repro_obs_active_tracer", default=None)

_UNSET = object()


def new_span_id() -> str:
    """A fresh 16-hex-char span/trace identifier."""
    return uuid.uuid4().hex[:16]


class Span:
    """One named, timed region of a run.

    Spans are created started (via :meth:`Tracer.span`) and emitted to the
    tracer's sink when ended.  Use them either as context managers — which
    also makes them the ambient parent of spans opened inside — or hold them
    open across an asynchronous lifetime and call :meth:`end` explicitly (the
    streaming runner does this for per-job spans that stay open while the
    job's worker runs).
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "status",
        "start",
        "wall",
        "duration",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        parent_id: str | None,
        tracer: "Tracer | None" = None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attributes: dict[str, Any] = dict(attributes or {})
        self.status = "ok"
        self.start = time.monotonic()
        self.wall = time.time()
        self.duration: float | None = None
        self._tracer = tracer
        self._token = None

    @property
    def ended(self) -> bool:
        """True once :meth:`end` ran (the span was emitted to the sink)."""
        return self.duration is not None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute (JSON-able value) to the span."""
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def end(self, status: str | None = None) -> None:
        """Close the span (idempotent) and emit it to the tracer's sink."""
        if self.ended:
            return
        self.duration = time.monotonic() - self.start
        if status is not None:
            self.status = status
        if self._tracer is not None:
            self._tracer._emit(self)

    def to_event(self) -> dict[str, Any]:
        """The span as one JSON-able NDJSON event."""
        return {
            "event": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "wall": self.wall,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.set_attribute("error", f"{exc_type.__name__}: {exc}")
            self.end(status="error")
        else:
            self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class Tracer:
    """Factory and emitter for :class:`Span` objects plus a metrics registry.

    Parameters
    ----------
    sink:
        Destination of finished spans (default: a fresh
        :class:`~repro.obs.sinks.InMemorySink`).
    metrics:
        The :class:`~repro.obs.metrics.MetricsRegistry` the instrumented
        layers fold their counters into (a fresh one by default).
    trace_id:
        Identifier stamped on every span; workers reuse the parent's so a
        merged trace is one logical timeline.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("outer") as outer:
    ...     with tracer.span("inner") as inner:
    ...         pass
    >>> inner.parent_id == outer.span_id
    True
    """

    def __init__(
        self,
        sink: EventSink | None = None,
        metrics: MetricsRegistry | None = None,
        trace_id: str | None = None,
    ) -> None:
        self.sink = sink if sink is not None else InMemorySink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace_id = trace_id or new_span_id()

    # -- span lifecycle --------------------------------------------------------

    def span(self, name: str, parent: "Span | str | None" = _UNSET, **attributes: Any) -> Span:
        """Start (and return) a new span.

        ``parent`` defaults to the ambient current span; pass an explicit
        :class:`Span`, a span id string, or ``None`` (a root span) to
        override.  The span is emitted when ended — via ``with`` or an
        explicit :meth:`Span.end`.
        """
        if parent is _UNSET:
            ambient = _CURRENT_SPAN.get()
            parent_id = ambient.span_id if ambient is not None else None
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        return Span(name, self.trace_id, parent_id, tracer=self, attributes=attributes)

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        parent: "Span | str | None" = None,
        wall: float | None = None,
        status: str = "ok",
        **attributes: Any,
    ) -> dict[str, Any]:
        """Emit an already-measured span (synthesized timings).

        Used where the region was timed outside a context manager: queue
        waits, worker spawn gaps reconstructed at merge time, per-outer-
        iteration slices.  Returns the emitted event.
        """
        span = Span.__new__(Span)
        span.name = name
        span.trace_id = self.trace_id
        span.span_id = new_span_id()
        span.parent_id = parent.span_id if isinstance(parent, Span) else parent
        span.attributes = dict(attributes)
        span.status = status
        span.start = float(start)
        span.wall = time.time() if wall is None else float(wall)
        span.duration = max(float(duration), 0.0)
        span._tracer = None
        span._token = None
        event = span.to_event()
        self.sink.emit(event)
        return event

    def _emit(self, span: Span) -> None:
        """Hand one finished span to the sink."""
        self.sink.emit(span.to_event())

    def current_span(self) -> Span | None:
        """The ambient current span (``None`` outside any ``with span:``)."""
        return _CURRENT_SPAN.get()

    @contextlib.contextmanager
    def use_parent(self, span: Span | None) -> Iterator[None]:
        """Make ``span`` the ambient parent for the duration of the block.

        Unlike entering the span itself, this neither re-starts nor ends it —
        it only redirects where newly opened spans attach.  The runner uses
        it to parent inline solver spans under a long-lived job span.
        """
        token = _CURRENT_SPAN.set(span)
        try:
            yield
        finally:
            _CURRENT_SPAN.reset(token)

    def close(self) -> None:
        """Close the sink (idempotent)."""
        self.sink.close()


class OuterIterationSpans:
    """Zero-arg solver hook that emits one ``outer_iter`` span per call.

    The solver backends invoke their ``deadline_hooks`` once per outer
    iteration; this hook turns those invocations into spans by slicing the
    time between consecutive calls.  Attach it where the solve runs (the
    worker process or the inline path) and each outer iteration of
    LEAST/SparseLEAST/NOTEARS becomes a timed child of the ``solve`` span.
    """

    def __init__(self, tracer: Tracer, parent: Span | None = None) -> None:
        self._tracer = tracer
        self._parent = parent if parent is not None else tracer.current_span()
        self._last = time.monotonic()
        self._last_wall = time.time()
        self.n_calls = 0

    def __call__(self) -> None:
        """Close the current outer-iteration slice as an ``outer_iter`` span."""
        now = time.monotonic()
        self._tracer.record_span(
            "outer_iter",
            start=self._last,
            duration=now - self._last,
            parent=self._parent,
            wall=self._last_wall,
            index=self.n_calls,
        )
        self._last = now
        self._last_wall = time.time()
        self.n_calls += 1


# -- active tracer ------------------------------------------------------------


def activate(tracer: Tracer) -> None:
    """Make ``tracer`` the process-wide active tracer.

    Instrumented code that cannot be handed a tracer explicitly (e.g.
    :func:`repro.serve.job.execute_job` deep inside a worker) picks it up via
    :func:`current_tracer`.
    """
    _ACTIVE_TRACER.set(tracer)


def deactivate() -> None:
    """Clear the active tracer."""
    _ACTIVE_TRACER.set(None)


def current_tracer() -> Tracer | None:
    """The active tracer, or ``None`` when tracing is off."""
    return _ACTIVE_TRACER.get()


@contextlib.contextmanager
def activated(tracer: Tracer) -> Iterator[Tracer]:
    """Context manager form of :func:`activate` / :func:`deactivate`."""
    token = _ACTIVE_TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER.reset(token)


# -- cross-process merge and analysis -----------------------------------------


def clamp_negative_durations(spans: list[dict[str, Any]]) -> int:
    """Clamp negative span durations to zero in place; return the clamp count.

    Negative durations are cross-process clock-skew artifacts: a worker's
    synthesized span (e.g. a spawn gap reconstructed at merge time) can end
    up with ``duration < 0`` when the two processes read ``time.monotonic()``
    a scheduling quantum apart.  Left alone they *subtract* from
    :func:`wall_clock_breakdown` totals; clamped spans are marked with a
    ``clamped_negative_duration`` attribute so :func:`validate_trace` can
    report how often it happened.
    """
    n_clamped = 0
    for span in spans:
        duration = span.get("duration")
        if duration is not None and float(duration) < 0.0:
            span["duration"] = 0.0
            span.setdefault("attributes", {})["clamped_negative_duration"] = True
            n_clamped += 1
    return n_clamped


def merge_spool(
    tracer: Tracer,
    spool_path: str | Path,
    adopt_parent: Span | str | None = None,
) -> list[dict[str, Any]]:
    """Fold a worker's spool file into the parent trace, adopting orphans.

    Every complete span event of the spool is re-emitted into ``tracer``'s
    sink.  Spans whose ``parent_id`` is neither in the spool nor the
    designated ``adopt_parent`` — the children of spans the worker never got
    to flush before dying — are re-parented onto ``adopt_parent`` and marked
    with an ``adopted`` attribute, so a merged trace never contains orphans.

    Parameters
    ----------
    tracer:
        The parent-side tracer receiving the events.
    spool_path:
        The worker's NDJSON spool (missing file = no events, not an error).
    adopt_parent:
        The parent-side span (typically the job span) that worker-root spans
        point at and that orphaned spans are adopted by.

    Returns
    -------
    list of dict
        The merged span events (after adoption rewrites).
    """
    adopt_id = adopt_parent.span_id if isinstance(adopt_parent, Span) else adopt_parent
    events = [
        event
        for event in read_ndjson(spool_path)
        if event.get("event") == "span" and event.get("span_id")
    ]
    clamp_negative_durations(events)
    known = {event["span_id"] for event in events}
    if adopt_id is not None:
        known.add(adopt_id)
    for event in events:
        parent_id = event.get("parent_id")
        if parent_id is None or parent_id not in known:
            event["parent_id"] = adopt_id
            if parent_id is not None:
                event.setdefault("attributes", {})["adopted"] = True
        tracer.sink.emit(event)
    return events


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Read the span events of an NDJSON trace file (other events skipped).

    Negative durations — clock-skew artifacts of cross-process merges — are
    clamped to zero and flagged (see :func:`clamp_negative_durations`).
    """
    spans = [
        event
        for event in read_ndjson(path)
        if event.get("event") == "span" and event.get("span_id")
    ]
    clamp_negative_durations(spans)
    return spans


def validate_trace(spans: list[dict[str, Any]]) -> dict[str, Any]:
    """Structural health report of a span list.

    Returns a dict with ``n_spans``, ``n_roots`` (spans with no parent),
    ``n_orphans`` and ``orphans`` (span ids whose ``parent_id`` references a
    span absent from the list), ``n_clamped_durations`` (spans whose negative
    duration was clamped to zero — either still raw-negative here or already
    flagged by :func:`clamp_negative_durations`), and ``names`` (distinct
    span names).  A well-merged trace has ``n_orphans == 0``.
    """
    ids = {span["span_id"] for span in spans}
    orphans = [
        span["span_id"]
        for span in spans
        if span.get("parent_id") is not None and span["parent_id"] not in ids
    ]
    n_clamped = sum(
        1
        for span in spans
        if (span.get("attributes") or {}).get("clamped_negative_duration")
        or float(span.get("duration") or 0.0) < 0.0
    )
    return {
        "n_spans": len(spans),
        "n_roots": sum(1 for span in spans if span.get("parent_id") is None),
        "n_orphans": len(orphans),
        "orphans": orphans,
        "n_clamped_durations": n_clamped,
        "names": sorted({span.get("name", "") for span in spans}),
    }


def wall_clock_breakdown(spans: list[dict[str, Any]]) -> dict[str, float]:
    """Total seconds spent per span name across a trace.

    This is the number the serving benchmark pins: summing ``worker_spawn``
    vs ``solve`` vs ``queue_wait`` durations turns "startup dominates" from a
    hypothesis into a measurement.  Spans with no recorded duration (killed
    before ending) contribute 0.
    """
    totals: dict[str, float] = {}
    for span in spans:
        name = span.get("name", "")
        duration = span.get("duration")
        totals[name] = totals.get(name, 0.0) + float(duration or 0.0)
    return totals
