"""Process-local metrics: counters, gauges, histograms in one registry.

The serving, sharding, and re-learn layers each kept their own ad-hoc
counters (``StreamTelemetry``, ``WindowStats``, ``cache.stats()``); this
module is the shared registry they fold into, so one ``metrics.json`` (or one
Prometheus text exposition) describes a whole run.

Design notes:

* instruments are identified by ``(name, labels)`` — asking the registry for
  the same pair twice returns the *same* instrument, so call sites never need
  to keep handles around;
* a metric name is bound to one instrument kind; re-using ``jobs_total`` as
  both a counter and a gauge is a
  :class:`~repro.exceptions.ValidationError`, not a silent overwrite;
* histograms use fixed cumulative buckets (Prometheus ``le`` semantics) so
  exporting them costs O(buckets), not O(observations).
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping

from repro.exceptions import ValidationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS"]

#: Default histogram bucket upper bounds, in seconds — spanning the sub-ms
#: cache hits through multi-minute sharded solves this repo measures.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (jobs finished, workers killed, ...).

    Attributes
    ----------
    name, labels:
        Identity of the instrument within its registry.
    value:
        Current count.
    """

    kind = "counter"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += float(amount)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view of the counter."""
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A value that can go up and down (live workers, queue depth, ...).

    Attributes
    ----------
    name, labels:
        Identity of the instrument within its registry.
    value:
        Last value set.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        self.value += float(amount)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view of the gauge."""
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Cumulative-bucket distribution (Prometheus ``le`` semantics).

    Attributes
    ----------
    name, labels:
        Identity of the instrument within its registry.
    bounds:
        Sorted bucket upper bounds; an implicit ``+Inf`` bucket catches the
        rest.
    count, sum:
        Number and total of all observations.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        buckets: Iterable[float] | None = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels)
        if buckets is None:
            buckets = DEFAULT_BUCKETS
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValidationError(f"histogram {name} needs at least one bucket bound")
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # trailing +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self._bucket_counts[index] += 1
                return
        self._bucket_counts[-1] += 1

    def cumulative_buckets(self) -> dict[str, int]:
        """``{upper_bound: cumulative count}`` including the ``+Inf`` bucket."""
        cumulative: dict[str, int] = {}
        running = 0
        for bound, count in zip(self.bounds, self._bucket_counts):
            running += count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = running + self._bucket_counts[-1]
        return cumulative

    @property
    def mean(self) -> float:
        """Mean observation (0.0 with no observations)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation within buckets.

        Follows Prometheus ``histogram_quantile`` semantics: the quantile is
        located in the first bucket whose cumulative count reaches
        ``q * count`` and interpolated linearly between the bucket's bounds
        (the first bucket interpolates up from 0).  Observations that landed
        in the ``+Inf`` bucket clamp to the highest finite bound — an
        estimate, as good as the bucket layout.  Returns 0.0 with no
        observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self._bucket_counts):
            if count > 0 and running + count >= target:
                fraction = (target - running) / count
                return lower + (bound - lower) * fraction
            running += count
            lower = bound
        return self.bounds[-1]

    def percentiles(self) -> dict[str, float]:
        """The ``{"p50", "p95", "p99"}`` estimates (see :meth:`quantile`)."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view of the histogram (buckets plus p50/p95/p99)."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "percentiles": self.percentiles(),
            "buckets": self.cumulative_buckets(),
        }


class MetricsRegistry:
    """One process-local home for every instrument of a run.

    Asking for the same ``(name, labels)`` pair twice returns the same
    instrument; asking for an existing name with a different *kind* raises.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("jobs_total", status="ok").inc()
    >>> registry.counter("jobs_total", status="ok").value
    1.0
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple], Any] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, factory, kind: str, name: str, labels: Mapping[str, Any], **extra):
        bound_kind = self._kinds.get(name)
        if bound_kind is not None and bound_kind != kind:
            raise ValidationError(
                f"metric {name!r} is already registered as a {bound_kind}, "
                f"cannot re-register as a {kind}"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory(name, {str(k): str(v) for k, v in labels.items()}, **extra)
            self._instruments[key] = instrument
            self._kinds[name] = kind
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get or create the :class:`Counter` for ``(name, labels)``."""
        return self._get(Counter, "counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get or create the :class:`Gauge` for ``(name, labels)``."""
        return self._get(Gauge, "gauge", name, labels)

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None, **labels: Any
    ) -> Histogram:
        """Get or create the :class:`Histogram` for ``(name, labels)``.

        ``buckets`` only matters on first creation; later calls return the
        existing instrument unchanged.
        """
        return self._get(Histogram, "histogram", name, labels, buckets=buckets)

    def instruments(self) -> list[Any]:
        """Every registered instrument, sorted by (name, labels)."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict[str, Any]:
        """JSON-able dump grouped by instrument kind (``metrics.json``)."""
        grouped: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        for instrument in self.instruments():
            grouped[instrument.kind + "s"].append(instrument.as_dict())
        return grouped

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every instrument.

        Counters and gauges become one sample each; histograms expand into
        cumulative ``_bucket`` samples plus ``_sum`` and ``_count``.
        """
        lines: list[str] = []
        seen_types: set[str] = set()
        for instrument in self.instruments():
            if instrument.name not in seen_types:
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
                seen_types.add(instrument.name)
            if isinstance(instrument, Histogram):
                for bound, count in instrument.cumulative_buckets().items():
                    labels = {**instrument.labels, "le": bound}
                    lines.append(
                        f"{instrument.name}_bucket{_format_labels(labels)} {count}"
                    )
                lines.append(
                    f"{instrument.name}_sum{_format_labels(instrument.labels)} "
                    f"{_format_value(instrument.sum)}"
                )
                lines.append(
                    f"{instrument.name}_count{_format_labels(instrument.labels)} "
                    f"{instrument.count}"
                )
            else:
                lines.append(
                    f"{instrument.name}{_format_labels(instrument.labels)} "
                    f"{_format_value(instrument.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _format_labels(labels: Mapping[str, str]) -> str:
    """``{k="v",...}`` in sorted key order, or ``""`` with no labels."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Render a sample value (integers without the trailing ``.0``)."""
    if math.isfinite(value) and float(value).is_integer():
        return str(int(value))
    return repr(float(value))
