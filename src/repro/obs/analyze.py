"""Trace analytics: the consumption side of :mod:`repro.obs`.

PR 6 made the system *emit* telemetry — span trees across serve, shard, and
the solver loop, merged orphan-free across worker processes.  This module
turns those raw NDJSON traces into answers:

* :class:`TraceModel` — a trace loaded into an indexed span tree
  (parent/child index, roots, per-worker lanes, orphan/adopted/clamped
  accounting);
* :func:`critical_path` — the chain of spans that actually bounds the
  wall-clock of a run; its segments tile the root span exactly, so the total
  always equals the root duration;
* :func:`phase_attribution` / :func:`self_time_by_name` — per-span-name
  wall-clock totals *and* self times (children subtracted as an interval
  union, so overlapping attempt spans from requeued jobs never double-count);
* :func:`worker_stats` / :func:`queue_wait_stats` — utilization per worker
  lane and queue-wait distribution, the two numbers the ROADMAP's
  worker-pool item needs;
* :func:`diff_traces` — two traces reduced to per-span-name count / total /
  self-time deltas with tolerance-based regression detection (the
  ``repro-obs diff`` CI gate);
* :func:`to_chrome_trace` — Chrome trace-event JSON loadable in Perfetto or
  ``chrome://tracing``, with one timeline lane per worker process and RSS
  counter tracks from :class:`~repro.obs.sampler.ResourceSampler` events;
* :func:`render_waterfall` — a terminal waterfall of the span tree;
* :func:`wall_clock_section` — the span-derived ``wall_clock_breakdown``
  section of ``BENCH_serve.json`` (the benchmark imports this instead of
  keeping a private copy of the logic).

Everything here is read-only over span event dicts (see
``docs/observability.md`` for the NDJSON schema) — no tracer required.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.exceptions import ValidationError
from repro.obs.sinks import json_default, read_ndjson
from repro.obs.tracing import (
    clamp_negative_durations,
    validate_trace,
    wall_clock_breakdown,
)

__all__ = [
    "TraceModel",
    "CriticalPath",
    "TraceDiff",
    "critical_path",
    "phase_attribution",
    "self_time_by_name",
    "worker_stats",
    "queue_wait_stats",
    "diff_traces",
    "to_chrome_trace",
    "render_waterfall",
    "wall_clock_section",
    "peak_rss_by_pid",
    "resource_events",
]

#: Span names whose totals the serving benchmark has always pinned; they are
#: emitted as ``<name>_seconds`` keys by :func:`wall_clock_section` even when
#: absent from the trace (0.0), so the ``BENCH_serve.json`` schema is stable.
BREAKDOWN_NAMES: tuple[str, ...] = (
    "worker_spawn",
    "data_materialize",
    "solve",
    "queue_wait",
    "cache_store",
    "stitch",
)


def _start(span: Mapping[str, Any]) -> float:
    """Monotonic start of a span event (0.0 when absent)."""
    return float(span.get("start") or 0.0)


def _end(span: Mapping[str, Any]) -> float:
    """Monotonic end of a span event (open spans end at their start)."""
    return _start(span) + float(span.get("duration") or 0.0)


def resource_events(events: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """The ``resource`` sampler events of a mixed NDJSON event list."""
    return [dict(e) for e in events if e.get("event") == "resource"]


class TraceModel:
    """A trace loaded into an indexed span tree.

    Builds the parent/child index once so every analysis (critical path,
    attribution, lanes, waterfall) is a cheap walk instead of a re-scan.
    Negative span durations — cross-process clock-skew artifacts — are
    clamped to zero on construction and counted, never silently folded into
    breakdowns.

    Parameters
    ----------
    spans:
        Span event dicts (``event == "span"``); non-span events are ignored.
    resources:
        Optional ``resource`` events (from
        :class:`~repro.obs.sampler.ResourceSampler`) kept alongside the tree
        for RSS/CPU attribution.

    Attributes
    ----------
    spans:
        The span events, in file order (clamped copies).
    resources:
        The resource events handed in (possibly empty).
    roots:
        Spans with no parent, plus orphans (spans whose parent is absent
        from the trace) so no span is unreachable from a root.
    orphans:
        The orphan subset of :attr:`roots` (empty for a well-merged trace).
    n_adopted:
        Spans re-parented by :func:`~repro.obs.merge_spool` adoption.
    n_clamped:
        Spans whose negative duration was clamped to zero.
    """

    def __init__(
        self,
        spans: Iterable[Mapping[str, Any]],
        resources: Iterable[Mapping[str, Any]] | None = None,
    ) -> None:
        self.spans: list[dict[str, Any]] = [
            dict(span)
            for span in spans
            if span.get("event", "span") == "span" and span.get("span_id")
        ]
        self.n_clamped = clamp_negative_durations(self.spans)
        self.resources: list[dict[str, Any]] = list(resources or [])
        self._by_id: dict[str, dict[str, Any]] = {
            span["span_id"]: span for span in self.spans
        }
        self._children: dict[str | None, list[dict[str, Any]]] = {}
        self.roots: list[dict[str, Any]] = []
        self.orphans: list[dict[str, Any]] = []
        for span in self.spans:
            parent_id = span.get("parent_id")
            if parent_id is None:
                self.roots.append(span)
            elif parent_id not in self._by_id:
                self.orphans.append(span)
                self.roots.append(span)
            else:
                self._children.setdefault(parent_id, []).append(span)
        for children in self._children.values():
            children.sort(key=_start)
        self.roots.sort(key=_start)
        self.n_adopted = sum(
            1 for span in self.spans if (span.get("attributes") or {}).get("adopted")
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "TraceModel":
        """Load a model from an NDJSON trace file.

        Tolerates the truncated final line of a killed writer (via
        :func:`~repro.obs.read_ndjson`) and keeps any ``resource`` events
        found in the same file.
        """
        events = read_ndjson(path)
        return cls(
            [e for e in events if e.get("event") == "span"],
            resources=resource_events(events),
        )

    def __len__(self) -> int:
        return len(self.spans)

    def node(self, span_id: str) -> dict[str, Any] | None:
        """The span event with this id, or ``None``."""
        return self._by_id.get(span_id)

    def children_of(self, span_id: str | None) -> list[dict[str, Any]]:
        """Direct children of a span, sorted by start time."""
        return list(self._children.get(span_id, []))

    def root(self) -> dict[str, Any] | None:
        """The longest-duration root span — the run a critical path bounds."""
        if not self.roots:
            return None
        return max(self.roots, key=lambda span: float(span.get("duration") or 0.0))

    def interval(self) -> tuple[float, float]:
        """``(earliest start, latest end)`` across every span; ``(0, 0)`` empty."""
        if not self.spans:
            return (0.0, 0.0)
        return (min(_start(s) for s in self.spans), max(_end(s) for s in self.spans))

    def lanes(self) -> dict[str, list[dict[str, Any]]]:
        """Spans grouped into per-process timeline lanes.

        Every descendant of a ``worker`` span (the root a worker process
        emits, carrying its ``pid`` attribute) lands in a ``worker-<pid>``
        lane; everything else is the ``parent`` lane.  This is the lane
        assignment the Chrome export uses for one timeline row per process.
        """
        lanes: dict[str, list[dict[str, Any]]] = {"parent": []}
        lane_of: dict[str, str] = {}
        # Two passes: first mark worker roots, then flood lanes downward.
        stack: list[tuple[dict[str, Any], str]] = []
        for span in self.spans:
            if span.get("name") == "worker":
                pid = (span.get("attributes") or {}).get("pid", span["span_id"])
                stack.append((span, f"worker-{pid}"))
        while stack:
            span, lane = stack.pop()
            lane_of[span["span_id"]] = lane
            for child in self.children_of(span["span_id"]):
                stack.append((child, lane))
        for span in self.spans:
            lane = lane_of.get(span["span_id"], "parent")
            lanes.setdefault(lane, []).append(span)
        return lanes


# -- critical path -------------------------------------------------------------


@dataclass
class CriticalPath:
    """The chain of spans bounding a root span's wall clock.

    Attributes
    ----------
    root:
        The root span event the path decomposes.
    segments:
        Chronological ``{span_id, name, start, end, duration}`` records; at
        every instant of the root's lifetime exactly one segment is active,
        so ``sum(durations) == root duration`` by construction.
    """

    root: dict[str, Any]
    segments: list[dict[str, Any]] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Sum of all segment durations (equals the root duration)."""
        return sum(seg["duration"] for seg in self.segments)

    def by_name(self) -> dict[str, float]:
        """Critical-path seconds aggregated per span name, largest first."""
        totals: dict[str, float] = {}
        for seg in self.segments:
            totals[seg["name"]] = totals.get(seg["name"], 0.0) + seg["duration"]
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view (the ``repro-obs critical-path --json`` payload)."""
        return {
            "root_name": self.root.get("name"),
            "root_span_id": self.root.get("span_id"),
            "root_duration": float(self.root.get("duration") or 0.0),
            "total_seconds": self.total_seconds,
            "n_segments": len(self.segments),
            "segments": list(self.segments),
            "by_name": self.by_name(),
        }


def critical_path(
    model: TraceModel, root: dict[str, Any] | str | None = None
) -> CriticalPath:
    """Extract the critical path under a root span.

    Walks the tree backwards from the root's end: at each instant the path
    descends into the deepest child still active, and intervals covered by no
    child are attributed to the enclosing span itself.  Because the segments
    tile ``[root.start, root.end]`` exactly, the path total always equals the
    root duration — the invariant ``repro-obs critical-path`` prints and the
    tests pin.

    Parameters
    ----------
    model:
        The trace.
    root:
        A span event, a span id, or ``None`` for the longest root span.

    Raises
    ------
    ValidationError
        The trace is empty or the requested root is unknown.
    """
    if isinstance(root, str):
        node = model.node(root)
        if node is None:
            raise ValidationError(f"no span with id {root!r} in the trace")
        root = node
    if root is None:
        root = model.root()
    if root is None:
        raise ValidationError("cannot extract a critical path from an empty trace")

    segments: list[dict[str, Any]] = []

    def _self_segment(span: dict[str, Any], lo: float, hi: float) -> None:
        segments.append(
            {
                "span_id": span["span_id"],
                "name": span.get("name", ""),
                "start": lo,
                "end": hi,
                "duration": hi - lo,
            }
        )

    def _visit(span: dict[str, Any], lo: float, hi: float) -> None:
        """Attribute the window ``[lo, hi]`` of ``span`` (backwards)."""
        cursor = hi
        children = model.children_of(span["span_id"])
        while cursor - lo > 1e-12:
            best = None
            best_end = lo
            for child in children:
                child_end = min(_end(child), cursor)
                if _start(child) < cursor and child_end > best_end:
                    best, best_end = child, child_end
            if best is None:
                _self_segment(span, lo, cursor)
                return
            if best_end < cursor:
                _self_segment(span, best_end, cursor)
            child_lo = max(_start(best), lo)
            _visit(best, child_lo, best_end)
            cursor = child_lo
        # Window exhausted; nothing left to attribute.

    _visit(root, _start(root), _end(root))
    segments.reverse()  # built backwards; present chronologically
    return CriticalPath(root=root, segments=segments)


# -- per-phase attribution -----------------------------------------------------


def _union_seconds(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``(lo, hi)`` intervals."""
    total = 0.0
    last_hi = float("-inf")
    for lo, hi in sorted(intervals):
        if hi <= last_hi:
            continue
        total += hi - max(lo, last_hi)
        last_hi = hi
    return total


def self_time_by_name(model: TraceModel) -> dict[str, float]:
    """Seconds per span name with child time subtracted as an interval union.

    Children are subtracted as a *union*, not a sum: a requeued job whose
    attempt spans overlap (the old attempt's ``queue_wait`` and the new
    worker's spans share wall-clock) still subtracts each covered instant
    once, so self time can never go negative from double-counted children.
    """
    totals: dict[str, float] = {}
    for span in model.spans:
        lo, hi = _start(span), _end(span)
        covered = _union_seconds(
            [
                (max(_start(child), lo), min(_end(child), hi))
                for child in model.children_of(span["span_id"])
                if _end(child) > lo and _start(child) < hi
            ]
        )
        name = span.get("name", "")
        totals[name] = totals.get(name, 0.0) + max((hi - lo) - covered, 0.0)
    return totals


def phase_attribution(model: TraceModel) -> dict[str, dict[str, float]]:
    """Per span name: ``{count, total_seconds, self_seconds}``, largest first.

    ``total_seconds`` is the plain duration sum (:func:`wall_clock_breakdown`);
    ``self_seconds`` removes time covered by child spans, so phases stop
    double-reporting their children's work.
    """
    totals = wall_clock_breakdown(model.spans)
    selfs = self_time_by_name(model)
    counts: dict[str, int] = {}
    for span in model.spans:
        name = span.get("name", "")
        counts[name] = counts.get(name, 0) + 1
    return {
        name: {
            "count": counts.get(name, 0),
            "total_seconds": totals.get(name, 0.0),
            "self_seconds": selfs.get(name, 0.0),
        }
        for name in sorted(totals, key=lambda n: -totals[n])
    }


# -- worker / queue statistics -------------------------------------------------


def worker_stats(model: TraceModel) -> dict[str, Any]:
    """Utilization per worker lane over the traced interval.

    For each ``worker-<pid>`` lane (see :meth:`TraceModel.lanes`): busy
    seconds (union of the lane's span intervals), span count, and utilization
    relative to the whole trace interval.  The summary means answer the
    ROADMAP's question — are workers busy, or waiting for jobs to spawn?
    """
    t0, t1 = model.interval()
    horizon = max(t1 - t0, 1e-12)
    lanes = model.lanes()
    workers: dict[str, dict[str, float]] = {}
    for lane, spans in lanes.items():
        if lane == "parent":
            continue
        busy = _union_seconds([(_start(s), _end(s)) for s in spans])
        workers[lane] = {
            "n_spans": len(spans),
            "busy_seconds": busy,
            "utilization": busy / horizon,
        }
    utils = [w["utilization"] for w in workers.values()]
    return {
        "n_workers": len(workers),
        "trace_seconds": t1 - t0,
        "mean_utilization": sum(utils) / len(utils) if utils else 0.0,
        "workers": dict(sorted(workers.items())),
    }


def queue_wait_stats(model: TraceModel, name: str = "queue_wait") -> dict[str, float]:
    """Distribution of ``queue_wait`` span durations (count/total/mean/p50/p95/max)."""
    waits = sorted(
        float(span.get("duration") or 0.0)
        for span in model.spans
        if span.get("name") == name
    )
    if not waits:
        return {"count": 0, "total_seconds": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "count": len(waits),
        "total_seconds": sum(waits),
        "mean": sum(waits) / len(waits),
        "p50": waits[len(waits) // 2],
        "p95": waits[min(int(0.95 * len(waits)), len(waits) - 1)],
        "max": waits[-1],
    }


# -- trace diffing -------------------------------------------------------------


@dataclass
class TraceDiff:
    """Per-span-name deltas between a baseline trace and a candidate trace.

    Attributes
    ----------
    rows:
        One record per span name present in either trace:
        ``{name, count_a, count_b, total_a, total_b, self_a, self_b,
        delta_total, ratio}`` (``ratio`` is ``total_b / total_a``, ``inf``
        for names new in the candidate).
    """

    rows: list[dict[str, Any]] = field(default_factory=list)

    def regressions(
        self, tolerance: float = 0.25, min_seconds: float = 0.05
    ) -> list[dict[str, Any]]:
        """Rows whose candidate total regressed past the tolerance.

        A name regresses when ``total_b > total_a * (1 + tolerance)`` *and*
        the absolute growth is at least ``min_seconds`` (so microsecond spans
        can't fail a gate on relative noise).  Names absent from the baseline
        regress when their candidate total alone clears ``min_seconds``.
        """
        out = []
        for row in self.rows:
            delta = row["total_b"] - row["total_a"]
            if delta < min_seconds:
                continue
            if row["total_b"] > row["total_a"] * (1.0 + tolerance):
                out.append(row)
        return out

    def as_dict(self) -> dict[str, Any]:
        """JSON-able view (the ``repro-obs diff --json`` payload)."""
        return {"rows": list(self.rows)}


def diff_traces(
    baseline: TraceModel | list[dict[str, Any]],
    candidate: TraceModel | list[dict[str, Any]],
) -> TraceDiff:
    """Reduce two traces to per-span-name count/total/self-time deltas."""
    a = baseline if isinstance(baseline, TraceModel) else TraceModel(baseline)
    b = candidate if isinstance(candidate, TraceModel) else TraceModel(candidate)
    attr_a = phase_attribution(a)
    attr_b = phase_attribution(b)
    rows = []
    for name in sorted(set(attr_a) | set(attr_b)):
        ra = attr_a.get(name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0})
        rb = attr_b.get(name, {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0})
        total_a, total_b = ra["total_seconds"], rb["total_seconds"]
        rows.append(
            {
                "name": name,
                "count_a": ra["count"],
                "count_b": rb["count"],
                "total_a": total_a,
                "total_b": total_b,
                "self_a": ra["self_seconds"],
                "self_b": rb["self_seconds"],
                "delta_total": total_b - total_a,
                "ratio": (total_b / total_a) if total_a > 0 else float("inf"),
            }
        )
    rows.sort(key=lambda row: -abs(row["delta_total"]))
    return TraceDiff(rows=rows)


# -- exporters -----------------------------------------------------------------


def to_chrome_trace(model: TraceModel) -> dict[str, Any]:
    """The trace as Chrome trace-event JSON (Perfetto / ``chrome://tracing``).

    Every span becomes one complete (``"ph": "X"``) event on a per-process
    timeline lane — ``parent`` plus one ``worker-<pid>`` row each — with
    timestamps in microseconds relative to the earliest span.  Resource
    sampler events become ``rss_mb`` counter tracks.  Load the file via
    https://ui.perfetto.dev ("Open trace file") or ``chrome://tracing``.
    """
    t0, _ = model.interval()
    lanes = model.lanes()
    tids = {lane: index for index, lane in enumerate(sorted(lanes))}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro trace"},
        }
    ]
    for lane, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for lane, spans in lanes.items():
        tid = tids[lane]
        for span in spans:
            attributes = dict(span.get("attributes") or {})
            attributes["span_id"] = span["span_id"]
            attributes["status"] = span.get("status", "ok")
            events.append(
                {
                    "name": span.get("name", ""),
                    "cat": "span",
                    "ph": "X",
                    "ts": (_start(span) - t0) * 1e6,
                    "dur": float(span.get("duration") or 0.0) * 1e6,
                    "pid": 1,
                    "tid": tid,
                    "args": attributes,
                }
            )
    for event in model.resources:
        events.append(
            {
                "name": f"rss_mb:{event.get('role', 'proc')}-{event.get('pid')}",
                "ph": "C",
                "ts": (float(event.get("monotonic") or 0.0) - t0) * 1e6,
                "pid": 1,
                "args": {"rss_mb": float(event.get("rss_bytes") or 0.0) / 1e6},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(model: TraceModel, path: str | Path) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(model), default=json_default) + "\n")
    return path


def render_waterfall(
    model: TraceModel, width: int = 64, max_lines: int = 60
) -> str:
    """A terminal waterfall of the span tree.

    One line per span — indentation is tree depth, the bar is the span's
    position within the whole traced interval — capped at ``max_lines`` (a
    trailing summary line reports how many spans were elided).  This is the
    ``repro-obs summarize --waterfall`` view.
    """
    t0, t1 = model.interval()
    horizon = max(t1 - t0, 1e-12)
    lines: list[str] = []
    elided = 0

    label_width = 28

    def _emit(span: dict[str, Any], depth: int) -> None:
        nonlocal elided
        if len(lines) >= max_lines:
            elided += 1
        else:
            lo = int(round((_start(span) - t0) / horizon * (width - 1)))
            hi = int(round((_end(span) - t0) / horizon * (width - 1)))
            hi = max(hi, lo)
            bar = " " * lo + "#" * max(hi - lo, 1) + " " * (width - 1 - hi)
            label = ("  " * depth + span.get("name", ""))[:label_width]
            duration = float(span.get("duration") or 0.0)
            lines.append(f"{label:<{label_width}} |{bar}| {duration:>9.3f}s")
        for child in model.children_of(span["span_id"]):
            _emit(child, depth + 1)

    for root in model.roots:
        _emit(root, 0)
    if elided:
        lines.append(f"... ({elided} more spans elided; raise max_lines to see them)")
    return "\n".join(lines)


# -- resource accounting and the benchmark section -----------------------------


def peak_rss_by_pid(events: Iterable[Mapping[str, Any]]) -> dict[str, dict[str, Any]]:
    """Peak RSS and last CPU total per sampled pid.

    ``events`` may be a full NDJSON event list or pre-filtered ``resource``
    events.  CPU seconds are cumulative in ``/proc/<pid>/stat``, so the
    per-pid maximum *is* the total CPU the process consumed while sampled.
    """
    peaks: dict[str, dict[str, Any]] = {}
    for event in resource_events(events):
        pid = str(event.get("pid"))
        record = peaks.setdefault(
            pid,
            {"peak_rss_bytes": 0, "cpu_seconds": 0.0, "n_samples": 0,
             "role": event.get("role", "worker")},
        )
        record["peak_rss_bytes"] = max(
            record["peak_rss_bytes"], int(event.get("rss_bytes") or 0)
        )
        record["cpu_seconds"] = max(
            record["cpu_seconds"], float(event.get("cpu_seconds") or 0.0)
        )
        record["n_samples"] += 1
    return peaks


def wall_clock_section(model: TraceModel) -> dict[str, Any]:
    """The span-derived ``wall_clock_breakdown`` section of ``BENCH_serve.json``.

    Promotes what used to be benchmark-local logic into the library: the
    validation counters, the pinned per-phase second totals
    (:data:`BREAKDOWN_NAMES`), and — when the trace carries resource sampler
    events — peak RSS per worker.  The benchmark adds run-specific keys
    (``n_jobs``, file names) on top.
    """
    summary = validate_trace(model.spans)
    breakdown = wall_clock_breakdown(model.spans)
    section: dict[str, Any] = {
        "n_spans": summary["n_spans"],
        "n_orphans": summary["n_orphans"],
        "n_clamped_durations": summary["n_clamped_durations"],
    }
    for name in BREAKDOWN_NAMES:
        section[f"{name}_seconds"] = breakdown.get(name, 0.0)
    peaks = peak_rss_by_pid(model.resources)
    worker_peaks = {
        pid: record["peak_rss_bytes"]
        for pid, record in peaks.items()
        if record["role"] == "worker"
    }
    parent_peaks = [
        record["peak_rss_bytes"]
        for record in peaks.values()
        if record["role"] == "parent"
    ]
    section["n_sampled_processes"] = len(peaks)
    section["peak_rss_per_worker_bytes"] = worker_peaks
    section["max_worker_peak_rss_bytes"] = max(worker_peaks.values(), default=0)
    section["parent_peak_rss_bytes"] = max(parent_peaks, default=0)
    return section
