"""Per-process resource sampling from ``/proc`` — no psutil required.

The streaming engine's workers are disposable processes, so the question
"how much memory did that job actually use?" cannot be answered after the
fact: by the time the result arrives, the process is gone.
:class:`ResourceSampler` answers it live — a daemon thread polls
``/proc/<pid>/statm`` (resident pages → RSS bytes) and ``/proc/<pid>/stat``
(``utime + stime`` ticks → CPU seconds) for the parent and every tracked
worker pid, emitting periodic ``resource`` events into the same sink the
span events go to, so memory and CPU land *next to* the spans they explain.

Off Linux there is no ``/proc``, and the sampler degrades to a no-op:
:meth:`ResourceSampler.start` simply never launches the thread
(:func:`is_supported` is the gate).  There is deliberately no psutil
dependency — the two proc files are stable ABI and parsing them is ~15
lines.

Environment knobs
-----------------
``REPRO_OBS_SAMPLE_INTERVAL``
    Seconds between sampling sweeps (default 0.05).
``REPRO_OBS_SAMPLE``
    Set to ``0``/``false``/``no`` to disable sampling even where supported.

Event schema
------------
Each sweep emits one event per live tracked pid::

    {"event": "resource", "pid": 1234, "role": "worker", "job_id": "j-01",
     "rss_bytes": 73728000, "cpu_seconds": 1.84,
     "monotonic": 123.456, "wall": 1699999999.0}

``monotonic`` shares the clock of span ``start`` fields, which is what lets
:func:`repro.obs.analyze.to_chrome_trace` draw RSS counter tracks on the
same timeline as the spans.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any

from repro.obs.sinks import EventSink, InMemorySink

__all__ = ["ResourceSampler", "is_supported", "read_proc_sample"]

#: Default seconds between sampling sweeps.
DEFAULT_INTERVAL = 0.05


def _env_interval() -> float:
    """The sweep interval from ``REPRO_OBS_SAMPLE_INTERVAL`` (or the default)."""
    raw = os.environ.get("REPRO_OBS_SAMPLE_INTERVAL", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_INTERVAL
    return value if value > 0 else DEFAULT_INTERVAL


def _env_disabled() -> bool:
    """True when ``REPRO_OBS_SAMPLE`` turns sampling off."""
    return os.environ.get("REPRO_OBS_SAMPLE", "").strip().lower() in {"0", "false", "no", "off"}


def is_supported() -> bool:
    """Whether this platform exposes the ``/proc`` files the sampler reads."""
    try:
        return os.path.exists("/proc/self/statm") and os.path.exists("/proc/self/stat")
    except OSError:  # pragma: no cover - exotic /proc failures
        return False


def read_proc_sample(pid: int) -> dict[str, float] | None:
    """One ``{rss_bytes, cpu_seconds}`` sample for a pid, or ``None`` if gone.

    RSS comes from field 2 of ``/proc/<pid>/statm`` (resident pages ×
    ``SC_PAGE_SIZE``).  CPU is ``utime + stime`` from ``/proc/<pid>/stat``,
    parsed after the last ``')'`` because the comm field may itself contain
    spaces and parentheses, divided by ``SC_CLK_TCK``.  Any vanished-process
    error (the pid exited between sweeps) reads as ``None``, never raises.
    """
    try:
        with open(f"/proc/{pid}/statm", "rb") as handle:
            resident_pages = int(handle.read().split()[1])
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", "replace")
    except (FileNotFoundError, ProcessLookupError, PermissionError, OSError, IndexError, ValueError):
        return None
    try:
        rest = stat[stat.rfind(")") + 2 :].split()
        # rest[0] is field 3 (state); utime/stime are fields 14/15 → rest[11]/rest[12].
        cpu_ticks = int(rest[11]) + int(rest[12])
        page_size = os.sysconf("SC_PAGE_SIZE")
        clk_tck = os.sysconf("SC_CLK_TCK")
    except (IndexError, ValueError, OSError):
        return None
    return {
        "rss_bytes": float(resident_pages * page_size),
        "cpu_seconds": cpu_ticks / float(clk_tck),
    }


class ResourceSampler:
    """Background thread sampling RSS/CPU for tracked pids into an event sink.

    The streaming engine owns one sampler per run: the parent pid is tracked
    for the whole run, each worker pid from ``process.start()`` until its
    trace is merged, at which point :meth:`untrack` returns the peak record
    that gets stamped onto the job span (``worker_peak_rss_bytes`` /
    ``worker_cpu_seconds`` attributes).

    Parameters
    ----------
    sink:
        Destination for ``resource`` events (default: a private
        :class:`~repro.obs.sinks.InMemorySink`).  Sharing the tracer's NDJSON
        sink is safe — its writes are serialized.
    interval:
        Seconds between sweeps; ``None`` reads ``REPRO_OBS_SAMPLE_INTERVAL``
        (default 0.05).

    Notes
    -----
    Where :func:`is_supported` is false (no ``/proc``) or ``REPRO_OBS_SAMPLE``
    disables sampling, :meth:`start` is a no-op: :attr:`enabled` stays false,
    tracked pids accumulate zero samples, and every peak reads as zero — the
    engine's wiring code never needs a platform branch.
    """

    def __init__(self, sink: EventSink | None = None, interval: float | None = None) -> None:
        self.sink = sink if sink is not None else InMemorySink()
        self.interval = float(interval) if interval is not None else _env_interval()
        self.enabled = False
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        #: pid -> {"role": ..., "job_id": ...} for live tracked processes.
        self._tracked: dict[int, dict[str, Any]] = {}
        #: pid -> running peak record (kept after untrack in :attr:`peaks`).
        self.peaks: dict[int, dict[str, Any]] = {}
        self.n_samples = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> bool:
        """Launch the sampling thread; returns whether sampling is active.

        No-op (returns False) off Linux, under ``REPRO_OBS_SAMPLE=0``, or
        when already started.
        """
        if self._thread is not None:
            return self.enabled
        if not is_supported() or _env_disabled():
            return False
        self.enabled = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-resource-sampler", daemon=True
        )
        self._thread.start()
        return True

    def stop(self) -> None:
        """Stop the thread (idempotent) after one final sweep."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=max(self.interval * 20, 2.0))
        self._thread = None
        self.enabled = False

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()
        self.sample_once()  # final sweep so short-lived pids get >= 1 sample

    # -- tracking --------------------------------------------------------------

    def track(self, pid: int, role: str = "worker", job_id: str | None = None) -> None:
        """Start sampling ``pid`` (``role`` is ``"parent"`` or ``"worker"``)."""
        with self._lock:
            self._tracked[pid] = {"role": role, "job_id": job_id}
            self.peaks.setdefault(
                pid,
                {
                    "role": role,
                    "job_id": job_id,
                    "peak_rss_bytes": 0.0,
                    "cpu_seconds": 0.0,
                    "n_samples": 0,
                },
            )

    def untrack(self, pid: int) -> dict[str, Any]:
        """Stop sampling ``pid`` after one last sample; return its peak record.

        The record (``{role, job_id, peak_rss_bytes, cpu_seconds, n_samples}``)
        stays available in :attr:`peaks`; an untracked or never-sampled pid
        returns an all-zero record rather than raising.
        """
        self._sample_pid(pid)
        with self._lock:
            meta = self._tracked.pop(pid, {"role": "worker", "job_id": None})
            return dict(
                self.peaks.get(
                    pid,
                    {
                        "role": meta["role"],
                        "job_id": meta["job_id"],
                        "peak_rss_bytes": 0.0,
                        "cpu_seconds": 0.0,
                        "n_samples": 0,
                    },
                )
            )

    # -- sampling --------------------------------------------------------------

    def _sample_pid(self, pid: int) -> dict[str, Any] | None:
        """Sample one pid now; emit its event and fold it into the peak."""
        if not self.enabled:
            return None
        sample = read_proc_sample(pid)
        if sample is None:
            return None
        now = time.monotonic()
        with self._lock:
            meta = self._tracked.get(pid, {"role": "worker", "job_id": None})
            event = {
                "event": "resource",
                "pid": pid,
                "role": meta["role"],
                "job_id": meta["job_id"],
                "rss_bytes": sample["rss_bytes"],
                "cpu_seconds": sample["cpu_seconds"],
                "monotonic": now,
                "wall": time.time(),
            }
            peak = self.peaks.setdefault(
                pid,
                {
                    "role": meta["role"],
                    "job_id": meta["job_id"],
                    "peak_rss_bytes": 0.0,
                    "cpu_seconds": 0.0,
                    "n_samples": 0,
                },
            )
            peak["peak_rss_bytes"] = max(peak["peak_rss_bytes"], sample["rss_bytes"])
            peak["cpu_seconds"] = max(peak["cpu_seconds"], sample["cpu_seconds"])
            peak["n_samples"] += 1
            self.n_samples += 1
        try:
            self.sink.emit(event)
        except RuntimeError:  # sink closed mid-shutdown; drop the sample
            return None
        return event

    def sample_once(self) -> int:
        """Sample every tracked pid once; returns how many samples landed."""
        with self._lock:
            pids = list(self._tracked)
        return sum(1 for pid in pids if self._sample_pid(pid) is not None)

    # -- reporting -------------------------------------------------------------

    def peak_rss_bytes(self, pid: int) -> float:
        """Peak RSS observed for ``pid`` (0.0 when never sampled)."""
        with self._lock:
            return float(self.peaks.get(pid, {}).get("peak_rss_bytes", 0.0))

    def worker_peaks(self) -> dict[int, float]:
        """``{pid: peak_rss_bytes}`` for every pid tracked with role worker."""
        with self._lock:
            return {
                pid: float(record["peak_rss_bytes"])
                for pid, record in self.peaks.items()
                if record.get("role") == "worker"
            }
