"""Unified observability: tracing spans, metrics, and NDJSON event export.

``repro.obs`` is the one home for runtime telemetry across the serving
engine, the shard pipeline, and the solver loop.  It replaces five
previously disconnected islands (``StreamTelemetry``, ``WindowStats``,
``cache.stats()``, ``RunLog``, ad-hoc ``perf_counter`` calls) with:

* :class:`Span` / :class:`Tracer` — nested, timed regions with parent links,
  exported as NDJSON events (:class:`NDJSONFileSink`) or kept in memory
  (:class:`InMemorySink`);
* :class:`MetricsRegistry` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments with a JSON dump and a Prometheus text
  exposition;
* cross-process collection — workers spool spans to NDJSON files that the
  parent folds into one trace via :func:`merge_spool`, adopting the spans of
  workers that died before flushing so merged traces never contain orphans;
* the consumption side (:mod:`repro.obs.analyze`) — :class:`TraceModel`,
  :func:`critical_path`, per-phase attribution, trace diffing, Chrome
  trace-event export, and a terminal waterfall, surfaced by the
  ``repro-obs`` CLI (:mod:`repro.obs.cli`);
* per-process resource sampling (:class:`ResourceSampler`) — a background
  thread reading ``/proc`` RSS/CPU for the parent and live workers, so peak
  memory per job lands next to its spans.

See ``docs/observability.md`` for the span model and the event schema.
"""

from repro.obs.analyze import (
    CriticalPath,
    TraceDiff,
    TraceModel,
    critical_path,
    diff_traces,
    peak_rss_by_pid,
    phase_attribution,
    queue_wait_stats,
    render_waterfall,
    self_time_by_name,
    to_chrome_trace,
    wall_clock_section,
    worker_stats,
    write_chrome_trace,
)

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sampler import ResourceSampler
from repro.obs.sinks import (
    EventSink,
    InMemorySink,
    NDJSONFileSink,
    json_default,
    read_ndjson,
)
from repro.obs.tracing import (
    OuterIterationSpans,
    Span,
    Tracer,
    activate,
    activated,
    clamp_negative_durations,
    current_tracer,
    deactivate,
    merge_spool,
    new_span_id,
    read_trace,
    validate_trace,
    wall_clock_breakdown,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "EventSink",
    "InMemorySink",
    "NDJSONFileSink",
    "read_ndjson",
    "json_default",
    "Span",
    "Tracer",
    "OuterIterationSpans",
    "activate",
    "deactivate",
    "activated",
    "current_tracer",
    "merge_spool",
    "read_trace",
    "validate_trace",
    "wall_clock_breakdown",
    "clamp_negative_durations",
    "new_span_id",
    "ResourceSampler",
    "TraceModel",
    "CriticalPath",
    "TraceDiff",
    "critical_path",
    "phase_attribution",
    "self_time_by_name",
    "worker_stats",
    "queue_wait_stats",
    "diff_traces",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_waterfall",
    "wall_clock_section",
    "peak_rss_by_pid",
]
