"""Unified observability: tracing spans, metrics, and NDJSON event export.

``repro.obs`` is the one home for runtime telemetry across the serving
engine, the shard pipeline, and the solver loop.  It replaces five
previously disconnected islands (``StreamTelemetry``, ``WindowStats``,
``cache.stats()``, ``RunLog``, ad-hoc ``perf_counter`` calls) with:

* :class:`Span` / :class:`Tracer` — nested, timed regions with parent links,
  exported as NDJSON events (:class:`NDJSONFileSink`) or kept in memory
  (:class:`InMemorySink`);
* :class:`MetricsRegistry` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments with a JSON dump and a Prometheus text
  exposition;
* cross-process collection — workers spool spans to NDJSON files that the
  parent folds into one trace via :func:`merge_spool`, adopting the spans of
  workers that died before flushing so merged traces never contain orphans.

See ``docs/observability.md`` for the span model and the event schema.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import (
    EventSink,
    InMemorySink,
    NDJSONFileSink,
    json_default,
    read_ndjson,
)
from repro.obs.tracing import (
    OuterIterationSpans,
    Span,
    Tracer,
    activate,
    activated,
    current_tracer,
    deactivate,
    merge_spool,
    new_span_id,
    read_trace,
    validate_trace,
    wall_clock_breakdown,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "EventSink",
    "InMemorySink",
    "NDJSONFileSink",
    "read_ndjson",
    "json_default",
    "Span",
    "Tracer",
    "OuterIterationSpans",
    "activate",
    "deactivate",
    "activated",
    "current_tracer",
    "merge_spool",
    "read_trace",
    "validate_trace",
    "wall_clock_breakdown",
    "new_span_id",
]
