"""Pluggable event sinks: where trace events go once a span completes.

The tracing core (:mod:`repro.obs.tracing`) is deliberately storage-agnostic:
a :class:`~repro.obs.tracing.Tracer` hands every finished span to an
:class:`EventSink`, and the sink decides what durability means.  Two sinks
cover the repo's needs:

* :class:`NDJSONFileSink` — one JSON object per line, flushed after every
  event.  This is the production format (the CLI's ``--trace-out``, the
  per-worker spool files of the streaming engine) because a SIGKILLed worker
  loses at most the one line it was writing;
* :class:`InMemorySink` — an in-process list, the default for tests and for
  runs that only want the metrics registry.

:func:`read_ndjson` is the matching reader: it tolerates the truncated final
line a killed writer leaves behind, which is what makes trace *merging* safe
(see :func:`repro.obs.tracing.merge_spool`).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["EventSink", "InMemorySink", "NDJSONFileSink", "read_ndjson", "json_default"]


def json_default(value: Any) -> Any:
    """JSON fallback encoder for the numpy scalars telemetry tends to carry."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return str(value)


@runtime_checkable
class EventSink(Protocol):
    """What the tracer needs from an event destination."""

    def emit(self, event: dict[str, Any]) -> None:
        """Record one JSON-able event (a finished span, a log record, ...)."""
        ...  # pragma: no cover - protocol signature only

    def close(self) -> None:
        """Flush and release the sink; further :meth:`emit` calls are errors."""
        ...  # pragma: no cover - protocol signature only


class InMemorySink:
    """Sink that keeps every event in a list — the default for tests.

    Attributes
    ----------
    events:
        The emitted events, in emission order.
    """

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self.closed = False

    def emit(self, event: dict[str, Any]) -> None:
        """Append ``event`` to :attr:`events`."""
        if self.closed:
            raise RuntimeError("sink is closed")
        self.events.append(dict(event))

    def close(self) -> None:
        """Mark the sink closed (idempotent); events stay readable."""
        self.closed = True

    def spans(self) -> list[dict[str, Any]]:
        """The subset of :attr:`events` that are span events."""
        return [event for event in self.events if event.get("event") == "span"]


class NDJSONFileSink:
    """Sink that appends one JSON line per event to a file, flushing each.

    Flushing per event is the crash-tolerance contract: a worker process
    SIGKILLed at its deadline leaves a spool whose every complete line is a
    valid event — only an in-flight line can be lost, and
    :func:`read_ndjson` skips it.

    Writes are serialized behind a lock: the streaming engine's
    :class:`~repro.obs.sampler.ResourceSampler` emits ``resource`` events
    from a background thread into the same sink that receives span events
    from the main thread, and interleaved partial lines would corrupt both.

    Parameters
    ----------
    path:
        File to write; parent directories are created, an existing file is
        truncated.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self._lock = threading.Lock()
        self.n_events = 0

    def emit(self, event: dict[str, Any]) -> None:
        """Write ``event`` as one JSON line and flush it to disk."""
        line = json.dumps(event, default=json_default) + "\n"
        with self._lock:
            if self._handle is None:
                raise RuntimeError(f"sink for {self.path} is closed")
            self._handle.write(line)
            self._handle.flush()
            self.n_events += 1

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_ndjson(path: str | Path, skip_malformed: bool = True) -> list[dict[str, Any]]:
    """Read an NDJSON event file back into a list of dicts.

    Parameters
    ----------
    path:
        The file to read.  A missing file reads as an empty list — a worker
        killed before its sink opened simply contributed no events.
    skip_malformed:
        When True (default) undecodable lines — typically the truncated final
        line of a killed writer — are skipped instead of raising.
    """
    path = Path(path)
    if not path.exists():
        return []
    events: list[dict[str, Any]] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                if skip_malformed:
                    continue
                raise
            if isinstance(event, dict):
                events.append(event)
    return events
