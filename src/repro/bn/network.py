"""Linear-Gaussian Bayesian network.

The network is parameterized by a weighted DAG ``W`` (``W[i, j]`` is the
linear effect of parent ``i`` on child ``j``), per-node intercepts ``mu`` and
per-node noise variances ``sigma2``; each variable follows

    X_j | parents  ~  Normal( mu_j + Σ_i W[i, j] X_i ,  sigma2_j )

The induced joint distribution over all variables is multivariate normal,
which gives closed forms for the log-likelihood, marginals, and conditionals
used by the monitoring and recommendation applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import NotADAGError, ValidationError
from repro.graph.adjacency import to_dense
from repro.graph.dag import is_dag, parents, topological_sort
from repro.utils.random import RandomState, as_generator
from repro.utils.validation import ensure_2d

__all__ = ["GaussianBayesianNetwork"]


@dataclass
class GaussianBayesianNetwork:
    """A fully parameterized linear-Gaussian BN.

    Attributes
    ----------
    weights:
        ``d x d`` weighted adjacency matrix of a DAG.
    intercepts:
        Per-node intercepts (defaults to zeros).
    noise_variances:
        Per-node conditional noise variances (defaults to ones).
    node_names:
        Optional node labels used in reports.
    """

    weights: np.ndarray
    intercepts: np.ndarray | None = None
    noise_variances: np.ndarray | None = None
    node_names: Sequence[str] | None = None

    def __post_init__(self) -> None:
        self.weights = to_dense(self.weights)
        d = self.weights.shape[0]
        if self.weights.ndim != 2 or self.weights.shape[1] != d:
            raise ValidationError("weights must be a square matrix")
        if not is_dag(self.weights):
            raise NotADAGError("GaussianBayesianNetwork requires an acyclic structure")
        if self.intercepts is None:
            self.intercepts = np.zeros(d)
        else:
            self.intercepts = np.asarray(self.intercepts, dtype=float)
            if self.intercepts.shape != (d,):
                raise ValidationError(f"intercepts must have shape ({d},)")
        if self.noise_variances is None:
            self.noise_variances = np.ones(d)
        else:
            self.noise_variances = np.asarray(self.noise_variances, dtype=float)
            if self.noise_variances.shape != (d,):
                raise ValidationError(f"noise_variances must have shape ({d},)")
            if np.any(self.noise_variances <= 0):
                raise ValidationError("noise_variances must be strictly positive")
        if self.node_names is not None and len(self.node_names) != d:
            raise ValidationError(f"node_names must have length {d}")

    # -- basic properties -------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of variables in the network."""
        return self.weights.shape[0]

    def parents_of(self, node: int) -> list[int]:
        """Indices of the parents of ``node``."""
        return parents(self.weights, node)

    def n_edges(self) -> int:
        """Number of edges in the structure."""
        return int(np.count_nonzero(self.weights))

    # -- joint Gaussian --------------------------------------------------------

    def joint_mean(self) -> np.ndarray:
        """Mean vector of the induced joint Gaussian."""
        d = self.n_nodes
        return np.linalg.solve(np.eye(d) - self.weights.T, self.intercepts)

    def joint_covariance(self) -> np.ndarray:
        """Covariance matrix of the induced joint Gaussian."""
        d = self.n_nodes
        inverse = np.linalg.inv(np.eye(d) - self.weights.T)
        return inverse @ np.diag(self.noise_variances) @ inverse.T

    # -- likelihood --------------------------------------------------------------

    def log_likelihood(self, data) -> float:
        """Total log-likelihood of the sample matrix under the network.

        Uses the decomposition ``log p(X) = Σ_j log p(X_j | parents)``, each a
        univariate Gaussian density — numerically stabler than evaluating the
        joint multivariate normal for large ``d``.
        """
        data = ensure_2d(data, "data")
        if data.shape[1] != self.n_nodes:
            raise ValidationError(
                f"data has {data.shape[1]} columns but the network has {self.n_nodes} nodes"
            )
        predicted = data @ self.weights + self.intercepts
        residuals = data - predicted
        variances = self.noise_variances
        per_node = -0.5 * (
            np.log(2.0 * np.pi * variances) + residuals**2 / variances
        )
        return float(per_node.sum())

    def bic(self, data) -> float:
        """Bayesian information criterion (lower is better)."""
        data = ensure_2d(data, "data")
        n = data.shape[0]
        n_parameters = self.n_edges() + 2 * self.n_nodes  # weights + intercepts + variances
        return -2.0 * self.log_likelihood(data) + n_parameters * np.log(max(n, 1))

    # -- sampling ----------------------------------------------------------------

    def sample(self, n_samples: int, seed: RandomState = None) -> np.ndarray:
        """Draw ``n_samples`` ancestral samples from the network."""
        if n_samples < 0:
            raise ValidationError(f"n_samples must be >= 0, got {n_samples}")
        rng = as_generator(seed)
        d = self.n_nodes
        data = np.zeros((n_samples, d))
        for node in topological_sort(self.weights):
            noise = rng.normal(0.0, np.sqrt(self.noise_variances[node]), size=n_samples)
            parent_indices = self.parents_of(node)
            mean = self.intercepts[node]
            if parent_indices:
                mean = mean + data[:, parent_indices] @ self.weights[parent_indices, node]
            data[:, node] = mean + noise
        return data

    # -- reporting ----------------------------------------------------------------

    def edge_list(self, sort_by_weight: bool = True) -> list[tuple]:
        """Edges as ``(source, target, weight)`` tuples, labels if available."""
        from repro.graph.adjacency import adjacency_to_edge_list

        return adjacency_to_edge_list(
            self.weights, labels=self.node_names, sort_by_weight=sort_by_weight
        )
