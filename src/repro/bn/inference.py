"""Exact inference in linear-Gaussian Bayesian networks.

Because the joint distribution of a linear-Gaussian BN is multivariate normal,
conditioning and marginalization have closed forms.  These are used by the
explainable-recommendation case study (predict a user's rating of movie j
given an observed rating of movie i) and by the monitoring pipeline (expected
error rate given an observed fault).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.bn.network import GaussianBayesianNetwork
from repro.exceptions import ValidationError

__all__ = ["GaussianDistribution", "marginal_distribution", "conditional_distribution"]


@dataclass(frozen=True)
class GaussianDistribution:
    """A multivariate normal over a named subset of the network's variables."""

    indices: tuple[int, ...]
    mean: np.ndarray
    covariance: np.ndarray

    def variance(self) -> np.ndarray:
        """Per-variable marginal variances (diagonal of the covariance)."""
        return np.diag(self.covariance).copy()


def _validate_indices(network: GaussianBayesianNetwork, indices: Sequence[int]) -> list[int]:
    d = network.n_nodes
    validated = []
    for index in indices:
        index = int(index)
        if index < 0 or index >= d:
            raise ValidationError(f"node index {index} out of range for a {d}-node network")
        validated.append(index)
    if len(set(validated)) != len(validated):
        raise ValidationError("node indices must be distinct")
    return validated


def marginal_distribution(
    network: GaussianBayesianNetwork, nodes: Sequence[int]
) -> GaussianDistribution:
    """Marginal joint distribution of ``nodes`` under the network."""
    indices = _validate_indices(network, nodes)
    mean = network.joint_mean()
    covariance = network.joint_covariance()
    idx = np.asarray(indices, dtype=int)
    return GaussianDistribution(
        indices=tuple(indices),
        mean=mean[idx],
        covariance=covariance[np.ix_(idx, idx)],
    )


def conditional_distribution(
    network: GaussianBayesianNetwork,
    query: Sequence[int],
    evidence: Mapping[int, float],
) -> GaussianDistribution:
    """Conditional distribution of ``query`` nodes given observed ``evidence``.

    Uses the standard Gaussian conditioning formula

        mean_q|e = mean_q + Σ_qe Σ_ee^{-1} (x_e - mean_e)
        cov_q|e  = Σ_qq - Σ_qe Σ_ee^{-1} Σ_eq

    Evidence variables may not overlap with the query set.
    """
    query_indices = _validate_indices(network, query)
    evidence_indices = _validate_indices(network, list(evidence.keys()))
    if set(query_indices) & set(evidence_indices):
        raise ValidationError("query and evidence nodes must be disjoint")

    mean = network.joint_mean()
    covariance = network.joint_covariance()
    q = np.asarray(query_indices, dtype=int)
    e = np.asarray(evidence_indices, dtype=int)

    if e.size == 0:
        return marginal_distribution(network, query_indices)

    observed = np.asarray([float(evidence[int(i)]) for i in e])
    sigma_qq = covariance[np.ix_(q, q)]
    sigma_qe = covariance[np.ix_(q, e)]
    sigma_ee = covariance[np.ix_(e, e)]
    # Solve rather than invert for numerical stability; add jitter if singular.
    try:
        solve = np.linalg.solve(sigma_ee, (observed - mean[e]))
        gain = np.linalg.solve(sigma_ee, sigma_qe.T).T
    except np.linalg.LinAlgError:
        jitter = 1e-9 * np.eye(e.size)
        solve = np.linalg.solve(sigma_ee + jitter, (observed - mean[e]))
        gain = np.linalg.solve(sigma_ee + jitter, sigma_qe.T).T

    conditional_mean = mean[q] + sigma_qe @ solve
    conditional_cov = sigma_qq - gain @ sigma_qe.T
    return GaussianDistribution(
        indices=tuple(query_indices),
        mean=conditional_mean,
        covariance=conditional_cov,
    )
