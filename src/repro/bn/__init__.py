"""Linear-Gaussian Bayesian-network model layer.

A learned structure (weighted DAG) becomes a usable probabilistic model here:
:func:`fit_linear_gaussian` estimates the conditional distributions given the
structure and data, :class:`GaussianBayesianNetwork` exposes log-likelihood,
ancestral sampling, and exact conditional inference in the induced joint
Gaussian distribution.
"""

from repro.bn.fit import fit_linear_gaussian, refit_weights
from repro.bn.inference import conditional_distribution, marginal_distribution
from repro.bn.network import GaussianBayesianNetwork

__all__ = [
    "GaussianBayesianNetwork",
    "fit_linear_gaussian",
    "refit_weights",
    "conditional_distribution",
    "marginal_distribution",
]
