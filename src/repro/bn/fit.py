"""Parameter fitting for a fixed network structure.

Structure learning produces the DAG; these routines estimate the conditional
distributions on top of it.  For the linear-Gaussian case the maximum
likelihood estimates are ordinary least squares per node: regress each node on
its parents, take the residual variance as the node's noise variance.
"""

from __future__ import annotations

import numpy as np

from repro.bn.network import GaussianBayesianNetwork
from repro.exceptions import ValidationError
from repro.graph.adjacency import binarize, to_dense
from repro.utils.validation import ensure_2d

__all__ = ["fit_linear_gaussian", "refit_weights"]


def refit_weights(structure, data, ridge: float = 0.0) -> np.ndarray:
    """Re-estimate edge weights by per-node least squares on a fixed support.

    Parameters
    ----------
    structure:
        Adjacency matrix whose non-zero pattern defines the candidate parents
        of each node (values are ignored).
    data:
        ``n x d`` sample matrix.
    ridge:
        Optional L2 regularization strength added to the normal equations,
        useful when a node has many parents relative to the sample size.

    Returns
    -------
    numpy.ndarray
        Weight matrix with the same support, holding the refitted coefficients.
    """
    support = binarize(to_dense(structure)).astype(bool)
    data = ensure_2d(data, "data")
    d = support.shape[0]
    if data.shape[1] != d:
        raise ValidationError(
            f"data has {data.shape[1]} columns but the structure has {d} nodes"
        )
    if ridge < 0:
        raise ValidationError(f"ridge must be >= 0, got {ridge}")

    weights = np.zeros((d, d))
    for node in range(d):
        parent_indices = np.flatnonzero(support[:, node])
        if parent_indices.size == 0:
            continue
        design = data[:, parent_indices]
        target = data[:, node]
        gram = design.T @ design + ridge * np.eye(parent_indices.size)
        moment = design.T @ target
        try:
            coefficients = np.linalg.solve(gram, moment)
        except np.linalg.LinAlgError:
            coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
        weights[parent_indices, node] = coefficients
    return weights


def fit_linear_gaussian(
    structure,
    data,
    node_names=None,
    ridge: float = 0.0,
) -> GaussianBayesianNetwork:
    """Fit a :class:`GaussianBayesianNetwork` given a structure and data.

    Each node's conditional distribution is estimated by ordinary least
    squares on its parents (with optional ridge regularization); intercepts
    and residual variances are the sample estimates.
    """
    support = binarize(to_dense(structure)).astype(bool)
    data = ensure_2d(data, "data")
    d = support.shape[0]
    weights = refit_weights(support, data, ridge=ridge)

    intercepts = np.zeros(d)
    variances = np.ones(d)
    for node in range(d):
        parent_indices = np.flatnonzero(support[:, node])
        prediction = data[:, parent_indices] @ weights[parent_indices, node] if parent_indices.size else 0.0
        residual = data[:, node] - prediction
        intercepts[node] = float(np.mean(residual))
        centered = residual - intercepts[node]
        variances[node] = float(np.var(centered)) if data.shape[0] > 1 else 1.0
        if variances[node] <= 0:
            variances[node] = 1e-8

    return GaussianBayesianNetwork(
        weights=weights,
        intercepts=intercepts,
        noise_variances=variances,
        node_names=node_names,
    )
