"""Root-cause attribution and evaluation against the injected incident schedule.

The monitoring pipeline produces :class:`~repro.monitoring.anomaly.AnomalyReport`
objects; this module maps each report to an incident category (the Fig. 7
breakdown: external system, airline, travel agent, intermediary interface,
unpredictable event, false alarm) and — because the simulator's incident
schedule is known — scores precision/recall of the root-cause identification.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro.monitoring.anomaly import AnomalyReport
from repro.monitoring.booking_simulator import Incident

__all__ = ["RootCauseFinding", "RootCauseAnalyzer", "categorize_root_cause"]

#: Mapping from entity field to the Fig. 7 category it most naturally belongs to.
_FIELD_CATEGORY = {
    "airline": "airline",
    "agent": "travel agent",
    "fare_source": "intermediary interface",
    "departure_city": "unpredictable event",
    "arrival_city": "unpredictable event",
}


def categorize_root_cause(root_cause_node: str) -> str:
    """Map a root-cause node name (``field=value``) to a Fig. 7 category."""
    field_name = root_cause_node.split("=", 1)[0]
    return _FIELD_CATEGORY.get(field_name, "external system")


@dataclass
class RootCauseFinding:
    """One anomaly report annotated with its category and ground-truth match."""

    report: AnomalyReport
    category: str
    matched_incident: Incident | None = None

    @property
    def is_true_positive(self) -> bool:
        """True when the report matches an injected incident."""
        return self.matched_incident is not None


@dataclass
class RootCauseAnalyzer:
    """Matches anomaly reports to injected incidents and aggregates statistics."""

    findings: list[RootCauseFinding] = field(default_factory=list)
    missed_incidents: list[Incident] = field(default_factory=list)

    def evaluate_window(
        self,
        reports: Sequence[AnomalyReport],
        active_incidents: Sequence[Incident],
    ) -> list[RootCauseFinding]:
        """Annotate a window's reports against the incidents active in it.

        A report matches an incident when the report's error node equals the
        incident's step and the incident's entity node appears anywhere on the
        reported path (the paper counts a case as correctly associated when
        the path pinpoints the responsible entity).
        """
        window_findings: list[RootCauseFinding] = []
        matched: set[int] = set()
        for report in reports:
            incident_match: Incident | None = None
            for position, incident in enumerate(active_incidents):
                entity_node = f"{incident.entity_field}={incident.entity_value}"
                if report.path.error_node == incident.step and entity_node in report.path.nodes:
                    incident_match = incident
                    matched.add(position)
                    break
            category = (
                incident_match.category
                if incident_match is not None
                else categorize_root_cause(report.root_cause)
            )
            finding = RootCauseFinding(
                report=report, category=category, matched_incident=incident_match
            )
            window_findings.append(finding)
        for position, incident in enumerate(active_incidents):
            if position not in matched:
                self.missed_incidents.append(incident)
        self.findings.extend(window_findings)
        return window_findings

    # -- aggregate statistics ------------------------------------------------------

    def n_reports(self) -> int:
        """Total number of anomaly reports seen."""
        return len(self.findings)

    def true_positive_rate(self) -> float:
        """Fraction of reports that matched an injected incident."""
        if not self.findings:
            return 0.0
        return sum(finding.is_true_positive for finding in self.findings) / len(self.findings)

    def false_alarm_rate(self) -> float:
        """Fraction of reports with no matching incident (Fig. 7 'false alarms')."""
        if not self.findings:
            return 0.0
        return 1.0 - self.true_positive_rate()

    def category_breakdown(self) -> dict[str, float]:
        """Fraction of reports per category, false alarms included (Fig. 7)."""
        if not self.findings:
            return {}
        counter: Counter[str] = Counter()
        for finding in self.findings:
            key = finding.category if finding.is_true_positive else "false alarms"
            counter[key] += 1
        total = sum(counter.values())
        return {category: count / total for category, count in counter.items()}

    def recall(self, total_incident_windows: int) -> float:
        """Fraction of incident-windows for which at least one report matched."""
        if total_incident_windows <= 0:
            return 0.0
        detected = total_incident_windows - len(self.missed_incidents)
        return max(0.0, detected / total_incident_windows)
