"""Root-cause path extraction and statistical anomaly testing.

Given a BN learned over a log window, the paper inspects every path that ends
at one of the four error-type nodes (following incoming edges back to a root),
counts how often the path's entities co-occur with the error in the current
window versus the previous window, and reports the path as an anomaly when a
statistical test says the increase is significant.  The tail of the path is
the likely root cause.

This module implements exactly that: :func:`extract_error_paths` enumerates
candidate paths from the learned structure, :func:`path_statistics` computes
the two-window contingency counts, and :func:`detect_anomalies` combines them
using a two-proportion z-test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import erf, sqrt
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.graph.dag import all_paths_to
from repro.monitoring.encoder import WindowMatrix
from repro.monitoring.events import BOOKING_STEPS, BookingRecord
from repro.utils.validation import check_probability

__all__ = [
    "AnomalyPath",
    "AnomalyReport",
    "extract_error_paths",
    "path_statistics",
    "two_proportion_z_test",
    "detect_anomalies",
]


@dataclass(frozen=True)
class AnomalyPath:
    """A candidate root-cause path ``root -> ... -> error node``."""

    nodes: tuple[str, ...]
    error_node: str

    @property
    def root_cause(self) -> str:
        """The tail (first node) of the path — the likely root cause."""
        return self.nodes[0]

    def __str__(self) -> str:
        return " <- ".join(reversed(self.nodes))


@dataclass
class AnomalyReport:
    """A path flagged as anomalous, with its test statistics."""

    path: AnomalyPath
    current_rate: float
    previous_rate: float
    current_count: int
    previous_count: int
    p_value: float
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def root_cause(self) -> str:
        """Root-cause node of the flagged path."""
        return self.path.root_cause


def extract_error_paths(
    weights,
    node_names: Sequence[str],
    error_nodes: Sequence[str] = BOOKING_STEPS,
    max_length: int = 4,
) -> list[AnomalyPath]:
    """Enumerate paths that terminate at an error node in the learned graph.

    Parameters
    ----------
    weights:
        Learned (thresholded) weight matrix over the window's nodes.
    node_names:
        Node labels aligned with the matrix.
    error_nodes:
        Names of the error-type nodes whose incoming paths are inspected.
    max_length:
        Maximum path length in edges (keeps the enumeration tractable on
        densely connected windows).
    """
    node_names = list(node_names)
    paths: list[AnomalyPath] = []
    for error_node in error_nodes:
        if error_node not in node_names:
            continue
        target = node_names.index(error_node)
        for raw_path in all_paths_to(weights, target, max_length=max_length):
            if len(raw_path) < 2:
                continue
            labeled = tuple(node_names[i] for i in raw_path)
            # Only keep paths whose intermediate nodes are entities (an error
            # node in the middle of a path is a cascading error, reported via
            # its own incoming paths).
            if any(name in error_nodes for name in labeled[:-1]):
                continue
            paths.append(AnomalyPath(nodes=labeled, error_node=error_node))
    return paths


def _record_matches_path(record: BookingRecord, path: AnomalyPath) -> tuple[bool, bool]:
    """Return (entities matched, error occurred) for one record and path."""
    entity_values = {
        f"{field}={value}" for field, value in record.entities().items()
    }
    entities_on_path = [name for name in path.nodes[:-1] if name not in BOOKING_STEPS]
    matched = all(name in entity_values for name in entities_on_path)
    errored = record.step_errors.get(path.error_node, False)
    return matched, errored


def path_statistics(
    records: Sequence[BookingRecord], path: AnomalyPath
) -> tuple[int, int]:
    """Count (matching attempts, matching attempts that errored) for a path."""
    matches = 0
    errors = 0
    for record in records:
        matched, errored = _record_matches_path(record, path)
        if matched:
            matches += 1
            if errored:
                errors += 1
    return matches, errors


def two_proportion_z_test(
    successes_a: int, total_a: int, successes_b: int, total_b: int
) -> float:
    """One-sided two-proportion z-test p-value for rate(a) > rate(b).

    Returns 1.0 when either sample is empty or the pooled rate is degenerate,
    i.e. the data carries no evidence of an increase.
    """
    for name, value in (
        ("successes_a", successes_a),
        ("total_a", total_a),
        ("successes_b", successes_b),
        ("total_b", total_b),
    ):
        if value < 0:
            raise ValidationError(f"{name} must be >= 0, got {value}")
    if total_a == 0 or total_b == 0:
        return 1.0
    rate_a = successes_a / total_a
    rate_b = successes_b / total_b
    pooled = (successes_a + successes_b) / (total_a + total_b)
    variance = pooled * (1.0 - pooled) * (1.0 / total_a + 1.0 / total_b)
    if variance <= 0:
        return 1.0 if rate_a <= rate_b else 0.0
    z = (rate_a - rate_b) / sqrt(variance)
    # One-sided p-value via the normal CDF.
    return float(0.5 * (1.0 - erf(z / sqrt(2.0))))


def detect_anomalies(
    paths: Sequence[AnomalyPath],
    current_records: Sequence[BookingRecord],
    previous_records: Sequence[BookingRecord],
    p_value_threshold: float = 0.01,
    min_support: int = 5,
) -> list[AnomalyReport]:
    """Score candidate paths against the current and previous windows.

    A path is reported when its error rate in the current window is
    significantly higher than in the previous window (one-sided two-proportion
    z-test below ``p_value_threshold``) and it has at least ``min_support``
    matching attempts in the current window.

    Reports are sorted by ascending p-value (most significant first).
    """
    check_probability(p_value_threshold, "p_value_threshold")
    reports: list[AnomalyReport] = []
    seen: set[tuple[str, ...]] = set()
    for path in paths:
        if path.nodes in seen:
            continue
        seen.add(path.nodes)
        current_total, current_errors = path_statistics(current_records, path)
        previous_total, previous_errors = path_statistics(previous_records, path)
        if current_total < min_support:
            continue
        p_value = two_proportion_z_test(
            current_errors, current_total, previous_errors, previous_total
        )
        if p_value <= p_value_threshold:
            reports.append(
                AnomalyReport(
                    path=path,
                    current_rate=current_errors / current_total,
                    previous_rate=(previous_errors / previous_total) if previous_total else 0.0,
                    current_count=current_total,
                    previous_count=previous_total,
                    p_value=p_value,
                )
            )
    reports.sort(key=lambda report: report.p_value)
    return reports
