"""Ticket-booking monitoring and root-cause analysis (Section VI-A of the paper).

The subsystem mirrors the production Fliggy deployment the paper describes:

1. :mod:`repro.monitoring.events` / :mod:`repro.monitoring.booking_simulator`
   generate booking-attempt logs with the same schema (airline, fare source,
   agent, departure/arrival city, the four booking steps, error flags) and let
   tests inject *incidents* — e.g. an airline outage — with a known root cause;
2. :mod:`repro.monitoring.encoder` turns a window of logs into the data matrix
   a BN is learned from (one indicator column per entity plus the four
   error-type columns);
3. :mod:`repro.monitoring.anomaly` extracts root-cause paths ending at error
   nodes from a learned BN and scores them with a two-window statistical test;
4. :mod:`repro.monitoring.pipeline` ties everything together into the
   half-hourly sliding-window loop the paper runs in production.
"""

from repro.monitoring.anomaly import AnomalyPath, AnomalyReport, detect_anomalies, path_statistics
from repro.monitoring.booking_simulator import (
    BookingSimulator,
    Incident,
    SimulatorConfig,
)
from repro.monitoring.encoder import LogEncoder, WindowMatrix
from repro.monitoring.events import BOOKING_STEPS, BookingRecord
from repro.monitoring.pipeline import MonitoringPipeline, MonitoringReport
from repro.monitoring.root_cause import RootCauseAnalyzer, RootCauseFinding

__all__ = [
    "BOOKING_STEPS",
    "BookingRecord",
    "BookingSimulator",
    "SimulatorConfig",
    "Incident",
    "LogEncoder",
    "WindowMatrix",
    "AnomalyPath",
    "AnomalyReport",
    "detect_anomalies",
    "path_statistics",
    "RootCauseAnalyzer",
    "RootCauseFinding",
    "MonitoringPipeline",
    "MonitoringReport",
]
