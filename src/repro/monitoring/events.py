"""Event schema for the booking-monitoring application.

Each :class:`BookingRecord` is one booking attempt as it would appear in the
monitoring logs of the paper's Fliggy system: which airline / fare source /
agent / route served it, and — for each of the four booking steps — whether an
error occurred at that step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["BOOKING_STEPS", "BookingRecord", "ENTITY_FIELDS"]

#: The four essential steps of the booking process (Section VI-A).
BOOKING_STEPS: tuple[str, ...] = (
    "step1_availability",
    "step2_price",
    "step3_reserve",
    "step4_payment",
)

#: Categorical entity fields of a booking record, in canonical order.
ENTITY_FIELDS: tuple[str, ...] = (
    "airline",
    "fare_source",
    "agent",
    "departure_city",
    "arrival_city",
)


@dataclass(frozen=True)
class BookingRecord:
    """One booking attempt.

    Attributes
    ----------
    timestamp:
        Seconds since the start of the simulation.
    airline, fare_source, agent, departure_city, arrival_city:
        Categorical entities involved in the attempt.
    step_errors:
        Mapping from step name (one of :data:`BOOKING_STEPS`) to a boolean
        error flag.
    """

    timestamp: float
    airline: str
    fare_source: str
    agent: str
    departure_city: str
    arrival_city: str
    step_errors: dict[str, bool] = field(default_factory=dict)

    def failed(self) -> bool:
        """True if any booking step errored."""
        return any(self.step_errors.get(step, False) for step in BOOKING_STEPS)

    def entities(self) -> dict[str, str]:
        """The categorical entities of the record keyed by field name."""
        return {
            "airline": self.airline,
            "fare_source": self.fare_source,
            "agent": self.agent,
            "departure_city": self.departure_city,
            "arrival_city": self.arrival_city,
        }

    def error_steps(self) -> list[str]:
        """Names of the steps that errored, in canonical order."""
        return [step for step in BOOKING_STEPS if self.step_errors.get(step, False)]


def error_rate(records: Iterable[BookingRecord], step: str | None = None) -> float:
    """Fraction of records with an error (at ``step`` or at any step)."""
    records = list(records)
    if not records:
        return 0.0
    if step is None:
        failures = sum(1 for record in records if record.failed())
    else:
        failures = sum(1 for record in records if record.step_errors.get(step, False))
    return failures / len(records)
