"""Booking-log simulator with injectable incidents.

The paper's monitoring system learns a BN from 24-hour windows of booking
logs.  Those logs are proprietary, so this simulator produces records with the
same schema and the same causal mechanics the paper describes:

* every attempt picks an airline, fare source, agent and route from skewed
  (Zipf-like) popularity distributions;
* each of the four booking steps has a small baseline error probability;
* an :class:`Incident` raises the error probability of one step for all
  attempts matching an entity (e.g. ``airline == "AC"`` → step-3 errors), for
  a limited time span — exactly the kind of event in Table II of the paper
  (airline maintenance windows, bad agent data, city lock-downs, ...).

Because the incident schedule is known, the root-cause reports produced by the
monitoring pipeline can be scored against ground truth (the Fig. 7 analogue).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.monitoring.events import BOOKING_STEPS, BookingRecord
from repro.utils.random import RandomState, as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["Incident", "SimulatorConfig", "BookingSimulator"]

_DEFAULT_AIRLINES = ("AC", "MU", "SL", "CA", "CZ", "NH", "QF", "AF")
_DEFAULT_FARE_SOURCES = tuple(f"fare_source_{i}" for i in range(1, 17))
_DEFAULT_AGENTS = tuple(f"agent_{i:02d}" for i in range(1, 13))
_DEFAULT_CITIES = ("PEK", "SHA", "CAN", "WUH", "SEL", "BKK", "SIN", "NRT", "SYD", "LAX")

#: Root-cause categories used for the Fig. 7 style breakdown.
INCIDENT_CATEGORIES: tuple[str, ...] = (
    "external system",
    "airline",
    "travel agent",
    "intermediary interface",
    "unpredictable event",
)


@dataclass(frozen=True)
class Incident:
    """A scheduled anomaly affecting bookings that match an entity value.

    Attributes
    ----------
    entity_field:
        Which categorical field the incident keys on (``"airline"``,
        ``"fare_source"``, ``"agent"``, ``"departure_city"``,
        ``"arrival_city"``).
    entity_value:
        The affected value (e.g. ``"AC"``).
    step:
        The booking step whose error rate spikes.
    error_probability:
        Error probability for matching attempts while the incident is active.
    start, end:
        Activity window in simulation seconds.
    category:
        Root-cause category (for the Fig. 7 breakdown); free-form string.
    description:
        Human-readable explanation (the "explainable event" column of
        Table II).
    """

    entity_field: str
    entity_value: str
    step: str
    error_probability: float
    start: float
    end: float
    category: str = "external system"
    description: str = ""

    def __post_init__(self) -> None:
        if self.step not in BOOKING_STEPS:
            raise ValidationError(f"step must be one of {BOOKING_STEPS}, got {self.step!r}")
        check_probability(self.error_probability, "error_probability")
        if self.end <= self.start:
            raise ValidationError("incident end must be after start")

    def active_at(self, timestamp: float) -> bool:
        """True while the incident is in effect."""
        return self.start <= timestamp < self.end

    def matches(self, record_entities: dict[str, str]) -> bool:
        """True if a booking attempt is affected by this incident."""
        return record_entities.get(self.entity_field) == self.entity_value


@dataclass(frozen=True)
class SimulatorConfig:
    """Static configuration of the booking simulator."""

    airlines: Sequence[str] = _DEFAULT_AIRLINES
    fare_sources: Sequence[str] = _DEFAULT_FARE_SOURCES
    agents: Sequence[str] = _DEFAULT_AGENTS
    cities: Sequence[str] = _DEFAULT_CITIES
    bookings_per_hour: int = 600
    baseline_error_probability: float = 0.01
    popularity_skew: float = 1.1

    def __post_init__(self) -> None:
        for name, values in (
            ("airlines", self.airlines),
            ("fare_sources", self.fare_sources),
            ("agents", self.agents),
            ("cities", self.cities),
        ):
            if len(values) < 2:
                raise ValidationError(f"{name} needs at least two values")
        check_positive(self.bookings_per_hour, "bookings_per_hour")
        check_probability(self.baseline_error_probability, "baseline_error_probability")
        check_positive(self.popularity_skew, "popularity_skew")


class BookingSimulator:
    """Generates booking logs under a configurable incident schedule."""

    def __init__(
        self,
        config: SimulatorConfig | None = None,
        incidents: Sequence[Incident] = (),
        seed: RandomState = None,
    ):
        self.config = config or SimulatorConfig()
        self.incidents = list(incidents)
        self._rng = as_generator(seed)
        self._popularity = {
            "airline": self._zipf_weights(len(self.config.airlines)),
            "fare_source": self._zipf_weights(len(self.config.fare_sources)),
            "agent": self._zipf_weights(len(self.config.agents)),
            "city": self._zipf_weights(len(self.config.cities)),
        }

    def _zipf_weights(self, count: int) -> np.ndarray:
        ranks = np.arange(1, count + 1, dtype=float)
        weights = ranks ** (-self.config.popularity_skew)
        return weights / weights.sum()

    def add_incident(self, incident: Incident) -> None:
        """Register an additional incident."""
        self.incidents.append(incident)

    def simulate_window(self, start: float, duration: float) -> list[BookingRecord]:
        """Simulate all booking attempts in ``[start, start + duration)`` seconds."""
        check_positive(duration, "duration")
        config = self.config
        rng = self._rng
        n_records = rng.poisson(config.bookings_per_hour * duration / 3600.0)
        timestamps = np.sort(rng.uniform(start, start + duration, size=n_records))

        records: list[BookingRecord] = []
        for timestamp in timestamps:
            entities = {
                "airline": str(rng.choice(config.airlines, p=self._popularity["airline"])),
                "fare_source": str(
                    rng.choice(config.fare_sources, p=self._popularity["fare_source"])
                ),
                "agent": str(rng.choice(config.agents, p=self._popularity["agent"])),
                "departure_city": str(rng.choice(config.cities, p=self._popularity["city"])),
                "arrival_city": str(rng.choice(config.cities, p=self._popularity["city"])),
            }
            step_errors: dict[str, bool] = {}
            for step in BOOKING_STEPS:
                probability = config.baseline_error_probability
                for incident in self.incidents:
                    if (
                        incident.step == step
                        and incident.active_at(float(timestamp))
                        and incident.matches(entities)
                    ):
                        probability = max(probability, incident.error_probability)
                step_errors[step] = bool(rng.random() < probability)
            records.append(
                BookingRecord(
                    timestamp=float(timestamp),
                    airline=entities["airline"],
                    fare_source=entities["fare_source"],
                    agent=entities["agent"],
                    departure_city=entities["departure_city"],
                    arrival_city=entities["arrival_city"],
                    step_errors=step_errors,
                )
            )
        return records

    def active_incidents(self, start: float, duration: float) -> list[Incident]:
        """Incidents overlapping the window ``[start, start + duration)``."""
        end = start + duration
        return [
            incident
            for incident in self.incidents
            if incident.start < end and incident.end > start
        ]
