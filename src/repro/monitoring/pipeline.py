"""End-to-end sliding-window monitoring pipeline (the Fliggy loop).

The production deployment the paper describes re-learns a BN every half hour
from the latest 24-hour window of logs, extracts paths into the error nodes,
and reports statistically significant ones.  :class:`MonitoringPipeline`
implements that loop over a :class:`~repro.monitoring.booking_simulator.BookingSimulator`
so the whole Section VI-A application can be reproduced and evaluated against
the simulator's known incident schedule.

Per-window learning is delegated to a
:class:`~repro.serve.scheduler.RelearnScheduler`: by default each window's
solve is warm-started from the previous window's solution (re-aligned to the
window's vocabulary), which is how the production loop keeps re-learning cheap.
Pass ``warm_start=False`` to recover the old cold-start-every-window behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.least import LEASTConfig
from repro.core.thresholding import threshold_to_dag
from repro.exceptions import ValidationError
from repro.monitoring.anomaly import AnomalyReport, detect_anomalies, extract_error_paths
from repro.monitoring.booking_simulator import BookingSimulator, Incident
from repro.monitoring.encoder import LogEncoder
from repro.monitoring.events import BookingRecord
from repro.monitoring.root_cause import RootCauseAnalyzer, RootCauseFinding
from repro.sem.standardize import standardize_columns
from repro.serve.scheduler import RelearnScheduler, WindowStats
from repro.utils.random import RandomState
from repro.utils.validation import check_positive

__all__ = ["MonitoringReport", "MonitoringPipeline"]


@dataclass
class MonitoringReport:
    """Output of one monitoring window."""

    window_index: int
    window_start: float
    n_records: int
    reports: list[AnomalyReport] = field(default_factory=list)
    findings: list[RootCauseFinding] = field(default_factory=list)
    active_incidents: list[Incident] = field(default_factory=list)

    @property
    def n_anomalies(self) -> int:
        """Number of anomaly paths reported for this window."""
        return len(self.reports)


class MonitoringPipeline:
    """Windowed learn–extract–test loop over simulated booking logs.

    Parameters
    ----------
    simulator:
        The booking simulator (with its incident schedule) providing logs.
    window_seconds:
        Length of each analysis window (the paper uses 24 h of logs refreshed
        every 30 min; tests use much shorter windows to stay fast).
    least_config:
        Configuration of the LEAST solver used per window.  The default keeps
        iterations modest because windows are re-learned frequently.
    edge_threshold:
        Threshold applied to the learned weights before path extraction.
    p_value_threshold, min_support:
        Passed through to :func:`repro.monitoring.anomaly.detect_anomalies`.
    warm_start:
        When True (default) every window after the first is solved starting
        from the previous window's weights, re-aligned to the current
        vocabulary; False reproduces the original cold-start loop.
    warm_damping:
        Shrinkage applied to carried-over weights between windows.
    window_deadline:
        Optional hard per-window solve budget in seconds, forwarded to the
        :class:`~repro.serve.scheduler.RelearnScheduler`.  A window whose
        solve overruns is killed (hard preemption), recorded as preempted in
        the solver telemetry, and the loop continues with the next window —
        one pathological window can no longer stall the monitoring service.
    shard_vocabulary_threshold:
        When set, a window whose encoded vocabulary reaches this many nodes
        is solved block-partitioned via :mod:`repro.shard` (forwarded to the
        scheduler): the correlation skeleton is split into blocks, each block
        runs as a streamed job (a ``window_deadline`` is split across the
        blocks so the whole window stays bounded), and the stitched DAG
        replaces the monolithic solve.  Block sub-graphs are pruned at this
        pipeline's ``edge_threshold`` before stitching.  ``None`` (default)
        always solves monolithically.
    shard_n_workers:
        Concurrent block workers for sharded windows (forwarded to the
        scheduler).
    solver:
        Registered backend name driving the per-window solves (forwarded to
        the scheduler; default dense ``"least"``).
    prefer_fast:
        When True, windows that would solve with the default dense
        ``"least"`` use the fused ``"least_fast"`` backend instead
        (forwarded to the scheduler; numerically interchangeable, JIT-ed
        when numba is importable).  The sparse escalation below still wins.
    sparse_vocabulary_threshold:
        When set, a window whose encoded vocabulary reaches this many nodes
        escalates from dense LEAST to CSR-end-to-end LEAST-SP (forwarded to
        the scheduler) — the knob that keeps very large monitoring
        vocabularies solvable without a dense ``d × d`` matrix, mirroring
        ``shard_vocabulary_threshold``.  Downstream stays sparse too:
        thresholding and path extraction both operate on the CSR weights
        directly.  ``None`` (default) never escalates.
    tracer:
        Optional :class:`~repro.obs.Tracer` forwarded to the re-learn
        scheduler — every processed window then contributes a ``window``
        span (and warm/cold counters) to the trace.
    """

    def __init__(
        self,
        simulator: BookingSimulator,
        window_seconds: float = 3600.0,
        least_config: LEASTConfig | None = None,
        edge_threshold: float = 0.05,
        p_value_threshold: float = 0.01,
        min_support: int = 5,
        max_path_length: int = 3,
        warm_start: bool = True,
        warm_damping: float = 0.9,
        window_deadline: float | None = None,
        shard_vocabulary_threshold: int | None = None,
        shard_n_workers: int = 1,
        solver: str = "least",
        prefer_fast: bool = False,
        sparse_vocabulary_threshold: int | None = None,
        tracer=None,
    ):
        check_positive(window_seconds, "window_seconds")
        check_positive(edge_threshold, "edge_threshold")
        self.simulator = simulator
        self.window_seconds = window_seconds
        self.least_config = least_config or LEASTConfig(
            max_outer_iterations=6,
            max_inner_iterations=200,
            l1_penalty=0.02,
            tolerance=1e-3,
        )
        self.edge_threshold = edge_threshold
        self.p_value_threshold = p_value_threshold
        self.min_support = min_support
        self.max_path_length = max_path_length
        self.scheduler = RelearnScheduler(
            self.least_config,
            warm_start=warm_start,
            damping=warm_damping,
            window_deadline=window_deadline,
            shard_vocabulary_threshold=shard_vocabulary_threshold,
            shard_n_workers=shard_n_workers,
            shard_edge_threshold=edge_threshold,
            solver=solver,
            prefer_fast=prefer_fast,
            sparse_vocabulary_threshold=sparse_vocabulary_threshold,
            tracer=tracer,
        )
        self.analyzer = RootCauseAnalyzer()
        self.reports: list[MonitoringReport] = []

    # -- single window -----------------------------------------------------------

    def learn_window_graph(self, records: list[BookingRecord], seed: RandomState = None):
        """Learn and threshold a BN over one window of records.

        The encoded indicator matrix is standardized column-wise before
        learning: error-step columns are rare events with tiny variance, and
        standardization puts them on the same scale as the entity indicators
        so that genuine entity→error dependencies receive large weights.

        Returns ``(weights, window)`` where the weights have been pruned to a
        DAG with :func:`repro.core.thresholding.threshold_to_dag`.
        """
        encoder = LogEncoder(center=False)
        window = encoder.encode(records)
        data = standardize_columns(window.data)
        result = self.scheduler.step(data, list(window.node_names), seed=seed)
        pruned, _ = threshold_to_dag(result.weights, initial_threshold=self.edge_threshold)
        return pruned, window

    def run(
        self,
        n_windows: int,
        start: float = 0.0,
        seed: RandomState = None,
    ) -> list[MonitoringReport]:
        """Run the monitoring loop for ``n_windows`` consecutive windows.

        The first window only establishes the baseline (no reports are
        produced because there is no previous window to compare against).
        """
        if n_windows < 1:
            raise ValidationError(f"n_windows must be >= 1, got {n_windows}")
        previous_records: list[BookingRecord] | None = None
        outputs: list[MonitoringReport] = []

        for index in range(n_windows):
            window_start = start + index * self.window_seconds
            records = self.simulator.simulate_window(window_start, self.window_seconds)
            report = MonitoringReport(
                window_index=index,
                window_start=window_start,
                n_records=len(records),
                active_incidents=self.simulator.active_incidents(
                    window_start, self.window_seconds
                ),
            )
            if previous_records and records:
                pruned, window = self.learn_window_graph(records, seed=seed)
                paths = extract_error_paths(
                    pruned,
                    window.node_names,
                    error_nodes=window.error_nodes,
                    max_length=self.max_path_length,
                )
                anomaly_reports = detect_anomalies(
                    paths,
                    records,
                    previous_records,
                    p_value_threshold=self.p_value_threshold,
                    min_support=self.min_support,
                )
                report.reports = anomaly_reports
                report.findings = self.analyzer.evaluate_window(
                    anomaly_reports, report.active_incidents
                )
            previous_records = records
            outputs.append(report)
            self.reports.append(report)
        return outputs

    # -- aggregate views -----------------------------------------------------------

    @property
    def window_stats(self) -> list[WindowStats]:
        """Per-window solver telemetry recorded by the re-learn scheduler."""
        return self.scheduler.history

    def solver_summary(self) -> dict[str, float]:
        """Aggregate solver-iteration/time totals across all learned windows."""
        return self.scheduler.stats_summary()

    def category_breakdown(self) -> dict[str, float]:
        """Fig. 7 style category breakdown across all processed windows."""
        return self.analyzer.category_breakdown()

    def detection_summary(self) -> dict[str, float]:
        """Aggregate detection quality across all processed windows."""
        incident_windows = sum(
            1 for report in self.reports[1:] if report.active_incidents
        )
        detected = sum(
            1
            for report in self.reports[1:]
            if report.active_incidents
            and any(finding.is_true_positive for finding in report.findings)
        )
        return {
            "n_windows": float(len(self.reports)),
            "n_reports": float(self.analyzer.n_reports()),
            "true_positive_rate": self.analyzer.true_positive_rate(),
            "false_alarm_rate": self.analyzer.false_alarm_rate(),
            "incident_windows": float(incident_windows),
            "incident_windows_detected": float(detected),
            "incident_recall": (detected / incident_windows) if incident_windows else 0.0,
        }
