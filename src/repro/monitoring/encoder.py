"""Encoding booking logs into a data matrix for structure learning.

Following the paper, the BN over a log window has one node per entity value
(every airline, fare source, agent, departure city and arrival city seen in
the window) plus one node per booking-step error type.  Each booking attempt
becomes one row: indicator 1.0 for the entities it involved and for the steps
that errored, 0.0 elsewhere.  Columns are mean-centred so the linear SEM loss
treats them symmetrically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.monitoring.events import BOOKING_STEPS, ENTITY_FIELDS, BookingRecord

__all__ = ["WindowMatrix", "LogEncoder"]


@dataclass(frozen=True)
class WindowMatrix:
    """Encoded window: the data matrix plus the node vocabulary."""

    data: np.ndarray
    node_names: tuple[str, ...]
    error_nodes: tuple[str, ...]
    entity_nodes: tuple[str, ...]

    @property
    def n_records(self) -> int:
        """Number of booking attempts in the window."""
        return self.data.shape[0]

    @property
    def n_nodes(self) -> int:
        """Number of BN nodes (entity values + error types)."""
        return self.data.shape[1]

    def index_of(self, node_name: str) -> int:
        """Column index of a node name."""
        try:
            return self.node_names.index(node_name)
        except ValueError as exc:
            raise ValidationError(f"unknown node {node_name!r}") from exc


class LogEncoder:
    """Turns a list of :class:`BookingRecord` into a :class:`WindowMatrix`.

    Parameters
    ----------
    center:
        If True (default) mean-centre each column, which is what the linear
        SEM loss expects.
    vocabulary:
        Optional fixed node vocabulary (entity node names).  When omitted the
        vocabulary is built from the records themselves; passing the previous
        window's vocabulary keeps node indices comparable across windows.
    """

    def __init__(self, center: bool = True, vocabulary: Sequence[str] | None = None):
        self.center = center
        self.vocabulary = list(vocabulary) if vocabulary is not None else None

    @staticmethod
    def entity_node_name(field: str, value: str) -> str:
        """Canonical node name for an entity value, e.g. ``airline=AC``."""
        return f"{field}={value}"

    def build_vocabulary(self, records: Iterable[BookingRecord]) -> list[str]:
        """Entity node names occurring in ``records``, in first-seen order."""
        seen: list[str] = []
        seen_set: set[str] = set()
        for record in records:
            for field, value in record.entities().items():
                name = self.entity_node_name(field, value)
                if name not in seen_set:
                    seen.append(name)
                    seen_set.add(name)
        return seen

    def encode(self, records: Sequence[BookingRecord]) -> WindowMatrix:
        """Encode a window of records into a data matrix.

        Raises
        ------
        ValidationError
            If ``records`` is empty (an empty window cannot be learned from).
        """
        records = list(records)
        if not records:
            raise ValidationError("cannot encode an empty window of records")

        entity_nodes = (
            list(self.vocabulary)
            if self.vocabulary is not None
            else self.build_vocabulary(records)
        )
        error_nodes = list(BOOKING_STEPS)
        node_names = entity_nodes + error_nodes
        index = {name: i for i, name in enumerate(node_names)}

        data = np.zeros((len(records), len(node_names)))
        for row, record in enumerate(records):
            for field, value in record.entities().items():
                name = self.entity_node_name(field, value)
                column = index.get(name)
                if column is not None:
                    data[row, column] = 1.0
            for step in BOOKING_STEPS:
                if record.step_errors.get(step, False):
                    data[row, index[step]] = 1.0

        if self.center:
            data = data - data.mean(axis=0, keepdims=True)

        return WindowMatrix(
            data=data,
            node_names=tuple(node_names),
            error_nodes=tuple(error_nodes),
            entity_nodes=tuple(entity_nodes),
        )
