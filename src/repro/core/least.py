"""LEAST: the paper's structure-learning algorithm (dense implementation).

This module implements Fig. 3 of the paper: an augmented-Lagrangian outer loop
around an Adam-driven inner loop, where the acyclicity of the candidate weight
matrix is enforced through the spectral-radius upper bound
:class:`repro.core.acyclicity.SpectralAcyclicityBound` instead of the
``O(d^3)`` matrix-exponential constraint of NOTEARS.

The unconstrained objective minimized by the inner loop is

    ℓ(W) = L(W, X_B) + (ρ/2) δ(W)² + η δ(W)

with ``L`` the L1-regularized least-squares loss on a random batch ``X_B``,
``ρ`` the quadratic penalty and ``η`` the Lagrange multiplier.  After each
inner solve the multiplier is increased (``η ← η + ρ δ(W*)``) and ``ρ`` is
enlarged by a constant factor, driving ``δ(W)`` — and therefore the spectral
radius and every cycle weight — to zero.

Two efficiency devices from the paper are included: mini-batching of the data
term and hard thresholding of small entries after every update, which both
keeps ``W`` sparse and removes spurious cycle-inducing edges early.

This dense implementation corresponds to the paper's LEAST-TF variant (their
TensorFlow implementation); the CSR-based variant LEAST-SP lives in
:mod:`repro.core.least_sparse`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.acyclicity import SpectralAcyclicityBound
from repro.core.losses import LeastSquaresLoss, sample_batch
from repro.core.notears_constraint import notears_constraint
from repro.core.optimizers import AdamOptimizer
from repro.exceptions import ValidationError
from repro.utils.logging import RunLog
from repro.utils.random import RandomState, as_generator
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_probability,
    check_unit_interval,
    ensure_2d,
)

__all__ = ["LEASTConfig", "LEASTResult", "LEAST", "glorot_sparse_init"]

#: Above this node count :func:`glorot_sparse_init` samples non-zero
#: coordinates directly instead of drawing a dense d × d uniform mask, so the
#: RNG/memory cost of initialization is O(nnz) rather than O(d²).  Below the
#: cutoff the historical dense draw is kept so existing seeded streams (and
#: every test pinned to them) are unchanged.
SPARSE_INIT_CUTOFF = 2048


def _sample_off_diagonal_indices(
    n_nodes: int, n_active: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``n_active`` distinct off-diagonal (row, col) pairs in O(nnz).

    Off-diagonal cells are enumerated as flat indices in ``[0, d(d-1))`` with
    ``row = flat // (d-1)`` and the column skipping the diagonal.  Distinct
    flat indices come from oversample-and-deduplicate rounds — at the sparse
    densities this path serves, one round almost surely suffices.
    """
    total = n_nodes * (n_nodes - 1)
    unique = np.empty(0, dtype=np.int64)
    while unique.size < n_active:
        draw = rng.integers(0, total, size=2 * (n_active - unique.size) + 16)
        unique = np.unique(np.concatenate([unique, draw]))
    if unique.size > n_active:
        unique = rng.choice(unique, size=n_active, replace=False)
    rows = unique // (n_nodes - 1)
    offsets = unique % (n_nodes - 1)
    cols = offsets + (offsets >= rows)
    return rows, cols


def glorot_sparse_init(
    n_nodes: int, density: float, rng: np.random.Generator
) -> np.ndarray:
    """Random sparse initialization of W with Glorot-uniform non-zero values.

    Each off-diagonal entry is non-zero with probability ``density``; non-zero
    values are drawn uniformly from ``[-limit, limit]`` with
    ``limit = sqrt(6 / (fan_in + fan_out)) = sqrt(3 / d)``, the Glorot/Xavier
    uniform rule used by the paper (Fig. 3, line 1 of the Inner procedure).

    For ``n_nodes < SPARSE_INIT_CUTOFF`` the non-zero mask is a dense
    ``d × d`` uniform draw (the historical behaviour, preserved so seeded
    streams do not shift); at and above the cutoff the number of non-zeros is
    drawn from the matching Binomial(d(d-1), density) and their coordinates
    are sampled directly, keeping RNG work and transient memory O(nnz).
    """
    limit = np.sqrt(3.0 / max(n_nodes, 1))
    weights = np.zeros((n_nodes, n_nodes))
    if n_nodes < SPARSE_INIT_CUTOFF:
        mask = rng.random((n_nodes, n_nodes)) < density
        np.fill_diagonal(mask, False)
        n_active = int(mask.sum())
        weights[mask] = rng.uniform(-limit, limit, size=n_active)
        return weights
    n_active = int(rng.binomial(n_nodes * (n_nodes - 1), density))
    if n_active > 0:
        rows, cols = _sample_off_diagonal_indices(n_nodes, n_active, rng)
        weights[rows, cols] = rng.uniform(-limit, limit, size=n_active)
    return weights


@dataclass(frozen=True)
class LEASTConfig:
    """Hyper-parameters of the LEAST solver (paper defaults).

    Attributes
    ----------
    k:
        Rounds of the spectral-bound iteration (paper: 5).
    alpha:
        Row/column balancing factor of the bound (paper: 0.9).
    l1_penalty:
        λ of the L1 regularizer (paper: 0.5 on artificial data).
    learning_rate:
        Adam step size for the inner loop (paper: 0.01).
    init_density:
        Density ζ of the random sparse initialization (paper: 1e-4; small
        graphs automatically get a floor so W never starts empty).
    batch_size:
        Mini-batch size B; ``None`` uses the full sample matrix.
    threshold:
        In-loop hard-thresholding value θ applied after every update.
    tolerance:
        Target value ε for the acyclicity measure.
    max_outer_iterations, max_inner_iterations:
        Iteration caps T_o and T_i of the two loops.
    rho_start, rho_growth, rho_max:
        Initial quadratic penalty, its growth factor per outer iteration, and
        a cap preventing numerical overflow.
    eta_start:
        Initial value of the Lagrange multiplier η (updated as
        ``η ← η + ρ δ(W*)`` after every outer iteration).
    inner_convergence_tol:
        Relative change of ℓ(W) below which the inner loop stops early.
    warm_start:
        If True (default) the inner loop re-uses the previous W between outer
        iterations instead of re-drawing a random initialization; this follows
        standard augmented-Lagrangian practice and converges in far fewer
        inner steps with no accuracy loss.
    track_h:
        If True also record the exact NOTEARS measure ``h(W)`` per outer
        iteration (O(d^3); used for the correlation study of Fig. 4) and use it
        as the termination check exactly as the paper does for its benchmark
        comparison.
    keep_history:
        If True store a copy of ``W`` after every outer iteration in
        ``LEASTResult.history``.  This enables the paper's evaluation protocol
        of grid-searching the stopping tolerance ε (see
        :func:`repro.core.model_selection.grid_search_epsilon_tau`) without
        re-running the solver.
    init_weights:
        Optional explicit initial weight matrix.  When given it replaces the
        random sparse initialization, which is how the serving layer
        (:mod:`repro.serve.warm_start`) re-learns a window starting from the
        previous window's solution instead of from scratch.  The per-call
        ``init_weights`` argument of :meth:`LEAST.fit` takes precedence over
        this field.
    """

    k: int = 5
    alpha: float = 0.9
    l1_penalty: float = 0.05
    learning_rate: float = 0.02
    init_density: float = 1e-4
    batch_size: int | None = None
    threshold: float = 0.0
    tolerance: float = 1e-4
    max_outer_iterations: int = 25
    max_inner_iterations: int = 600
    rho_start: float = 0.1
    rho_growth: float = 3.0
    rho_max: float = 1e16
    eta_start: float = 0.0
    inner_convergence_tol: float = 1e-6
    warm_start: bool = True
    track_h: bool = False
    keep_history: bool = False
    init_weights: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.k < 0:
            raise ValidationError(f"k must be >= 0, got {self.k}")
        check_unit_interval(self.alpha, "alpha")
        check_non_negative(self.l1_penalty, "l1_penalty")
        check_positive(self.learning_rate, "learning_rate")
        check_probability(self.init_density, "init_density")
        check_non_negative(self.threshold, "threshold")
        check_positive(self.tolerance, "tolerance")
        check_positive(self.max_outer_iterations, "max_outer_iterations")
        check_positive(self.max_inner_iterations, "max_inner_iterations")
        check_positive(self.rho_start, "rho_start")
        check_positive(self.rho_growth, "rho_growth")
        check_positive(self.rho_max, "rho_max")
        check_non_negative(self.eta_start, "eta_start")
        if self.init_weights is not None:
            init = np.asarray(self.init_weights)
            if init.ndim != 2 or init.shape[0] != init.shape[1]:
                raise ValidationError(
                    f"init_weights must be a square matrix, got shape {init.shape}"
                )


@dataclass
class LEASTResult:
    """Outcome of a LEAST (or NOTEARS) run.

    Attributes
    ----------
    weights:
        Learned weight matrix (raw, before any output thresholding).
    constraint_value:
        Final value of the acyclicity measure used by the solver.
    converged:
        True when the constraint dropped below the configured tolerance.
    n_outer_iterations:
        Number of outer (augmented Lagrangian) iterations executed.
    n_inner_iterations:
        Total number of inner (Adam) steps across all outer iterations; this
        is the quantity that warm starts reduce (solvers that do not track it
        leave it at 0).
    log:
        Per-outer-iteration trace: loss, δ(W), optionally h(W), ρ, η.
    """

    weights: np.ndarray
    constraint_value: float
    converged: bool
    n_outer_iterations: int
    n_inner_iterations: int = 0
    log: RunLog = field(default_factory=RunLog)
    history: list[np.ndarray] = field(default_factory=list)


class LEAST:
    """Dense LEAST solver (the paper's LEAST-TF analog).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.graph import random_dag
    >>> from repro.sem import simulate_linear_sem
    >>> truth = random_dag("ER-2", 20, seed=0)
    >>> data = simulate_linear_sem(truth, 200, seed=1)
    >>> model = LEAST(LEASTConfig(max_outer_iterations=5, max_inner_iterations=50))
    >>> result = model.fit(data, seed=2)
    >>> result.weights.shape
    (20, 20)
    """

    def __init__(self, config: LEASTConfig | None = None):
        self.config = config or LEASTConfig()
        self._bound = SpectralAcyclicityBound(k=self.config.k, alpha=self.config.alpha)
        self._loss = LeastSquaresLoss(l1_penalty=self.config.l1_penalty)

    # -- public API -----------------------------------------------------------

    def fit(
        self,
        data,
        seed: RandomState = None,
        init_weights: np.ndarray | None = None,
        on_outer_iteration=None,
    ) -> LEASTResult:
        """Learn a weighted DAG from the sample matrix ``data`` (n × d).

        Parameters
        ----------
        init_weights:
            Optional warm-start matrix overriding both the random sparse
            initialization and ``config.init_weights``; it must be ``d × d``.
            Used by :mod:`repro.serve` to seed a re-learn with the previous
            window's solution.
        on_outer_iteration:
            Optional ``callback(outer_iteration)`` invoked after every outer
            iteration — the hook point :class:`repro.core.backend.SolverBackend`
            uses for cooperative deadline checks; raising from it aborts the
            solve.
        """
        data = ensure_2d(data, "data")
        rng = as_generator(seed)
        config = self.config
        d = data.shape[1]

        explicit_init = init_weights if init_weights is not None else config.init_weights
        rho = config.rho_start
        eta = config.eta_start
        if explicit_init is not None:
            weights = self._prepare_init(explicit_init, d)
        else:
            weights = self._initialize(d, rng)
        log = RunLog()
        history: list[np.ndarray] = []

        converged = False
        constraint = np.inf
        outer_iteration = 0
        total_inner = 0
        for outer_iteration in range(1, config.max_outer_iterations + 1):
            if not config.warm_start and (explicit_init is None or outer_iteration > 1):
                weights = self._initialize(d, rng)
            weights, constraint, inner_loss, inner_steps = self._inner(
                data, weights, rho, eta, rng
            )
            total_inner += inner_steps
            record: dict[str, float] = {
                "outer_iteration": outer_iteration,
                "loss": inner_loss,
                "delta": constraint,
                "rho": rho,
                "eta": eta,
                "n_edges": float(np.count_nonzero(weights)),
                "inner_iterations": float(inner_steps),
            }
            termination_value = constraint
            if config.track_h:
                h_value = notears_constraint(weights)
                record["h"] = h_value
                termination_value = h_value
            log.append(**record)
            if config.keep_history:
                history.append(weights.copy())
            if on_outer_iteration is not None:
                on_outer_iteration(outer_iteration)

            if termination_value <= config.tolerance:
                converged = True
                break
            eta = eta + rho * constraint
            rho = min(rho * config.rho_growth, config.rho_max)

        return LEASTResult(
            weights=weights,
            constraint_value=constraint,
            converged=converged,
            n_outer_iterations=outer_iteration,
            n_inner_iterations=total_inner,
            log=log,
            history=history,
        )

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _prepare_init(init_weights: np.ndarray, d: int) -> np.ndarray:
        """Validate and normalize an explicit warm-start matrix."""
        weights = np.array(init_weights, dtype=float, copy=True)
        if weights.shape != (d, d):
            raise ValidationError(
                f"init_weights must have shape ({d}, {d}), got {weights.shape}"
            )
        if not np.all(np.isfinite(weights)):
            raise ValidationError("init_weights must be finite")
        np.fill_diagonal(weights, 0.0)
        return weights

    def _initialize(self, d: int, rng: np.random.Generator) -> np.ndarray:
        """Random sparse Glorot initialization with a floor on the edge count."""
        density = self.config.init_density
        # Guarantee a handful of non-zeros even for tiny graphs, otherwise the
        # gradient of the L1 term is the only signal in the first steps.
        minimum_density = min(1.0, 2.0 / max(d, 1))
        density = max(density, minimum_density)
        return glorot_sparse_init(d, density, rng)

    def _inner(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        rho: float,
        eta: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, float, int]:
        """Inner procedure of Fig. 3: Adam on ℓ(W) with batching + thresholding."""
        config = self.config
        optimizer = AdamOptimizer(learning_rate=config.learning_rate)
        previous_objective = np.inf
        objective = np.inf
        constraint = self._bound.value(weights)

        # Reused across iterations: |W| scratch and the threshold mask.  The
        # gradient combine below also mutates the per-iteration gradient
        # arrays in place instead of allocating `coef * cgrad` and the sum —
        # floating-point add is commutative, so results are bit-identical.
        abs_scratch = np.empty_like(weights)
        threshold_mask = np.empty(weights.shape, dtype=bool)

        steps = 0
        for steps in range(1, config.max_inner_iterations + 1):
            batch = sample_batch(data, config.batch_size, rng)
            constraint, constraint_gradient = self._bound.value_and_gradient(weights)
            loss_value, loss_gradient = self._loss.value_and_gradient(weights, batch)

            objective = loss_value + 0.5 * rho * constraint**2 + eta * constraint
            constraint_gradient *= rho * constraint + eta
            constraint_gradient += loss_gradient
            gradient = constraint_gradient
            np.fill_diagonal(gradient, 0.0)

            weights = optimizer.update(weights, gradient)
            np.fill_diagonal(weights, 0.0)
            if config.threshold > 0:
                np.abs(weights, out=abs_scratch)
                np.less(abs_scratch, config.threshold, out=threshold_mask)
                weights[threshold_mask] = 0.0

            if np.isfinite(previous_objective):
                denominator = max(abs(previous_objective), 1e-12)
                if abs(previous_objective - objective) / denominator < config.inner_convergence_tol:
                    break
            previous_objective = objective

        constraint = self._bound.value(weights)
        return weights, constraint, float(objective), steps
