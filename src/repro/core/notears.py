"""NOTEARS baseline (Zheng et al., NeurIPS 2018).

NOTEARS recasts structure learning as the continuous program

    min_W  L(W, X)    s.t.  h(W) = tr(e^{W∘W}) - d = 0

solved with the augmented-Lagrangian method.  This module provides a faithful
from-scratch implementation used as the comparison baseline throughout the
paper's evaluation (Fig. 4, Table I).  Two inner solvers are available:

* ``"lbfgs"`` (default) — the original formulation: W is split into positive
  and negative parts so the L1 term becomes linear, and each subproblem is
  solved with scipy's L-BFGS-B under non-negativity bounds;
* ``"adam"`` — the same subproblem solved with the from-scratch Adam optimizer
  and an L1 subgradient; this matches how the TensorFlow implementations the
  paper benchmarks were built, and makes wall-clock comparisons against LEAST
  an apples-to-apples contest of the two constraint functions.

Either way every constraint evaluation costs ``O(d^3)`` time and ``O(d^2)``
memory — the bottleneck LEAST removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize

from repro.core.least import LEASTResult, glorot_sparse_init
from repro.core.losses import LeastSquaresLoss, sample_batch
from repro.core.notears_constraint import notears_constraint_with_gradient
from repro.core.optimizers import AdamOptimizer
from repro.exceptions import ValidationError
from repro.utils.logging import RunLog
from repro.utils.random import RandomState, as_generator
from repro.utils.validation import (
    check_in_choices,
    check_non_negative,
    check_positive,
    ensure_2d,
)

__all__ = ["NOTEARSConfig", "NOTEARS"]


@dataclass(frozen=True)
class NOTEARSConfig:
    """Hyper-parameters of the NOTEARS baseline."""

    l1_penalty: float = 0.1
    tolerance: float = 1e-8
    max_outer_iterations: int = 20
    max_inner_iterations: int = 200
    rho_start: float = 1.0
    rho_growth: float = 10.0
    rho_max: float = 1e16
    constraint_progress_ratio: float = 0.25
    learning_rate: float = 0.01
    inner_solver: str = "lbfgs"
    batch_size: int | None = None

    def __post_init__(self) -> None:
        check_non_negative(self.l1_penalty, "l1_penalty")
        check_positive(self.tolerance, "tolerance")
        check_positive(self.max_outer_iterations, "max_outer_iterations")
        check_positive(self.max_inner_iterations, "max_inner_iterations")
        check_positive(self.rho_start, "rho_start")
        check_positive(self.rho_growth, "rho_growth")
        check_positive(self.rho_max, "rho_max")
        check_positive(self.learning_rate, "learning_rate")
        check_positive(self.constraint_progress_ratio, "constraint_progress_ratio")
        check_in_choices(self.inner_solver, "inner_solver", ("lbfgs", "adam"))


class NOTEARS:
    """Structure learning with the matrix-exponential acyclicity constraint."""

    def __init__(self, config: NOTEARSConfig | None = None):
        self.config = config or NOTEARSConfig()
        self._loss = LeastSquaresLoss(l1_penalty=0.0)  # L1 handled separately

    def fit(
        self, data, seed: RandomState = None, on_outer_iteration=None
    ) -> LEASTResult:
        """Learn a weighted DAG from the ``n × d`` sample matrix ``data``.

        ``on_outer_iteration`` is an optional ``callback(outer_iteration)``
        invoked after every outer iteration (the
        :class:`repro.core.backend.SolverBackend` deadline hook point);
        raising from it aborts the solve.
        """
        data = ensure_2d(data, "data")
        rng = as_generator(seed)
        config = self.config
        d = data.shape[1]

        weights = np.zeros((d, d))
        rho = config.rho_start
        eta = 0.0
        constraint = np.inf
        log = RunLog()
        converged = False
        outer_iteration = 0

        for outer_iteration in range(1, config.max_outer_iterations + 1):
            previous_constraint = constraint
            # Increase rho until the constraint shrinks enough (classic NOTEARS
            # schedule): solve the subproblem, and if h barely moved, retry
            # with a larger penalty.
            while True:
                candidate = self._solve_subproblem(data, weights, rho, eta, rng)
                constraint, _ = notears_constraint_with_gradient(candidate)
                if (
                    constraint
                    <= config.constraint_progress_ratio * max(previous_constraint, config.tolerance)
                    or rho >= config.rho_max
                ):
                    break
                rho = min(rho * config.rho_growth, config.rho_max)
            weights = candidate
            loss_value = self._loss.value(weights, data) + config.l1_penalty * float(
                np.abs(weights).sum()
            )
            log.append(
                outer_iteration=outer_iteration,
                loss=loss_value,
                h=constraint,
                rho=rho,
                eta=eta,
                n_edges=float(np.count_nonzero(weights)),
            )
            if on_outer_iteration is not None:
                on_outer_iteration(outer_iteration)
            if constraint <= config.tolerance:
                converged = True
                break
            eta = eta + rho * constraint

        return LEASTResult(
            weights=weights,
            constraint_value=constraint,
            converged=converged,
            n_outer_iterations=outer_iteration,
            log=log,
        )

    # -- inner solvers -----------------------------------------------------------

    def _solve_subproblem(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        rho: float,
        eta: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self.config.inner_solver == "lbfgs":
            return self._solve_lbfgs(data, weights, rho, eta)
        return self._solve_adam(data, weights, rho, eta, rng)

    def _solve_lbfgs(
        self, data: np.ndarray, weights: np.ndarray, rho: float, eta: float
    ) -> np.ndarray:
        """Solve the augmented subproblem with L-BFGS-B on the (W+, W-) split."""
        d = weights.shape[0]
        l1 = self.config.l1_penalty

        def objective(flat: np.ndarray) -> tuple[float, np.ndarray]:
            positive = flat[: d * d].reshape(d, d)
            negative = flat[d * d :].reshape(d, d)
            w = positive - negative
            loss_value, loss_gradient = self._loss.value_and_gradient(w, data)
            h_value, h_gradient = notears_constraint_with_gradient(w)
            value = (
                loss_value
                + 0.5 * rho * h_value**2
                + eta * h_value
                + l1 * float(flat.sum())
            )
            gradient_w = loss_gradient + (rho * h_value + eta) * h_gradient
            np.fill_diagonal(gradient_w, 0.0)
            gradient = np.concatenate(
                [(gradient_w + l1).ravel(), (-gradient_w + l1).ravel()]
            )
            return value, gradient

        initial = np.concatenate(
            [np.maximum(weights, 0.0).ravel(), np.maximum(-weights, 0.0).ravel()]
        )
        bounds = []
        for part in range(2):
            for i in range(d):
                for j in range(d):
                    if i == j:
                        bounds.append((0.0, 0.0))
                    else:
                        bounds.append((0.0, None))
        solution = scipy.optimize.minimize(
            objective,
            initial,
            jac=True,
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.config.max_inner_iterations},
        )
        flat = solution.x
        return flat[: d * d].reshape(d, d) - flat[d * d :].reshape(d, d)

    def _solve_adam(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        rho: float,
        eta: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Solve the augmented subproblem with Adam and an L1 subgradient."""
        config = self.config
        optimizer = AdamOptimizer(learning_rate=config.learning_rate)
        current = weights.copy()
        if not np.any(current):
            current = glorot_sparse_init(current.shape[0], 2.0 / current.shape[0], rng)
        previous_objective = np.inf
        for _ in range(config.max_inner_iterations):
            batch = sample_batch(data, config.batch_size, rng)
            loss_value, loss_gradient = self._loss.value_and_gradient(current, batch)
            h_value, h_gradient = notears_constraint_with_gradient(current)
            objective = (
                loss_value
                + 0.5 * rho * h_value**2
                + eta * h_value
                + config.l1_penalty * float(np.abs(current).sum())
            )
            gradient = (
                loss_gradient
                + (rho * h_value + eta) * h_gradient
                + config.l1_penalty * np.sign(current)
            )
            np.fill_diagonal(gradient, 0.0)
            current = optimizer.update(current, gradient)
            np.fill_diagonal(current, 0.0)
            if np.isfinite(previous_objective):
                denominator = max(abs(previous_objective), 1e-12)
                if abs(previous_objective - objective) / denominator < 1e-6:
                    break
            previous_objective = objective
        return current
