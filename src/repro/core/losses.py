"""Data-fit loss for linear SEM structure learning.

The paper (following NOTEARS) uses the L1-regularized least-squares loss

    L(W, X) = (1/n) ||X - X W||_F^2 + λ ||W||_1

where ``X`` is the ``n × d`` sample matrix and column ``j`` of ``W`` holds the
regression coefficients predicting variable ``j`` from all others.  The
diagonal of ``W`` is always excluded (a variable may not predict itself).

Both dense gradients (full ``d × d`` matrices) and support-restricted sparse
gradients (only the non-zero positions of a CSR matrix) are provided; the
latter keeps LEAST-SP's memory footprint at ``O(s + B·d)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import DimensionMismatchError, ValidationError
from repro.utils.random import RandomState, as_generator
from repro.utils.validation import check_non_negative, ensure_2d

__all__ = ["LeastSquaresLoss", "sample_batch"]


def sample_batch(data: np.ndarray, batch_size: int | None, rng: np.random.Generator) -> np.ndarray:
    """Return a random batch of rows from ``data`` (without replacement).

    ``batch_size`` of None, zero, or >= n returns the full matrix unchanged,
    matching the paper's artificial-data experiments where ``B = n``.
    """
    n_samples = data.shape[0]
    if batch_size is None or batch_size <= 0 or batch_size >= n_samples:
        return data
    indices = rng.choice(n_samples, size=batch_size, replace=False)
    return data[indices]


@dataclass(frozen=True)
class LeastSquaresLoss:
    """L1-regularized least-squares SEM loss with dense and sparse gradients.

    Parameters
    ----------
    l1_penalty:
        The λ coefficient of the ``||W||_1`` term (paper default 0.5 on the
        artificial benchmarks).  The L1 term is handled with a subgradient
        (sign function), which pairs well with Adam and with the hard
        thresholding step of LEAST.
    """

    l1_penalty: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.l1_penalty, "l1_penalty")

    # -- dense ---------------------------------------------------------------

    def value(self, weights: np.ndarray, data: np.ndarray) -> float:
        """Loss value for a dense weight matrix."""
        weights = np.asarray(weights, dtype=float)
        data = ensure_2d(data, "data")
        self._check_shapes(weights.shape[0], data)
        residual = data - data @ weights
        n_samples = max(data.shape[0], 1)
        smooth = float((residual**2).sum()) / n_samples
        return smooth + self.l1_penalty * float(np.abs(weights).sum())

    def gradient(self, weights: np.ndarray, data: np.ndarray) -> np.ndarray:
        """Full gradient for a dense weight matrix (diagonal forced to zero)."""
        return self.value_and_gradient(weights, data)[1]

    def value_and_gradient(self, weights: np.ndarray, data: np.ndarray) -> tuple[float, np.ndarray]:
        """Return ``(L(W, X), ∇_W L(W, X))`` for a dense ``W``."""
        weights = np.asarray(weights, dtype=float)
        data = ensure_2d(data, "data")
        self._check_shapes(weights.shape[0], data)
        n_samples = max(data.shape[0], 1)
        residual = data @ weights - data
        smooth = float((residual**2).sum()) / n_samples
        value = smooth + self.l1_penalty * float(np.abs(weights).sum())
        gradient = (2.0 / n_samples) * data.T @ residual
        gradient = gradient + self.l1_penalty * np.sign(weights)
        np.fill_diagonal(gradient, 0.0)
        return value, gradient

    # -- sparse ---------------------------------------------------------------

    def sparse_value_and_gradient(
        self, weights: sp.csr_matrix, data: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Loss and support-restricted gradient for a CSR weight matrix.

        The returned gradient is a 1-D array aligned with the COO ordering of
        ``weights`` (row-major, as produced by ``weights.tocoo()`` on a
        canonical CSR matrix); entry ``k`` is ``∂L/∂W[rows[k], cols[k]]``.
        """
        if not sp.issparse(weights):
            raise ValidationError("weights must be a scipy sparse matrix")
        csr = weights.tocsr()
        data = ensure_2d(data, "data")
        self._check_shapes(csr.shape[0], data)
        n_samples = max(data.shape[0], 1)

        predicted = data @ csr  # dense (n, d)
        residual = predicted - data
        smooth = float((residual**2).sum()) / n_samples
        value = smooth + self.l1_penalty * float(np.abs(csr.data).sum())

        coo = csr.tocoo()
        # ∂/∂W[i, j] of (1/n)||XW - X||^2 = (2/n) X[:, i] · residual[:, j]
        gradient = (2.0 / n_samples) * np.einsum(
            "ni,ni->i", data[:, coo.row], residual[:, coo.col]
        )
        gradient = gradient + self.l1_penalty * np.sign(coo.data)
        gradient[coo.row == coo.col] = 0.0
        return value, gradient

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _check_shapes(d: int, data: np.ndarray) -> None:
        if data.shape[1] != d:
            raise DimensionMismatchError(
                f"data has {data.shape[1]} columns but the weight matrix is {d} x {d}"
            )
