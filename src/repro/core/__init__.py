"""Core structure-learning algorithms: LEAST, the NOTEARS baseline, and shared pieces."""

from repro.core.acyclicity import SpectralAcyclicityBound, spectral_bound, spectral_bound_gradient
from repro.core.backend import (
    BackendSpec,
    LEASTBackend,
    LEASTFastBackend,
    NOTEARSBackend,
    SolveResult,
    SolverBackend,
    SparseLEASTBackend,
    make_solver,
    register_backend,
    solver_names,
    unregister_backend,
)
from repro.core.least import LEAST, LEASTConfig, LEASTResult
from repro.core.least_fast import FastLEAST, FastLEASTConfig, numba_available
from repro.core.least_sparse import SparseLEAST, SparseLEASTConfig, correlation_support
from repro.core.losses import LeastSquaresLoss
from repro.core.model_selection import (
    GridSearchResult,
    grid_search_epsilon_tau,
    grid_search_threshold,
)
from repro.core.notears import NOTEARS, NOTEARSConfig
from repro.core.notears_constraint import (
    notears_constraint,
    notears_constraint_gradient,
    polynomial_constraint,
    polynomial_constraint_gradient,
)
from repro.core.optimizers import AdamOptimizer, SGDOptimizer, SparseAdamOptimizer
from repro.core.thresholding import threshold_to_dag, threshold_weights

__all__ = [
    "SolverBackend",
    "SolveResult",
    "BackendSpec",
    "LEASTBackend",
    "LEASTFastBackend",
    "SparseLEASTBackend",
    "NOTEARSBackend",
    "make_solver",
    "solver_names",
    "register_backend",
    "unregister_backend",
    "SpectralAcyclicityBound",
    "spectral_bound",
    "spectral_bound_gradient",
    "LEAST",
    "LEASTConfig",
    "LEASTResult",
    "FastLEAST",
    "FastLEASTConfig",
    "numba_available",
    "SparseLEAST",
    "SparseLEASTConfig",
    "correlation_support",
    "NOTEARS",
    "NOTEARSConfig",
    "notears_constraint",
    "notears_constraint_gradient",
    "polynomial_constraint",
    "polynomial_constraint_gradient",
    "LeastSquaresLoss",
    "AdamOptimizer",
    "SGDOptimizer",
    "SparseAdamOptimizer",
    "GridSearchResult",
    "grid_search_threshold",
    "grid_search_epsilon_tau",
    "threshold_weights",
    "threshold_to_dag",
]
