"""Hyper-parameter grid search for the post-processing threshold.

Section V-A of the paper evaluates both algorithms with a grid search over the
convergence tolerance ``ε ∈ {1e-1, …, 1e-4}`` and the output threshold
``τ ∈ {0.1, …, 0.5}``, reporting the best case.  Re-running the solver for
each ``ε`` is expensive; since a run with the smallest tolerance passes through
the looser tolerances on its way down, the practical protocol (implemented
here) is to run once to the tightest tolerance and grid-search only ``τ``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.metrics.structural import StructuralMetrics, evaluate_structure
from repro.core.thresholding import threshold_weights

__all__ = [
    "GridSearchResult",
    "grid_search_threshold",
    "grid_search_epsilon_tau",
    "DEFAULT_TAU_GRID",
    "DEFAULT_EPSILON_GRID",
]

#: The τ grid used by the paper.
DEFAULT_TAU_GRID: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)

#: The ε (stopping tolerance) grid used by the paper.
DEFAULT_EPSILON_GRID: tuple[float, ...] = (1e-1, 1e-2, 1e-3, 1e-4)


@dataclass
class GridSearchResult:
    """Outcome of a threshold grid search against a known ground truth."""

    best_threshold: float
    best_metrics: StructuralMetrics
    best_weights: np.ndarray
    all_results: list[tuple[float, StructuralMetrics]] = field(default_factory=list)

    @property
    def best_f1(self) -> float:
        """F1-score of the best threshold."""
        return self.best_metrics.f1

    @property
    def best_shd(self) -> int:
        """Structural Hamming distance of the best threshold."""
        return self.best_metrics.shd


def grid_search_threshold(
    weights,
    truth,
    thresholds: Sequence[float] = DEFAULT_TAU_GRID,
    objective: Callable[[StructuralMetrics], float] | None = None,
) -> GridSearchResult:
    """Pick the output threshold τ maximizing an objective against the truth.

    Parameters
    ----------
    weights:
        Raw learned weight matrix.
    truth:
        Ground-truth adjacency matrix.
    thresholds:
        Candidate values of τ (defaults to the paper's grid).
    objective:
        Scalar function of :class:`StructuralMetrics` to maximize; defaults to
        the F1-score (the paper's headline accuracy metric).

    Returns
    -------
    GridSearchResult
        Best threshold, its metrics, the thresholded weight matrix, and the
        full list of (threshold, metrics) pairs for reporting.
    """
    thresholds = list(thresholds)
    if len(thresholds) == 0:
        raise ValidationError("thresholds must not be empty")
    if objective is None:
        objective = lambda metrics: metrics.f1

    results: list[tuple[float, StructuralMetrics]] = []
    best: tuple[float, StructuralMetrics, np.ndarray] | None = None
    best_score = -np.inf
    for threshold in thresholds:
        filtered = threshold_weights(weights, threshold)
        metrics = evaluate_structure(filtered, truth)
        results.append((float(threshold), metrics))
        score = objective(metrics)
        if score > best_score:
            best_score = score
            best = (float(threshold), metrics, filtered)

    assert best is not None  # thresholds is non-empty
    return GridSearchResult(
        best_threshold=best[0],
        best_metrics=best[1],
        best_weights=best[2],
        all_results=results,
    )


def grid_search_epsilon_tau(
    result,
    truth,
    epsilons: Sequence[float] = DEFAULT_EPSILON_GRID,
    thresholds: Sequence[float] = DEFAULT_TAU_GRID,
    constraint_key: str = "h",
    objective: Callable[[StructuralMetrics], float] | None = None,
) -> GridSearchResult:
    """Joint ε × τ grid search, the evaluation protocol of Section V-A.

    The paper grid-searches both the convergence tolerance ``ε`` of the solver
    and the output threshold ``τ``, reporting the best case.  Instead of
    re-running the solver once per ε, this function replays a single run that
    was executed to the tightest tolerance with ``keep_history=True``: for
    each ε it selects the weights at the first outer iteration whose recorded
    constraint value (``h(W)`` when tracked, otherwise ``δ(W)``) dropped below
    ε, then grid-searches τ on that snapshot.

    Parameters
    ----------
    result:
        A :class:`repro.core.least.LEASTResult` with a non-empty ``history``.
    truth:
        Ground-truth adjacency matrix.
    epsilons, thresholds:
        The two grids (paper defaults).
    constraint_key:
        Which recorded constraint trace defines the stopping rule.

    Returns
    -------
    GridSearchResult
        The best (ε, τ) combination; ``all_results`` collects the τ sweeps of
        every ε that had a matching snapshot.
    """
    if not result.history:
        raise ValidationError(
            "grid_search_epsilon_tau requires a result produced with keep_history=True"
        )
    trace = result.log.column(constraint_key)
    if np.all(np.isnan(trace)):
        trace = result.log.column("delta")

    candidates: list[np.ndarray] = []
    for epsilon in epsilons:
        below = np.flatnonzero(trace <= epsilon)
        if below.size:
            candidates.append(result.history[int(below[0])])
    if not candidates:
        # No snapshot reached any tolerance: fall back to the final weights.
        candidates.append(result.history[-1])

    best: GridSearchResult | None = None
    combined: list[tuple[float, StructuralMetrics]] = []
    if objective is None:
        objective = lambda metrics: metrics.f1
    for weights in candidates:
        search = grid_search_threshold(weights, truth, thresholds, objective)
        combined.extend(search.all_results)
        if best is None or objective(search.best_metrics) > objective(best.best_metrics):
            best = search
    assert best is not None
    best.all_results = combined
    return best
