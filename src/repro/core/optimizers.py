"""First-order optimizers written from scratch.

LEAST's inner procedure (Fig. 3 of the paper) updates ``W`` with a first-order
method; the paper uses Adam because it converges fast and — in the sparse
implementation — never has to materialize dense moment matrices.  Three
optimizers are provided:

* :class:`AdamOptimizer` — standard Adam on dense parameter arrays;
* :class:`SGDOptimizer` — plain (momentum) gradient descent, used in ablation
  benchmarks and as a simple reference;
* :class:`SparseAdamOptimizer` — Adam whose state lives on a flat data vector
  aligned with the support of a sparse matrix; supports shrinking the support
  when LEAST's hard-thresholding step removes entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive, check_probability

__all__ = ["AdamOptimizer", "SGDOptimizer", "SparseAdamOptimizer"]


@dataclass
class AdamOptimizer:
    """Adam (Kingma & Ba, 2015) for dense numpy parameters.

    Attributes
    ----------
    learning_rate:
        Step size (paper default 0.01 for LEAST's inner loop).
    beta1, beta2:
        Exponential decay rates of the first and second moment estimates.
    epsilon:
        Numerical stabilizer added to the denominator.
    """

    learning_rate: float = 0.01
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _step: int = field(default=0, init=False)
    _first_moment: np.ndarray | None = field(default=None, init=False)
    _second_moment: np.ndarray | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_probability(self.beta1, "beta1")
        check_probability(self.beta2, "beta2")
        check_positive(self.epsilon, "epsilon")

    def reset(self) -> None:
        """Clear the moment estimates and the step counter."""
        self._step = 0
        self._first_moment = None
        self._second_moment = None

    def update(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return the updated parameters for one Adam step (out of place)."""
        parameters = np.asarray(parameters, dtype=float)
        gradient = np.asarray(gradient, dtype=float)
        if parameters.shape != gradient.shape:
            raise ValidationError(
                f"parameter shape {parameters.shape} does not match gradient shape {gradient.shape}"
            )
        if self._first_moment is None or self._first_moment.shape != parameters.shape:
            self._first_moment = np.zeros_like(parameters)
            self._second_moment = np.zeros_like(parameters)
            self._step = 0
        self._step += 1
        self._first_moment = self.beta1 * self._first_moment + (1 - self.beta1) * gradient
        self._second_moment = self.beta2 * self._second_moment + (1 - self.beta2) * gradient**2
        corrected_first = self._first_moment / (1 - self.beta1**self._step)
        corrected_second = self._second_moment / (1 - self.beta2**self._step)
        return parameters - self.learning_rate * corrected_first / (
            np.sqrt(corrected_second) + self.epsilon
        )


@dataclass
class SGDOptimizer:
    """Gradient descent with optional classical momentum."""

    learning_rate: float = 0.01
    momentum: float = 0.0
    _velocity: np.ndarray | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_probability(self.momentum, "momentum")

    def reset(self) -> None:
        """Clear the velocity buffer."""
        self._velocity = None

    def update(self, parameters: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return the updated parameters for one (momentum) SGD step."""
        parameters = np.asarray(parameters, dtype=float)
        gradient = np.asarray(gradient, dtype=float)
        if parameters.shape != gradient.shape:
            raise ValidationError(
                f"parameter shape {parameters.shape} does not match gradient shape {gradient.shape}"
            )
        if self._velocity is None or self._velocity.shape != parameters.shape:
            self._velocity = np.zeros_like(parameters)
        self._velocity = self.momentum * self._velocity - self.learning_rate * gradient
        return parameters + self._velocity


@dataclass
class SparseAdamOptimizer:
    """Adam over the data vector of a fixed-support sparse matrix.

    The parameters are the non-zero values of a CSR matrix; the support may
    only shrink over time (LEAST's thresholding step removes weak entries).
    When the caller drops entries it passes the boolean ``keep_mask`` to
    :meth:`shrink_support` so the moment estimates stay aligned.
    """

    learning_rate: float = 0.01
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _step: int = field(default=0, init=False)
    _first_moment: np.ndarray | None = field(default=None, init=False)
    _second_moment: np.ndarray | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        check_positive(self.learning_rate, "learning_rate")
        check_probability(self.beta1, "beta1")
        check_probability(self.beta2, "beta2")
        check_positive(self.epsilon, "epsilon")

    def reset(self) -> None:
        """Clear the moment estimates and the step counter."""
        self._step = 0
        self._first_moment = None
        self._second_moment = None

    def update(self, values: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """One Adam step on the flat value vector of the sparse matrix."""
        values = np.asarray(values, dtype=float)
        gradient = np.asarray(gradient, dtype=float)
        if values.shape != gradient.shape:
            raise ValidationError(
                f"value shape {values.shape} does not match gradient shape {gradient.shape}"
            )
        if self._first_moment is None or self._first_moment.shape != values.shape:
            self._first_moment = np.zeros_like(values)
            self._second_moment = np.zeros_like(values)
        self._step += 1
        self._first_moment = self.beta1 * self._first_moment + (1 - self.beta1) * gradient
        self._second_moment = self.beta2 * self._second_moment + (1 - self.beta2) * gradient**2
        corrected_first = self._first_moment / (1 - self.beta1**self._step)
        corrected_second = self._second_moment / (1 - self.beta2**self._step)
        return values - self.learning_rate * corrected_first / (
            np.sqrt(corrected_second) + self.epsilon
        )

    def shrink_support(self, keep_mask: np.ndarray) -> None:
        """Drop moment entries where ``keep_mask`` is False (support shrank)."""
        keep_mask = np.asarray(keep_mask, dtype=bool)
        if self._first_moment is None:
            return
        if keep_mask.shape != self._first_moment.shape:
            raise ValidationError(
                f"keep_mask shape {keep_mask.shape} does not match state shape "
                f"{self._first_moment.shape}"
            )
        self._first_moment = self._first_moment[keep_mask]
        self._second_moment = self._second_moment[keep_mask]
