"""Baseline acyclicity constraints from prior work.

Two constraints are implemented, both exact characterizations of acyclicity
for non-negative ``S = W ∘ W``:

* the **matrix-exponential** constraint of NOTEARS (Zheng et al., 2018):
  ``h(W) = tr(e^S) - d``, with gradient ``∇_W h = 2 (e^S)^T ∘ W``;
* the **polynomial** constraint used by DAG-GNN / later work (Yu et al.,
  2019): ``g(W) = tr((I + c·S)^d) - d`` with gradient
  ``∇_W g = 2 d c ((I + c·S)^{d-1})^T ∘ W``, where ``c`` is a small scaling
  constant that keeps the powers numerically bounded.

Both cost ``O(d^3)`` time and ``O(d^2)`` space; they serve as the baseline the
paper compares against and as the reference measure recorded alongside the
spectral bound (Fig. 4 third row, Fig. 5).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive, check_square_matrix

__all__ = [
    "notears_constraint",
    "notears_constraint_gradient",
    "notears_constraint_with_gradient",
    "polynomial_constraint",
    "polynomial_constraint_gradient",
    "polynomial_constraint_with_gradient",
]


def _as_dense_square(weights) -> np.ndarray:
    weights = check_square_matrix(weights, "weights")
    if sp.issparse(weights):
        return np.asarray(weights.todense(), dtype=float)
    return np.asarray(weights, dtype=float)


def notears_constraint(weights) -> float:
    """NOTEARS acyclicity measure ``h(W) = tr(exp(W ∘ W)) - d``.

    The value is non-negative and equals zero iff the graph induced by the
    non-zero pattern of ``W`` is a DAG.
    """
    dense = _as_dense_square(weights)
    d = dense.shape[0]
    if d == 0:
        return 0.0
    exponential = scipy.linalg.expm(dense * dense)
    return float(np.trace(exponential) - d)


def notears_constraint_with_gradient(weights) -> tuple[float, np.ndarray]:
    """Return ``(h(W), ∇_W h(W))`` sharing one matrix exponential."""
    dense = _as_dense_square(weights)
    d = dense.shape[0]
    if d == 0:
        return 0.0, np.zeros_like(dense)
    exponential = scipy.linalg.expm(dense * dense)
    value = float(np.trace(exponential) - d)
    gradient = 2.0 * exponential.T * dense
    return value, gradient


def notears_constraint_gradient(weights) -> np.ndarray:
    """Gradient ``∇_W h(W) = 2 (e^{W∘W})^T ∘ W``."""
    return notears_constraint_with_gradient(weights)[1]


def polynomial_constraint(weights, scale: float | None = None) -> float:
    """Polynomial acyclicity measure ``g(W) = tr((I + c·W∘W)^d) - d``.

    Parameters
    ----------
    scale:
        The constant ``c``; defaults to ``1/d`` which keeps the matrix powers
        well conditioned (the DAG-GNN convention).  The un-scaled version from
        Eq. (3) of the paper corresponds to ``scale=1.0``.
    """
    return polynomial_constraint_with_gradient(weights, scale)[0]


def polynomial_constraint_with_gradient(
    weights, scale: float | None = None
) -> tuple[float, np.ndarray]:
    """Return ``(g(W), ∇_W g(W))`` via repeated squaring-free matrix powers."""
    dense = _as_dense_square(weights)
    d = dense.shape[0]
    if d == 0:
        return 0.0, np.zeros_like(dense)
    if scale is None:
        scale = 1.0 / d
    else:
        check_positive(scale, "scale")
    s = dense * dense
    base = np.eye(d) + scale * s
    # (I + cS)^{d-1} computed once serves both the value and the gradient.
    power_d_minus_1 = np.linalg.matrix_power(base, d - 1) if d > 1 else np.eye(d)
    power_d = power_d_minus_1 @ base
    value = float(np.trace(power_d) - d)
    gradient = 2.0 * d * scale * power_d_minus_1.T * dense
    return value, gradient


def polynomial_constraint_gradient(weights, scale: float | None = None) -> np.ndarray:
    """Gradient of the polynomial constraint."""
    return polynomial_constraint_with_gradient(weights, scale)[1]
