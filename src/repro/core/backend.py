"""The unified solver layer: one protocol, one result type, one factory.

Every structure-learning algorithm in this repository — dense LEAST, the
CSR-end-to-end LEAST-SP, and the NOTEARS baseline — is exposed to the serving
stack through the same narrow interface:

* :class:`SolverBackend` — the protocol: ``fit(data, *, init_weights,
  deadline_hooks, rng) -> SolveResult``;
* :class:`SolveResult` — the uniform outcome record.  ``weights`` is either a
  dense ``d × d`` ndarray or a CSR matrix; consumers that genuinely need one
  representation call :meth:`SolveResult.dense_weights` /
  :meth:`SolveResult.sparse_weights` explicitly, so accidental densification
  of a 100k-node solve shows up as a grep-able call site;
* :func:`make_solver` — the factory that builds a configured backend from a
  registered name plus config overrides, replacing the ad-hoc
  ``(solver_class, config_class)`` tuples that :mod:`repro.serve.job` used to
  keep.

The registry is *live*: :func:`register_backend` /
:func:`unregister_backend` (and the legacy-shaped
:func:`repro.serve.job.register_solver`) take effect immediately for
:func:`solver_names`, :func:`make_solver`, job validation, and CLI help.

Why a protocol and not a base class: the three built-in solvers keep their
paper-shaped native APIs (``LEAST.fit(data, seed, init_weights)``,
``SparseLEAST.fit(data, seed, initial_support, init_weights)``) for direct
algorithmic use and the benchmark scripts; the backend adapters in this
module are the *serving* face, where jobs, shard blocks, and re-learn windows
must be solver-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Iterable, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np
import scipy.sparse as sp

from repro.core.least import LEAST, LEASTConfig
from repro.core.least_fast import FastLEAST, FastLEASTConfig, resolve_jit
from repro.core.least_sparse import SparseLEAST, SparseLEASTConfig
from repro.core.notears import NOTEARS, NOTEARSConfig
from repro.exceptions import ValidationError
from repro.utils.logging import RunLog
from repro.utils.random import RandomState

__all__ = [
    "SolveResult",
    "SolverBackend",
    "BackendSpec",
    "LEASTBackend",
    "LEASTFastBackend",
    "SparseLEASTBackend",
    "NOTEARSBackend",
    "LegacyBackend",
    "make_solver",
    "solver_names",
    "get_spec",
    "register_backend",
    "unregister_backend",
    "registry_epoch",
    "registry_snapshot",
    "restore_registry",
    "config_overrides",
]

#: A deadline hook is a zero-argument callable invoked at every outer
#: iteration of a solve; raising from one aborts the solve cooperatively.
DeadlineHook = Callable[[], None]


@dataclass
class SolveResult:
    """Uniform outcome of one solver run, whatever the algorithm.

    Attributes
    ----------
    solver:
        Registered name of the backend that produced this result.
    weights:
        Learned weight matrix — a dense ``d × d`` ndarray for dense backends,
        a CSR matrix for sparse ones.  Code that must not densify should
        branch on :attr:`is_sparse` instead of converting blindly.
    constraint_value:
        Final value of the acyclicity measure used by the solver.
    converged:
        True when the constraint dropped below the configured tolerance.
    n_outer_iterations, n_inner_iterations:
        Iteration counts of the two loops (0 when the solver does not track
        inner steps).
    elapsed_seconds:
        Solver wall-clock time as reported by the backend (0 when the solver
        does not time itself).
    log:
        Per-outer-iteration trace (loss, constraint, ρ, η, ...).
    telemetry:
        Free-form JSON-able extras a backend wants to surface (e.g. the
        sparse support size over time).
    """

    solver: str
    weights: np.ndarray | sp.spmatrix
    constraint_value: float
    converged: bool
    n_outer_iterations: int
    n_inner_iterations: int = 0
    elapsed_seconds: float = 0.0
    log: RunLog = field(default_factory=RunLog)
    telemetry: dict[str, Any] = field(default_factory=dict)

    @property
    def is_sparse(self) -> bool:
        """True when :attr:`weights` is stored as a scipy sparse matrix."""
        return sp.issparse(self.weights)

    @property
    def n_edges(self) -> int:
        """Number of non-zero entries of :attr:`weights`."""
        if self.is_sparse:
            return int(self.weights.nnz)
        return int(np.count_nonzero(self.weights))

    def dense_weights(self) -> np.ndarray:
        """The weights as a dense ndarray (materializes ``d × d`` — explicit)."""
        if self.is_sparse:
            return np.asarray(self.weights.todense(), dtype=float)
        return np.asarray(self.weights, dtype=float)

    def sparse_weights(self) -> sp.csr_matrix:
        """The weights as a CSR matrix (dense zeros are dropped)."""
        if self.is_sparse:
            return self.weights.tocsr()
        return sp.csr_matrix(np.asarray(self.weights, dtype=float))


@runtime_checkable
class SolverBackend(Protocol):
    """What every solver must look like to the serving stack.

    A backend is a *configured* solver: construction takes the hyper-
    parameters, :meth:`fit` takes only per-call inputs.  Backends must be
    picklable (module-level classes, dataclass configs) so jobs can ship them
    to ``spawn``-started worker processes.
    """

    #: Registered name (matches the key used with :func:`make_solver`).
    name: str

    def fit(
        self,
        data: np.ndarray,
        *,
        init_weights: np.ndarray | sp.spmatrix | None = None,
        deadline_hooks: Sequence[DeadlineHook] | None = None,
        rng: RandomState = None,
    ) -> SolveResult:
        """Learn a weighted DAG from the ``n × d`` sample matrix ``data``.

        Parameters
        ----------
        init_weights:
            Optional warm-start matrix (dense or CSR; backends coerce to
            their native representation).  Backends that cannot warm-start
            raise :class:`~repro.exceptions.ValidationError`.
        deadline_hooks:
            Zero-argument callables invoked at every outer iteration; raising
            from one aborts the solve.  The serving layer uses these for
            cooperative deadline checks that complement hard SIGKILL
            preemption.
        rng:
            Seed or generator for the solver's randomness.
        """
        ...  # pragma: no cover - protocol signature only


def _compose_hooks(
    deadline_hooks: Sequence[DeadlineHook] | None,
) -> Callable[[int], None] | None:
    """Fold a hook sequence into the per-outer-iteration solver callback."""
    if not deadline_hooks:
        return None
    hooks = list(deadline_hooks)

    def _callback(_outer_iteration: int) -> None:
        for hook in hooks:
            hook()

    return _callback


class LEASTBackend:
    """Dense LEAST behind the :class:`SolverBackend` protocol."""

    name = "least"
    sparse = False

    def __init__(self, config: LEASTConfig | None = None) -> None:
        self.config = config or LEASTConfig()

    def fit(
        self,
        data,
        *,
        init_weights: np.ndarray | sp.spmatrix | None = None,
        deadline_hooks: Sequence[DeadlineHook] | None = None,
        rng: RandomState = None,
    ) -> SolveResult:
        """Run dense LEAST; a CSR ``init_weights`` is densified (d × d is
        what this backend materializes anyway)."""
        if init_weights is not None and sp.issparse(init_weights):
            init_weights = np.asarray(init_weights.todense(), dtype=float)
        result = LEAST(self.config).fit(
            data,
            seed=rng,
            init_weights=init_weights,
            on_outer_iteration=_compose_hooks(deadline_hooks),
        )
        return SolveResult(
            solver=self.name,
            weights=result.weights,
            constraint_value=float(result.constraint_value),
            converged=bool(result.converged),
            n_outer_iterations=int(result.n_outer_iterations),
            n_inner_iterations=int(result.n_inner_iterations),
            log=result.log,
        )


class LEASTFastBackend:
    """Fused-inner-loop dense LEAST behind the :class:`SolverBackend` protocol.

    Same math and result contract as :class:`LEASTBackend` (the parity suite
    pins them together on seeded problems), with the inner loop running on
    :class:`~repro.core.least_fast.FastLEAST`'s preallocated-buffer kernels —
    numba-JIT when the package is importable, buffered numpy otherwise.  The
    kernel set actually used is surfaced as ``telemetry["jit_backend"]``.
    """

    name = "least_fast"
    sparse = False

    def __init__(self, config: FastLEASTConfig | None = None) -> None:
        self.config = config or FastLEASTConfig()

    def fit(
        self,
        data,
        *,
        init_weights: np.ndarray | sp.spmatrix | None = None,
        deadline_hooks: Sequence[DeadlineHook] | None = None,
        rng: RandomState = None,
    ) -> SolveResult:
        """Run fused LEAST; a CSR ``init_weights`` is densified (dense d × d
        is this backend's native representation, like ``least``)."""
        if init_weights is not None and sp.issparse(init_weights):
            init_weights = np.asarray(init_weights.todense(), dtype=float)
        solver = FastLEAST(self.config)
        result = solver.fit(
            data,
            seed=rng,
            init_weights=init_weights,
            on_outer_iteration=_compose_hooks(deadline_hooks),
        )
        return SolveResult(
            solver=self.name,
            weights=result.weights,
            constraint_value=float(result.constraint_value),
            converged=bool(result.converged),
            n_outer_iterations=int(result.n_outer_iterations),
            n_inner_iterations=int(result.n_inner_iterations),
            log=result.log,
            telemetry={"jit_backend": solver.jit_backend},
        )


class SparseLEASTBackend:
    """LEAST-SP (CSR end to end) behind the :class:`SolverBackend` protocol."""

    name = "least_sparse"
    sparse = True

    def __init__(self, config: SparseLEASTConfig | None = None) -> None:
        self.config = config or SparseLEASTConfig()

    def fit(
        self,
        data,
        *,
        init_weights: np.ndarray | sp.spmatrix | None = None,
        deadline_hooks: Sequence[DeadlineHook] | None = None,
        rng: RandomState = None,
    ) -> SolveResult:
        """Run LEAST-SP; the result weights stay CSR (never densified)."""
        result = SparseLEAST(self.config).fit(
            data,
            seed=rng,
            init_weights=init_weights,
            on_outer_iteration=_compose_hooks(deadline_hooks),
        )
        return SolveResult(
            solver=self.name,
            weights=result.weights,
            constraint_value=float(result.constraint_value),
            converged=bool(result.converged),
            n_outer_iterations=int(result.n_outer_iterations),
            n_inner_iterations=int(result.n_inner_iterations),
            elapsed_seconds=float(result.elapsed_seconds),
            log=result.log,
            telemetry={"n_support_entries": int(result.weights.nnz)},
        )


class NOTEARSBackend:
    """The NOTEARS baseline behind the :class:`SolverBackend` protocol."""

    name = "notears"
    sparse = False

    def __init__(self, config: NOTEARSConfig | None = None) -> None:
        self.config = config or NOTEARSConfig()

    def fit(
        self,
        data,
        *,
        init_weights: np.ndarray | sp.spmatrix | None = None,
        deadline_hooks: Sequence[DeadlineHook] | None = None,
        rng: RandomState = None,
    ) -> SolveResult:
        """Run NOTEARS (no warm starts — ``init_weights`` is rejected)."""
        if init_weights is not None:
            raise ValidationError("the notears solver does not support init_weights")
        result = NOTEARS(self.config).fit(
            data, seed=rng, on_outer_iteration=_compose_hooks(deadline_hooks)
        )
        return SolveResult(
            solver=self.name,
            weights=result.weights,
            constraint_value=float(result.constraint_value),
            converged=bool(result.converged),
            n_outer_iterations=int(result.n_outer_iterations),
            n_inner_iterations=int(result.n_inner_iterations),
            log=result.log,
        )


class LegacyBackend:
    """Adapter wrapping a ``(solver_class, config_class)`` pair as a backend.

    This is what :func:`repro.serve.job.register_solver` produces, keeping
    the original extension contract working: ``solver_class(config)`` must
    expose ``fit(data, seed=..., [init_weights=...])`` returning an object
    with ``weights``, ``constraint_value``, ``converged`` and
    ``n_outer_iterations`` attributes.  Deadline hooks are invoked once
    before the solve (legacy solvers expose no per-iteration callback).
    """

    sparse = False

    def __init__(self, config: Any, *, name: str, solver_class: type) -> None:
        self.config = config
        self.name = name
        self.solver_class = solver_class

    def fit(
        self,
        data,
        *,
        init_weights: np.ndarray | sp.spmatrix | None = None,
        deadline_hooks: Sequence[DeadlineHook] | None = None,
        rng: RandomState = None,
    ) -> SolveResult:
        """Instantiate the wrapped solver, run its native ``fit``, and wrap
        the outcome in a :class:`SolveResult`."""
        for hook in deadline_hooks or ():
            hook()
        solver = self.solver_class(self.config)
        if init_weights is not None:
            raw = solver.fit(data, seed=rng, init_weights=init_weights)
        else:
            raw = solver.fit(data, seed=rng)
        return SolveResult(
            solver=self.name,
            weights=raw.weights,
            constraint_value=float(raw.constraint_value),
            converged=bool(raw.converged),
            n_outer_iterations=int(raw.n_outer_iterations),
            n_inner_iterations=int(getattr(raw, "n_inner_iterations", 0)),
            elapsed_seconds=float(getattr(raw, "elapsed_seconds", 0.0)),
            log=getattr(raw, "log", None) or RunLog(),
        )


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry: how to build a backend and what it promises.

    Attributes
    ----------
    name:
        Registered solver name.
    backend_class:
        The :class:`SolverBackend` implementation; constructed as
        ``backend_class(config)`` (or, for legacy specs, as
        ``backend_class(config, name=..., solver_class=...)``).
    config_class:
        Dataclass of the backend's hyper-parameters.
    solver_class:
        Set only for legacy specs registered through
        :func:`repro.serve.job.register_solver`.
    supports_init_weights:
        False for solvers that cannot warm-start (jobs carrying
        ``init_weights`` are rejected up front).
    sparse:
        True when the backend's result weights are CSR — consumers use this
        to pick warm-start representations and stitching modes without ever
        materializing the matrix.
    """

    name: str
    backend_class: type
    config_class: type
    solver_class: type | None = None
    supports_init_weights: bool = True
    sparse: bool = False

    def build(self, config: Any | None = None, **overrides: Any) -> SolverBackend:
        """Construct the configured backend (see :func:`make_solver`)."""
        if config is None:
            try:
                config = self.config_class(**overrides)
            except TypeError as exc:
                raise ValidationError(
                    f"invalid config for solver {self.name!r}: {exc}"
                ) from exc
        elif overrides:
            config = replace(config, **overrides)
        if self.solver_class is not None:
            return self.backend_class(
                config, name=self.name, solver_class=self.solver_class
            )
        return self.backend_class(config)


#: The live registry.  Mutate through register/unregister, never directly.
_BACKENDS: dict[str, BackendSpec] = {
    "least": BackendSpec(
        name="least", backend_class=LEASTBackend, config_class=LEASTConfig
    ),
    "least_fast": BackendSpec(
        name="least_fast",
        backend_class=LEASTFastBackend,
        config_class=FastLEASTConfig,
    ),
    "least_sparse": BackendSpec(
        name="least_sparse",
        backend_class=SparseLEASTBackend,
        config_class=SparseLEASTConfig,
        sparse=True,
    ),
    "notears": BackendSpec(
        name="notears",
        backend_class=NOTEARSBackend,
        config_class=NOTEARSConfig,
        supports_init_weights=False,
    ),
}


def solver_names() -> tuple[str, ...]:
    """The currently registered solver names, sorted — computed on access.

    Unlike the old ``SOLVER_NAMES`` module constant (frozen at import time),
    this reflects every :func:`register_backend` / :func:`unregister_backend`
    call made since.
    """
    return tuple(sorted(_BACKENDS))


def get_spec(name: str) -> BackendSpec:
    """Look up the :class:`BackendSpec` of a registered solver."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValidationError(
            f"unknown solver {name!r}; available: {sorted(_BACKENDS)}"
        ) from None


def make_solver(
    name: str, config: Any | None = None, **overrides: Any
) -> SolverBackend:
    """Build a configured :class:`SolverBackend` from a registered name.

    Parameters
    ----------
    name:
        One of :func:`solver_names`.
    config:
        Optional ready-made config instance; ``overrides`` are applied to it
        with :func:`dataclasses.replace`.  When omitted, the spec's config
        class is instantiated from ``overrides`` alone.
    **overrides:
        Keyword arguments of the solver's config dataclass.

    Examples
    --------
    >>> backend = make_solver("least", max_outer_iterations=3)
    >>> backend.name
    'least'
    """
    return get_spec(name).build(config, **overrides)


#: Monotonic counter bumped on every registry mutation (see
#: :func:`registry_epoch`).
_REGISTRY_EPOCH = 0


def register_backend(spec: BackendSpec, overwrite: bool = False) -> None:
    """Add a :class:`BackendSpec` to the live registry."""
    global _REGISTRY_EPOCH
    if spec.name in _BACKENDS and not overwrite:
        raise ValidationError(
            f"solver {spec.name!r} is already registered; "
            "pass overwrite=True to replace it"
        )
    _BACKENDS[spec.name] = spec
    _REGISTRY_EPOCH += 1


def unregister_backend(name: str) -> None:
    """Remove a registered backend (built-ins included — use with care)."""
    global _REGISTRY_EPOCH
    if _BACKENDS.pop(name, None) is not None:
        _REGISTRY_EPOCH += 1


def registry_epoch() -> int:
    """Version counter of the registry, bumped on every (un)registration.

    Long-lived pool workers snapshot the registry once at spawn; the parent
    compares the epoch it shipped against the current one and includes a
    fresh snapshot in a job dispatch only when the registry actually changed
    in between — keeping the "snapshot paid once per worker" economics
    without serving jobs against a stale registry.
    """
    return _REGISTRY_EPOCH


def registry_snapshot() -> dict[str, BackendSpec]:
    """Picklable copy of the registry, shipped to ``spawn`` workers."""
    return dict(_BACKENDS)


def restore_registry(snapshot: Mapping[str, BackendSpec]) -> None:
    """Replay a parent-process registry snapshot inside a worker."""
    _BACKENDS.update(snapshot)


def config_overrides(config: Any, exclude: Iterable[str] = ("init_weights",)) -> dict:
    """JSON-able field dict of a config dataclass (for job manifests).

    ``exclude`` drops fields that are not plain values (the dense LEAST
    config carries an optional ``init_weights`` matrix that must travel as a
    job attribute, not config).
    """
    excluded = set(exclude)
    return {
        f.name: getattr(config, f.name)
        for f in fields(config)
        if f.name not in excluded
    }
